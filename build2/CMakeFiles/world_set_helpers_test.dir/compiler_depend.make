# Empty compiler generated dependencies file for world_set_helpers_test.
# This may be replaced when dependencies are built.
