file(REMOVE_RECURSE
  "CMakeFiles/world_set_helpers_test.dir/tests/world_set_helpers_test.cc.o"
  "CMakeFiles/world_set_helpers_test.dir/tests/world_set_helpers_test.cc.o.d"
  "world_set_helpers_test"
  "world_set_helpers_test.pdb"
  "world_set_helpers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_set_helpers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
