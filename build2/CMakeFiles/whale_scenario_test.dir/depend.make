# Empty dependencies file for whale_scenario_test.
# This may be replaced when dependencies are built.
