file(REMOVE_RECURSE
  "CMakeFiles/whale_scenario_test.dir/tests/whale_scenario_test.cc.o"
  "CMakeFiles/whale_scenario_test.dir/tests/whale_scenario_test.cc.o.d"
  "whale_scenario_test"
  "whale_scenario_test.pdb"
  "whale_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whale_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
