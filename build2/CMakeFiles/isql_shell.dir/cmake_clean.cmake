file(REMOVE_RECURSE
  "CMakeFiles/isql_shell.dir/examples/isql_shell.cpp.o"
  "CMakeFiles/isql_shell.dir/examples/isql_shell.cpp.o.d"
  "isql_shell"
  "isql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
