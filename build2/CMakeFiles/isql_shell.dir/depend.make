# Empty dependencies file for isql_shell.
# This may be replaced when dependencies are built.
