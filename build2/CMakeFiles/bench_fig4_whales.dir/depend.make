# Empty dependencies file for bench_fig4_whales.
# This may be replaced when dependencies are built.
