file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_whales.dir/bench/bench_fig4_whales.cc.o"
  "CMakeFiles/bench_fig4_whales.dir/bench/bench_fig4_whales.cc.o.d"
  "bench_fig4_whales"
  "bench_fig4_whales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_whales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
