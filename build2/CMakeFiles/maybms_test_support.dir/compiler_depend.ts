# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for maybms_test_support.
