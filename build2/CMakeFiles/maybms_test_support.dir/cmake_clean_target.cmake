file(REMOVE_RECURSE
  "libmaybms_test_support.a"
)
