file(REMOVE_RECURSE
  "CMakeFiles/maybms_test_support.dir/tests/pipeline_gen.cc.o"
  "CMakeFiles/maybms_test_support.dir/tests/pipeline_gen.cc.o.d"
  "libmaybms_test_support.a"
  "libmaybms_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maybms_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
