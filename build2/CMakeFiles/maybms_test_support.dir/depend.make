# Empty dependencies file for maybms_test_support.
# This may be replaced when dependencies are built.
