file(REMOVE_RECURSE
  "CMakeFiles/formatter_test.dir/tests/formatter_test.cc.o"
  "CMakeFiles/formatter_test.dir/tests/formatter_test.cc.o.d"
  "formatter_test"
  "formatter_test.pdb"
  "formatter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
