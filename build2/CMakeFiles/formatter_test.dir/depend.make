# Empty dependencies file for formatter_test.
# This may be replaced when dependencies are built.
