# Empty compiler generated dependencies file for bench_possible_certain.
# This may be replaced when dependencies are built.
