file(REMOVE_RECURSE
  "CMakeFiles/bench_possible_certain.dir/bench/bench_possible_certain.cc.o"
  "CMakeFiles/bench_possible_certain.dir/bench/bench_possible_certain.cc.o.d"
  "bench_possible_certain"
  "bench_possible_certain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_possible_certain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
