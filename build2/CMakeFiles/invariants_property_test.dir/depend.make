# Empty dependencies file for invariants_property_test.
# This may be replaced when dependencies are built.
