file(REMOVE_RECURSE
  "CMakeFiles/invariants_property_test.dir/tests/invariants_property_test.cc.o"
  "CMakeFiles/invariants_property_test.dir/tests/invariants_property_test.cc.o.d"
  "invariants_property_test"
  "invariants_property_test.pdb"
  "invariants_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariants_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
