file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cleaning.dir/bench/bench_fig6_cleaning.cc.o"
  "CMakeFiles/bench_fig6_cleaning.dir/bench/bench_fig6_cleaning.cc.o.d"
  "bench_fig6_cleaning"
  "bench_fig6_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
