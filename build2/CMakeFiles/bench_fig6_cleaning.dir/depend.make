# Empty dependencies file for bench_fig6_cleaning.
# This may be replaced when dependencies are built.
