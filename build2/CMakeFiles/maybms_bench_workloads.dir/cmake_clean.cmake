file(REMOVE_RECURSE
  "CMakeFiles/maybms_bench_workloads.dir/bench/workloads.cc.o"
  "CMakeFiles/maybms_bench_workloads.dir/bench/workloads.cc.o.d"
  "libmaybms_bench_workloads.a"
  "libmaybms_bench_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maybms_bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
