file(REMOVE_RECURSE
  "libmaybms_bench_workloads.a"
)
