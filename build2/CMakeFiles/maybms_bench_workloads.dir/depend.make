# Empty dependencies file for maybms_bench_workloads.
# This may be replaced when dependencies are built.
