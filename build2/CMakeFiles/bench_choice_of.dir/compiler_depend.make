# Empty compiler generated dependencies file for bench_choice_of.
# This may be replaced when dependencies are built.
