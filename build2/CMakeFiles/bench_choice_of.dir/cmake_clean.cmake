file(REMOVE_RECURSE
  "CMakeFiles/bench_choice_of.dir/bench/bench_choice_of.cc.o"
  "CMakeFiles/bench_choice_of.dir/bench/bench_choice_of.cc.o.d"
  "bench_choice_of"
  "bench_choice_of.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_choice_of.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
