file(REMOVE_RECURSE
  "CMakeFiles/bench_conf.dir/bench/bench_conf.cc.o"
  "CMakeFiles/bench_conf.dir/bench/bench_conf.cc.o.d"
  "bench_conf"
  "bench_conf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
