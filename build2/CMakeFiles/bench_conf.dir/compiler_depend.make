# Empty compiler generated dependencies file for bench_conf.
# This may be replaced when dependencies are built.
