# Empty compiler generated dependencies file for decomposed_world_set_test.
# This may be replaced when dependencies are built.
