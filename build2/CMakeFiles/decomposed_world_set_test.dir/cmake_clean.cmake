file(REMOVE_RECURSE
  "CMakeFiles/decomposed_world_set_test.dir/tests/decomposed_world_set_test.cc.o"
  "CMakeFiles/decomposed_world_set_test.dir/tests/decomposed_world_set_test.cc.o.d"
  "decomposed_world_set_test"
  "decomposed_world_set_test.pdb"
  "decomposed_world_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposed_world_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
