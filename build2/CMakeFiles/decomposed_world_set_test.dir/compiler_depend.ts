# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for decomposed_world_set_test.
