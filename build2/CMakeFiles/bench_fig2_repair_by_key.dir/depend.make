# Empty dependencies file for bench_fig2_repair_by_key.
# This may be replaced when dependencies are built.
