file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_repair_by_key.dir/bench/bench_fig2_repair_by_key.cc.o"
  "CMakeFiles/bench_fig2_repair_by_key.dir/bench/bench_fig2_repair_by_key.cc.o.d"
  "bench_fig2_repair_by_key"
  "bench_fig2_repair_by_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_repair_by_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
