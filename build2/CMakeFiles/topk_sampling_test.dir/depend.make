# Empty dependencies file for topk_sampling_test.
# This may be replaced when dependencies are built.
