file(REMOVE_RECURSE
  "CMakeFiles/topk_sampling_test.dir/tests/topk_sampling_test.cc.o"
  "CMakeFiles/topk_sampling_test.dir/tests/topk_sampling_test.cc.o.d"
  "topk_sampling_test"
  "topk_sampling_test.pdb"
  "topk_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
