# Empty dependencies file for dml_test.
# This may be replaced when dependencies are built.
