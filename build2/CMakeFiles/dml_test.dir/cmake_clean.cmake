file(REMOVE_RECURSE
  "CMakeFiles/dml_test.dir/tests/dml_test.cc.o"
  "CMakeFiles/dml_test.dir/tests/dml_test.cc.o.d"
  "dml_test"
  "dml_test.pdb"
  "dml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
