file(REMOVE_RECURSE
  "CMakeFiles/bench_assert.dir/bench/bench_assert.cc.o"
  "CMakeFiles/bench_assert.dir/bench/bench_assert.cc.o.d"
  "bench_assert"
  "bench_assert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
