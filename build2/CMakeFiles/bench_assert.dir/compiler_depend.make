# Empty compiler generated dependencies file for bench_assert.
# This may be replaced when dependencies are built.
