# Empty dependencies file for bench_scaling_worlds.
# This may be replaced when dependencies are built.
