file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_worlds.dir/bench/bench_scaling_worlds.cc.o"
  "CMakeFiles/bench_scaling_worlds.dir/bench/bench_scaling_worlds.cc.o.d"
  "bench_scaling_worlds"
  "bench_scaling_worlds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_worlds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
