file(REMOVE_RECURSE
  "CMakeFiles/whale_tracking.dir/examples/whale_tracking.cpp.o"
  "CMakeFiles/whale_tracking.dir/examples/whale_tracking.cpp.o.d"
  "whale_tracking"
  "whale_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whale_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
