# Empty dependencies file for whale_tracking.
# This may be replaced when dependencies are built.
