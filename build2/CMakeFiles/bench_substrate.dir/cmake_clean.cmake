file(REMOVE_RECURSE
  "CMakeFiles/bench_substrate.dir/bench/bench_substrate.cc.o"
  "CMakeFiles/bench_substrate.dir/bench/bench_substrate.cc.o.d"
  "bench_substrate"
  "bench_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
