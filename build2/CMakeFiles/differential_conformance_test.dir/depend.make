# Empty dependencies file for differential_conformance_test.
# This may be replaced when dependencies are built.
