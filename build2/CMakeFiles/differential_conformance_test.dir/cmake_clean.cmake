file(REMOVE_RECURSE
  "CMakeFiles/differential_conformance_test.dir/tests/differential_conformance_test.cc.o"
  "CMakeFiles/differential_conformance_test.dir/tests/differential_conformance_test.cc.o.d"
  "differential_conformance_test"
  "differential_conformance_test.pdb"
  "differential_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
