# Empty compiler generated dependencies file for partition_component_test.
# This may be replaced when dependencies are built.
