file(REMOVE_RECURSE
  "CMakeFiles/partition_component_test.dir/tests/partition_component_test.cc.o"
  "CMakeFiles/partition_component_test.dir/tests/partition_component_test.cc.o.d"
  "partition_component_test"
  "partition_component_test.pdb"
  "partition_component_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
