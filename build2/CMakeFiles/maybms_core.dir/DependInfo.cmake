
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "CMakeFiles/maybms_core.dir/src/base/status.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "CMakeFiles/maybms_core.dir/src/base/string_util.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/base/string_util.cc.o.d"
  "/root/repo/src/engine/dml.cc" "CMakeFiles/maybms_core.dir/src/engine/dml.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/engine/dml.cc.o.d"
  "/root/repo/src/engine/executor.cc" "CMakeFiles/maybms_core.dir/src/engine/executor.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/engine/executor.cc.o.d"
  "/root/repo/src/engine/expr_eval.cc" "CMakeFiles/maybms_core.dir/src/engine/expr_eval.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/engine/expr_eval.cc.o.d"
  "/root/repo/src/engine/planner.cc" "CMakeFiles/maybms_core.dir/src/engine/planner.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/engine/planner.cc.o.d"
  "/root/repo/src/engine/prepared.cc" "CMakeFiles/maybms_core.dir/src/engine/prepared.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/engine/prepared.cc.o.d"
  "/root/repo/src/engine/type_deriver.cc" "CMakeFiles/maybms_core.dir/src/engine/type_deriver.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/engine/type_deriver.cc.o.d"
  "/root/repo/src/isql/formatter.cc" "CMakeFiles/maybms_core.dir/src/isql/formatter.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/isql/formatter.cc.o.d"
  "/root/repo/src/isql/query_result.cc" "CMakeFiles/maybms_core.dir/src/isql/query_result.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/isql/query_result.cc.o.d"
  "/root/repo/src/isql/session.cc" "CMakeFiles/maybms_core.dir/src/isql/session.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/isql/session.cc.o.d"
  "/root/repo/src/sql/ast.cc" "CMakeFiles/maybms_core.dir/src/sql/ast.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "CMakeFiles/maybms_core.dir/src/sql/lexer.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "CMakeFiles/maybms_core.dir/src/sql/parser.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/sql/parser.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "CMakeFiles/maybms_core.dir/src/storage/catalog.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/storage/catalog.cc.o.d"
  "/root/repo/src/storage/table.cc" "CMakeFiles/maybms_core.dir/src/storage/table.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/storage/table.cc.o.d"
  "/root/repo/src/types/schema.cc" "CMakeFiles/maybms_core.dir/src/types/schema.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/types/schema.cc.o.d"
  "/root/repo/src/types/tuple.cc" "CMakeFiles/maybms_core.dir/src/types/tuple.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/types/tuple.cc.o.d"
  "/root/repo/src/types/value.cc" "CMakeFiles/maybms_core.dir/src/types/value.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/types/value.cc.o.d"
  "/root/repo/src/worlds/component.cc" "CMakeFiles/maybms_core.dir/src/worlds/component.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/component.cc.o.d"
  "/root/repo/src/worlds/decomposed_world_set.cc" "CMakeFiles/maybms_core.dir/src/worlds/decomposed_world_set.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/decomposed_world_set.cc.o.d"
  "/root/repo/src/worlds/explicit_world_set.cc" "CMakeFiles/maybms_core.dir/src/worlds/explicit_world_set.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/explicit_world_set.cc.o.d"
  "/root/repo/src/worlds/partition.cc" "CMakeFiles/maybms_core.dir/src/worlds/partition.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/partition.cc.o.d"
  "/root/repo/src/worlds/sampling.cc" "CMakeFiles/maybms_core.dir/src/worlds/sampling.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/sampling.cc.o.d"
  "/root/repo/src/worlds/world.cc" "CMakeFiles/maybms_core.dir/src/worlds/world.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/world.cc.o.d"
  "/root/repo/src/worlds/world_set.cc" "CMakeFiles/maybms_core.dir/src/worlds/world_set.cc.o" "gcc" "CMakeFiles/maybms_core.dir/src/worlds/world_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
