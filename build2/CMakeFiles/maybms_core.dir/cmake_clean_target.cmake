file(REMOVE_RECURSE
  "libmaybms_core.a"
)
