# Empty compiler generated dependencies file for maybms_core.
# This may be replaced when dependencies are built.
