# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for schema_tuple_table_test.
