file(REMOVE_RECURSE
  "CMakeFiles/cleaning_scenario_test.dir/tests/cleaning_scenario_test.cc.o"
  "CMakeFiles/cleaning_scenario_test.dir/tests/cleaning_scenario_test.cc.o.d"
  "cleaning_scenario_test"
  "cleaning_scenario_test.pdb"
  "cleaning_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
