# Empty compiler generated dependencies file for cleaning_scenario_test.
# This may be replaced when dependencies are built.
