file(REMOVE_RECURSE
  "CMakeFiles/join_differential_test.dir/tests/join_differential_test.cc.o"
  "CMakeFiles/join_differential_test.dir/tests/join_differential_test.cc.o.d"
  "join_differential_test"
  "join_differential_test.pdb"
  "join_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
