# Empty compiler generated dependencies file for join_differential_test.
# This may be replaced when dependencies are built.
