# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/cleaning_scenario_test[1]_include.cmake")
include("/root/repo/build2/decomposed_world_set_test[1]_include.cmake")
include("/root/repo/build2/differential_conformance_test[1]_include.cmake")
include("/root/repo/build2/dml_test[1]_include.cmake")
include("/root/repo/build2/equivalence_property_test[1]_include.cmake")
include("/root/repo/build2/executor_test[1]_include.cmake")
include("/root/repo/build2/formatter_test[1]_include.cmake")
include("/root/repo/build2/integration_test[1]_include.cmake")
include("/root/repo/build2/invariants_property_test[1]_include.cmake")
include("/root/repo/build2/join_differential_test[1]_include.cmake")
include("/root/repo/build2/lexer_test[1]_include.cmake")
include("/root/repo/build2/paper_examples_test[1]_include.cmake")
include("/root/repo/build2/parser_test[1]_include.cmake")
include("/root/repo/build2/partition_component_test[1]_include.cmake")
include("/root/repo/build2/schema_tuple_table_test[1]_include.cmake")
include("/root/repo/build2/session_test[1]_include.cmake")
include("/root/repo/build2/sql_extensions_test[1]_include.cmake")
include("/root/repo/build2/status_test[1]_include.cmake")
include("/root/repo/build2/string_util_test[1]_include.cmake")
include("/root/repo/build2/topk_sampling_test[1]_include.cmake")
include("/root/repo/build2/value_test[1]_include.cmake")
include("/root/repo/build2/whale_scenario_test[1]_include.cmake")
include("/root/repo/build2/world_set_helpers_test[1]_include.cmake")
