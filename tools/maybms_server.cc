// maybms_server: the I-SQL network server binary.
//
//   maybms_server [--host H] [--port P] [--engine explicit|decomposed]
//                 [--max-connections N] [--idle-timeout-ms MS]
//                 [--storage memory|paged] [--storage-dir DIR]
//                 [--threads N] [--statement-timeout-ms MS]
//                 [--max-worlds N] [--mem-budget-mb MB] [--cancel-on-drain]
//
// Prints "maybms_server listening on H:P" once serving (port 0 binds an
// ephemeral port and prints the real one — scripts parse this line).
// SIGTERM/SIGINT trigger a graceful drain: in-flight statements finish,
// their responses flush, every connection closes, and the process exits
// 0 with a drain summary.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "server/server.h"

namespace {

// Self-pipe: the only async-signal-safe thing the handler does is write
// one byte; the main thread blocks on the read end.
int g_signal_pipe[2] = {-1, -1};

void HandleTermination(int /*signum*/) {
  char byte = 1;
  // Ignore a full pipe — a shutdown is already pending.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--engine explicit|decomposed]\n"
      "          [--max-connections N] [--idle-timeout-ms MS]\n"
      "          [--storage memory|paged] [--storage-dir DIR] [--threads N]\n"
      "          [--statement-timeout-ms MS] [--max-worlds N]\n"
      "          [--mem-budget-mb MB] [--cancel-on-drain]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  maybms::server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "explicit") == 0) {
        options.session.engine = maybms::isql::EngineMode::kExplicit;
      } else if (std::strcmp(v, "decomposed") == 0) {
        options.session.engine = maybms::isql::EngineMode::kDecomposed;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_connections = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.idle_timeout_ms = std::atoi(v);
    } else if (arg == "--storage") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "memory") == 0) {
        options.session.storage = maybms::isql::StorageMode::kMemory;
      } else if (std::strcmp(v, "paged") == 0) {
        options.session.storage = maybms::isql::StorageMode::kPaged;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--storage-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.session.storage_dir = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.session.threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--statement-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.session.statement_timeout_ms =
          static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-worlds") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.session.max_worlds = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--mem-budget-mb") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.session.mem_budget_mb = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--cancel-on-drain") {
      options.cancel_statements_on_drain = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleTermination;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  auto server = maybms::server::Server::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "maybms_server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  std::printf("maybms_server listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);

  // Block until SIGTERM/SIGINT.
  char byte;
  ssize_t n;
  do {
    n = ::read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  (*server)->Shutdown();
  std::printf("maybms_server drained cleanly: %llu statements, "
              "%llu connections served, %llu refused\n",
              static_cast<unsigned long long>((*server)->statements_served()),
              static_cast<unsigned long long>(
                  (*server)->connections_accepted()),
              static_cast<unsigned long long>(
                  (*server)->connections_refused()));
  return 0;
}
