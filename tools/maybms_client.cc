// maybms_client: a small I-SQL wire client for maybms_server.
//
//   maybms_client [--host H] [--port P] [--timeout-ms MS] -e "statement;"
//   maybms_client [--host H] [--port P] < script.sql
//
// With -e, sends exactly one request and prints the response. Without,
// reads stdin, sends one request per ';'-terminated statement (so a
// multi-statement script round-trips statement by statement, matching
// the interactive shell), and prints each response. Exits nonzero on a
// transport failure or any error response.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/net.h"
#include "server/protocol.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--timeout-ms MS] "
               "[-e \"statement;\"]\n",
               argv0);
  return 2;
}

/// Sends one request; prints the response text. Returns 0 on an OK
/// response, 1 otherwise.
int RunStatement(const maybms::server::Fd& conn, const std::string& sql,
                 int timeout_ms) {
  auto reply = maybms::server::RoundTrip(conn, sql, timeout_ms);
  if (!reply.ok()) {
    std::fprintf(stderr, "maybms_client: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (reply->first != maybms::StatusCode::kOk) {
    std::fprintf(stderr, "ERROR (%s): %s\n",
                 maybms::StatusCodeToString(reply->first),
                 reply->second.c_str());
    return 1;
  }
  if (!reply->second.empty()) {
    std::fputs(reply->second.c_str(), stdout);
    if (reply->second.back() != '\n') std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int timeout_ms = 30'000;
  std::string statement;
  bool have_statement = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      timeout_ms = std::atoi(v);
    } else if (arg == "-e") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      statement = v;
      have_statement = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "maybms_client: --port is required\n");
    return Usage(argv[0]);
  }

  auto conn = maybms::server::ConnectTo(host, port);
  if (!conn.ok()) {
    std::fprintf(stderr, "maybms_client: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }

  if (have_statement) {
    return RunStatement(*conn, statement, timeout_ms);
  }

  // Stdin mode: buffer until a line ends the current statement with ';'.
  int rc = 0;
  std::string pending;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!pending.empty()) pending.push_back('\n');
    pending += line;
    // Send once the buffered text ends in ';' (ignoring trailing blanks).
    size_t end = pending.find_last_not_of(" \t\r\n");
    if (end == std::string::npos || pending[end] != ';') continue;
    rc |= RunStatement(*conn, pending, timeout_ms);
    pending.clear();
  }
  if (pending.find_first_not_of(" \t\r\n") != std::string::npos) {
    rc |= RunStatement(*conn, pending, timeout_ms);
  }
  return rc;
}
