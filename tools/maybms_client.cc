// maybms_client: a small I-SQL wire client for maybms_server.
//
//   maybms_client [--host H] [--port P] [--timeout-ms MS]
//                 [--deadline-ms MS] [--retries N] -e "statement;"
//   maybms_client [--host H] [--port P] [...] < script.sql
//
// With -e, sends exactly one request and prints the response. Without,
// reads stdin, sends one request per ';'-terminated statement (so a
// multi-statement script round-trips statement by statement, matching
// the interactive shell), and prints each response. Exits nonzero on a
// transport failure or any error response.
//
// --deadline-ms attaches a per-statement deadline to every request (a
// governed frame, protocol.h); the server enforces the tighter of this
// and its own configured limit. --retries N retries transient overload
// outcomes only — connect failure and the server's capacity refusal —
// with exponential backoff + jitter; a statement's own resource errors
// are final. Off by default.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/net.h"
#include "server/protocol.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--timeout-ms MS] "
               "[--deadline-ms MS] [--retries N] [-e \"statement;\"]\n",
               argv0);
  return 2;
}

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int timeout_ms = 30'000;
  uint32_t deadline_ms = 0;  // 0 = no request deadline
  maybms::server::RetryPolicy retry;
};

/// Sends one request; prints the response text. Returns 0 on an OK
/// response, 1 otherwise. `conn` is the persistent connection for the
/// no-retry path; with retries enabled each attempt reconnects (the
/// server closes refused connections, so reuse is impossible anyway).
int RunStatement(const ClientConfig& config, const maybms::server::Fd* conn,
                 const std::string& sql) {
  const std::string request =
      config.deadline_ms == 0
          ? sql
          : maybms::server::EncodeGovernedRequest(config.deadline_ms, sql);
  auto reply = config.retry.max_retries > 0
                   ? maybms::server::RoundTripWithRetry(
                         config.host, config.port, request, config.timeout_ms,
                         config.retry)
                   : maybms::server::RoundTrip(*conn, request,
                                               config.timeout_ms);
  if (!reply.ok()) {
    std::fprintf(stderr, "maybms_client: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (reply->first != maybms::StatusCode::kOk) {
    std::fprintf(stderr, "ERROR (%s): %s\n",
                 maybms::StatusCodeToString(reply->first),
                 reply->second.c_str());
    return 1;
  }
  if (!reply->second.empty()) {
    std::fputs(reply->second.c_str(), stdout);
    if (reply->second.back() != '\n') std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientConfig config;
  std::string statement;
  bool have_statement = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.timeout_ms = std::atoi(v);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.deadline_ms = static_cast<uint32_t>(std::atoll(v));
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.retry.max_retries = std::atoi(v);
    } else if (arg == "-e") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      statement = v;
      have_statement = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (config.port == 0) {
    std::fprintf(stderr, "maybms_client: --port is required\n");
    return Usage(argv[0]);
  }

  // The persistent connection of the no-retry path; the retry path
  // connects per attempt inside RoundTripWithRetry.
  maybms::server::Fd conn;
  if (config.retry.max_retries == 0) {
    auto connected = maybms::server::ConnectTo(config.host, config.port);
    if (!connected.ok()) {
      std::fprintf(stderr, "maybms_client: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    conn = std::move(*connected);
  }

  if (have_statement) {
    return RunStatement(config, &conn, statement);
  }

  // Stdin mode: buffer until a line ends the current statement with ';'.
  int rc = 0;
  std::string pending;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!pending.empty()) pending.push_back('\n');
    pending += line;
    // Send once the buffered text ends in ';' (ignoring trailing blanks).
    size_t end = pending.find_last_not_of(" \t\r\n");
    if (end == std::string::npos || pending[end] != ';') continue;
    rc |= RunStatement(config, &conn, pending);
    pending.clear();
  }
  if (pending.find_first_not_of(" \t\r\n") != std::string::npos) {
    rc |= RunStatement(config, &conn, pending);
  }
  return rc;
}
