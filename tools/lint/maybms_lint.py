#!/usr/bin/env python3
"""maybms_lint: repo-specific invariant lint for the MayBMS reproduction.

Turns the invariants documented in header comments into machine-checked
rules over `src/` (see docs/architecture.md, "Invariant enforcement"):

  plan-schema-only   Prepared/planner plan structs (src/engine/planner.*,
                     prepared.*, dml.*) must hold schema-level state only:
                     no Table/Database/Value/Tuple/TableHandle/JoinIndex/
                     World members. Plans are executed once per world —
                     captured world data is exactly the bug class PR 3
                     removed.

  forbidden-api      No calls to deleted/forbidden APIs anywhere in src/:
                     GetMutableRelation (deleted in PR 5), const_cast on
                     Table/Database (bypasses the COW write protocol), raw
                     std::thread/std::jthread outside base/ (use
                     base::ThreadPool), std::mt19937 outside base/ (use
                     base::SplitMix64, which is O(1) to seed), and raw
                     file I/O (open/fopen/mmap/pread/pwrite/fsync/...)
                     outside src/storage/ (use storage::File, which the
                     fault injector and checksum layer instrument).

  unchecked-status   A bare expression statement calling a function that
                     returns Status/Result drops the error. Consume it,
                     wrap it in MAYBMS_RETURN_NOT_OK / MAYBMS_ASSIGN_OR_
                     RETURN, or annotate the intentional drop with
                     MAYBMS_IGNORE_STATUS. ([[nodiscard]] makes this a
                     compile error too; the lint keeps it testable via
                     fixtures and catches pre-compile review diffs.)

  ungoverned-world-loop
                     A range-for in src/worlds/*.cc iterating a worlds
                     collection (range names `worlds`/`worlds_`/
                     `.worlds`/`Worlds()`, or the loop variable is a
                     World) must be governed: GovernPoll / GovernCharge*
                     / ParallelFor in the loop body, or — for loops
                     whose iterations must not be torn apart by a
                     mid-loop abort — immediately before the loop (the
                     poll-before-mutate idiom of CreateBaseTable). A
                     per-world loop with no poll anywhere is how an
                     exponential fan-out escapes the statement deadline
                     (base/query_context.h). Loops that are genuinely
                     O(1)-per-iteration arithmetic can annotate
                     `maybms-lint: allow(ungoverned-world-loop)` with a
                     justification.

Suppressions: a comment `maybms-lint: allow(rule-a, rule-b)` on the same
line or the line directly above suppresses those rules for that line.

Self-test: `--selftest` runs the rules over tests/lint_selftest/. Each
fixture names its pretend location on line 1 with
`// maybms-lint-fixture: src/...` (rule scoping follows that path) and
marks every line that MUST be flagged with `// expect-lint: rule`. The
self-test fails if any expected finding is missed OR any unexpected
finding fires — so it proves both detection and suppression behavior.

Exit codes: 0 clean, 1 findings (or self-test mismatch), 2 usage/internal
error.
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

PLAN_SCOPE_FILES = re.compile(r"src/engine/(planner|prepared|dml)\.(h|cc)$")
PLAN_STRUCT_NAME = re.compile(r"^(Prepared\w*|\w*Plan|\w*PlanCache)$")
PLAN_FORBIDDEN_TYPE = re.compile(
    r"\b(Table|Database|Value|Tuple|TableHandle|JoinIndex|World)\b")

ALLOW_RE = re.compile(r"maybms-lint:\s*allow\(([^)]*)\)")
FIXTURE_PATH_RE = re.compile(r"maybms-lint-fixture:\s*(\S+)")
EXPECT_RE = re.compile(r"expect-lint:\s*([\w\-, ]+)")

# Function-name harvest: `Status Name(`, `Result<T> Name(` in src headers.
HARVEST_RE = re.compile(r"\b(?:Status|Result<[^;{}=]*?>)\s+([A-Za-z_]\w*)\s*\(")
# Names ALSO declared with a void return somewhere (e.g. the void
# Tuple::Append(Value) vs the Status Table::Append(Tuple)) are ambiguous to
# a name-based check and are excluded: dropped Status returns of those
# overloads are caught by the class-level [[nodiscard]] at compile time,
# which resolves overloads exactly.
VOID_HARVEST_RE = re.compile(r"\bvoid\s+([A-Za-z_]\w*)\s*\(")

# A bare call at statement start: optional object/namespace chain, then a
# name, then '('. Anchored manually at statement boundaries.
CALL_RE = re.compile(
    r"\s*((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\(")

# ungoverned-world-loop: scope, worlds-ish range detection, and what
# counts as governance. The pre-loop window covers the sanctioned
# poll-before-mutate idiom (one GovernPoll right above a loop whose
# iterations must be all-or-nothing).
WORLD_LOOP_SCOPE = re.compile(r"src/worlds/[^/]+\.cc$")
WORLD_RANGE_RE = re.compile(r"\b(worlds_?|Worlds)\b")
WORLD_DECL_RE = re.compile(r"\bWorld\b")
GOVERN_RE = re.compile(
    r"\b(GovernPoll|GovernChargeWorlds|GovernChargeBytes|ParallelFor)\b")
WORLD_LOOP_PRE_CONTEXT = 300  # chars of stripped code before the `for`

FORBIDDEN_API_PATTERNS = [
    # (regex, exempt_path_prefix, message): a match is ignored when the
    # file's rule path starts with the exempt prefix (None = banned
    # everywhere in src/).
    (re.compile(r"\bGetMutableRelation\b"), None,
     "deleted API GetMutableRelation — use Database::MutableRelation "
     "(clone-on-unshared-write) or PutRelation"),
    (re.compile(r"\bconst_cast\s*<[^>]*\b(Table|Database)\b"), None,
     "const_cast on Table/Database bypasses the copy-on-write protocol "
     "(storage/catalog.h); mutate through MutableRelation"),
    (re.compile(r"\bstd::thread\b(?!::hardware_concurrency)"), "src/base/",
     "raw std::thread outside base/ — use base::ThreadPool::ParallelFor "
     "(deterministic chunking, first-error-by-index)"),
    (re.compile(r"\bstd::jthread\b"), "src/base/",
     "raw std::jthread outside base/ — use base::ThreadPool::ParallelFor"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "src/base/",
     "std::mt19937 outside base/ — use base::SplitMix64 (base/rng.h), "
     "which is O(1) to seed per sample"),
    # Raw file I/O outside src/storage/: every disk access must go through
    # storage::File so the fault injector sees it (crash-recovery tests
    # enumerate File ops as kill points — a bypassing write would be a
    # durability hole the battery cannot reach) and so page checksums
    # cannot be skipped. The lookbehind excludes member calls
    # (stream.open) while `::open(` still matches.
    (re.compile(r"(?<![\w.>])(open|openat|creat|fopen|mmap|munmap|pread|"
                r"pwrite|fsync|fdatasync|ftruncate)\s*\("), "src/storage/",
     "raw file I/O outside src/storage/ — go through storage::File "
     "(fault-injectable, checksummed); direct syscalls dodge the "
     "crash-recovery battery"),
]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blanks comments and string/char literals, preserving offsets and
    newlines, so structural scans never match commented or quoted text."""
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^(\s]{0,16})\(', text[i:])
                if m and i > 0 and text[i - 1] == "R":
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAW
                    i += m.end()
                    continue
                state = STRING
                i += 1
                continue
            if c == "'":
                state = CHAR
                i += 1
                continue
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = NORMAL
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state == STRING:
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == CHAR:
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == RAW:
            if text.startswith(raw_delim, i):
                for j in range(len(raw_delim)):
                    out[i + j] = " "
                i += len(raw_delim)
                state = NORMAL
                continue
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def line_of(text, offset, line_starts):
    """1-based line number of `offset` via the precomputed starts."""
    lo, hi = 0, len(line_starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if line_starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def parse_directives(raw_lines):
    """allow() suppressions (line -> rules), fixture path, expectations.

    An allow() on a comment-only line propagates forward through the rest
    of that comment block to the first code line below it, so a multi-line
    justification comment ending in code suppresses that code line (the
    idiom used for the sanctioned const_cast in storage/catalog.cc). An
    allow() trailing a code line applies to that line only.
    """
    allows = {}
    expects = {}
    fixture_path = None
    pending = set()
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        rules = set()
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        comment_only = line.strip().startswith("//") or not line.strip()
        if comment_only:
            pending |= rules
        else:
            merged = rules | pending
            pending = set()
            if merged:
                allows.setdefault(idx, set()).update(merged)
        m = FIXTURE_PATH_RE.search(line)
        if m:
            fixture_path = m.group(1)
        m = EXPECT_RE.search(line)
        if m:
            erules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            expects.setdefault(idx, set()).update(erules)
    return allows, expects, fixture_path


def suppressed(allows, line, rule):
    return rule in allows.get(line, set())


def scope_stack_scan(stripped):
    """Yields (start, end, innermost_named_scope) regions for member-level
    analysis: a simple brace tracker that names struct/class scopes and
    treats everything else (functions, enums, lambdas, initializers) as
    anonymous block scopes."""
    regions = []
    stack = []  # (kind, name) — kind in {"struct", "block", "enum"}
    head_start = 0
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "{":
            head = stripped[head_start:i]
            m = None
            for m2 in re.finditer(r"\b(struct|class|enum|union|namespace)\b"
                                  r"(?:\s+class|\s+struct)?\s+([A-Za-z_][\w:<>]*)",
                                  head):
                m = m2
            kind = "block"
            name = ""
            if m and "(" not in head[m.end():]:
                kw = m.group(1)
                qualified = m.group(2)
                name = qualified.split("::")[-1].split("<")[0]
                if kw in ("struct", "class"):
                    kind = "struct"
                elif kw == "enum":
                    kind = "enum"
                else:
                    kind = "namespace"
            stack.append((kind, name, i + 1))
            head_start = i + 1
        elif c == "}":
            if stack:
                kind, name, start = stack.pop()
                if kind == "struct":
                    regions.append((start, i, name))
            head_start = i + 1
        elif c == ";":
            head_start = i + 1
        i += 1
    return regions, stack


def check_plan_schema_only(path_for_rules, stripped, line_starts, findings,
                           allows):
    if not PLAN_SCOPE_FILES.search(path_for_rules):
        return
    regions, _ = scope_stack_scan(stripped)
    for start, end, name in regions:
        if not PLAN_STRUCT_NAME.match(name):
            continue
        # Direct members only: blank nested brace regions inside this one.
        body = list(stripped[start:end])
        depth = 0
        for k, ch in enumerate(body):
            if ch == "{":
                depth += 1
                body[k] = " "
            elif ch == "}":
                depth -= 1
                body[k] = " "
            elif depth > 0 and ch != "\n":
                body[k] = " "
        body = "".join(body)
        # Strip access-specifier labels so they don't glue onto members.
        body = re.sub(r"\b(public|private|protected)\s*:", " ", body)
        pos = 0
        for stmt_m in re.finditer(r"[^;]*;", body):
            stmt = stmt_m.group(0)
            if "(" in stmt:
                continue  # function declaration / call, not a data member
            first_word = re.match(r"\s*([A-Za-z_]\w*)", stmt)
            if first_word and first_word.group(1) in (
                    "using", "typedef", "friend", "static_assert", "enum"):
                continue
            tm = PLAN_FORBIDDEN_TYPE.search(stmt)
            if tm:
                line = line_of(stripped, start + stmt_m.start() + tm.start(),
                               line_starts)
                if not suppressed(allows, line, "plan-schema-only"):
                    findings.append(Finding(
                        path_for_rules, line, "plan-schema-only",
                        f"plan struct '{name}' holds a '{tm.group(1)}' "
                        "member — prepared plans are schema-only and must "
                        "never capture world data (engine/prepared.h "
                        "invariant)"))
            pos = stmt_m.end()
        _ = pos


def check_forbidden_api(path_for_rules, stripped, line_starts, findings,
                        allows):
    norm_path = path_for_rules.replace("\\", "/")
    for pattern, exempt_prefix, message in FORBIDDEN_API_PATTERNS:
        if exempt_prefix and norm_path.startswith(exempt_prefix):
            continue
        for m in pattern.finditer(stripped):
            line = line_of(stripped, m.start(), line_starts)
            if not suppressed(allows, line, "forbidden-api"):
                findings.append(
                    Finding(path_for_rules, line, "forbidden-api", message))


def harvest_status_functions(header_texts):
    """Names of functions declared to return Status/Result in src headers,
    minus names that are ambiguous (also declared returning void)."""
    names = set()
    void_names = set()
    for text in header_texts:
        for m in HARVEST_RE.finditer(text):
            names.add(m.group(1))
        for m in VOID_HARVEST_RE.finditer(text):
            void_names.add(m.group(1))
    names -= void_names
    # Never treat control keywords as calls, whatever the harvest found.
    names -= {"if", "while", "for", "switch", "return", "sizeof", "catch"}
    return names


def match_paren_close(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_brace_close(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def range_for_split(header):
    """Splits a for-header at the range-for ':' (top nesting level, not
    part of '::'). Returns (decl, range_expr) or None for a classic for."""
    depth = 0
    i, n = 0, len(header)
    while i < n:
        c = header[i]
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == ":" and depth <= 0:
            if i + 1 < n and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            return header[:i], header[i + 1:]
        i += 1
    return None


def check_ungoverned_world_loop(path_for_rules, stripped, line_starts,
                                findings, allows):
    if not WORLD_LOOP_SCOPE.search(path_for_rules):
        return
    for m in re.finditer(r"\bfor\s*\(", stripped):
        open_idx = stripped.index("(", m.end() - 1)
        close_idx = match_paren_close(stripped, open_idx)
        if close_idx < 0:
            continue
        split = range_for_split(stripped[open_idx + 1:close_idx])
        if split is None:
            continue
        decl, range_expr = split
        if not (WORLD_RANGE_RE.search(range_expr)
                or WORLD_DECL_RE.search(decl)):
            continue
        k = close_idx + 1
        while k < len(stripped) and stripped[k].isspace():
            k += 1
        if k < len(stripped) and stripped[k] == "{":
            end = match_brace_close(stripped, k)
            body = stripped[k:end + 1] if end >= 0 else stripped[k:]
        else:
            semi = stripped.find(";", k)
            body = stripped[k:semi + 1] if semi >= 0 else stripped[k:]
        pre = stripped[max(0, m.start() - WORLD_LOOP_PRE_CONTEXT):m.start()]
        if GOVERN_RE.search(body) or GOVERN_RE.search(pre):
            continue
        line = line_of(stripped, m.start(), line_starts)
        if not suppressed(allows, line, "ungoverned-world-loop"):
            findings.append(Finding(
                path_for_rules, line, "ungoverned-world-loop",
                "per-world loop with no governance: add GovernPoll/"
                "GovernCharge* in the body (or one GovernPoll directly "
                "before the loop if a mid-loop abort would tear state), "
                "route it through ParallelFor, or justify an O(1)-"
                "arithmetic loop with maybms-lint: "
                "allow(ungoverned-world-loop)"))


def check_unchecked_status(path_for_rules, stripped, line_starts, findings,
                           allows, status_names):
    # Statement anchors: file start and positions right after ; { } : ).
    # A newline is deliberately NOT an anchor — an assignment or argument
    # list continued onto the next line must not look like a fresh
    # statement. The anchored \s* below spans newlines, so a call that is
    # the next *statement* is still found from the previous ;/{/} anchor.
    for m in re.finditer(r"(?:\A|[;{}:)])", stripped):
        anchor = m.end()
        # A ':' anchor means a label (case/public/private) — the second
        # colon of a '::' scope operator is mid-expression, not a
        # statement boundary (`return Status::OK();` must not look like a
        # bare `OK();`).
        if m.group(0) == ":" and anchor >= 2 and stripped[anchor - 2] == ":":
            continue
        call = CALL_RE.match(stripped, anchor)
        if not call:
            continue
        name = call.group(2)
        if name not in status_names:
            continue
        open_idx = stripped.index("(", call.end(2))
        close_idx = match_paren_close(stripped, open_idx)
        if close_idx < 0:
            continue
        after = stripped[close_idx + 1:close_idx + 64]
        after_stripped = after.lstrip()
        if not after_stripped.startswith(";"):
            continue
        # Reject matches that are actually declarations/definitions: the
        # chain must be empty or an object expression, and a preceding
        # type token would have been part of the previous statement.
        before = stripped[max(0, anchor - 64):anchor]
        if re.search(r"\breturn\s*$", before):
            continue
        line = line_of(stripped, call.start(2), line_starts)
        if not suppressed(allows, line, "unchecked-status"):
            findings.append(Finding(
                path_for_rules, line, "unchecked-status",
                f"result of Status/Result-returning call '{name}(...)' is "
                "dropped — check it, propagate with MAYBMS_RETURN_NOT_OK/"
                "MAYBMS_ASSIGN_OR_RETURN, or annotate the intentional "
                "drop with MAYBMS_IGNORE_STATUS"))


def analyze_file(disk_path, path_for_rules, status_names):
    raw = disk_path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    allows, expects, _ = parse_directives(raw_lines)
    stripped = strip_code(raw)
    line_starts = [0]
    for k, ch in enumerate(stripped):
        if ch == "\n":
            line_starts.append(k + 1)
    findings = []
    check_plan_schema_only(path_for_rules, stripped, line_starts, findings,
                           allows)
    check_forbidden_api(path_for_rules, stripped, line_starts, findings,
                        allows)
    check_ungoverned_world_loop(path_for_rules, stripped, line_starts,
                                findings, allows)
    check_unchecked_status(path_for_rules, stripped, line_starts, findings,
                           allows, status_names)
    # Overlapping anchors (e.g. both colons of a `::`) can report the same
    # site twice; one finding per (line, rule) is enough.
    unique = {}
    for f in findings:
        unique.setdefault((f.line, f.rule), f)
    findings = [unique[k] for k in sorted(unique)]
    return findings, expects


def collect_default_files(root):
    files = []
    for pattern in ("src/**/*.h", "src/**/*.cc"):
        files.extend(sorted(root.glob(pattern)))
    return files


def load_status_names(root, extra_files=()):
    texts = []
    for header in sorted(root.glob("src/**/*.h")):
        texts.append(strip_code(header.read_text(encoding="utf-8",
                                                 errors="replace")))
    for f in extra_files:
        texts.append(strip_code(
            pathlib.Path(f).read_text(encoding="utf-8", errors="replace")))
    return harvest_status_functions(texts)


def run_lint(root, files):
    status_names = load_status_names(root)
    all_findings = []
    for f in files:
        rel = str(f.relative_to(root)) if f.is_relative_to(root) else str(f)
        findings, _ = analyze_file(f, rel, status_names)
        all_findings.extend(findings)
    return all_findings


def run_selftest(root):
    fixture_dir = root / "tests" / "lint_selftest"
    fixtures = sorted(list(fixture_dir.glob("*.h")) +
                      list(fixture_dir.glob("*.cc")))
    if not fixtures:
        print(f"lint selftest: no fixtures found under {fixture_dir}",
              file=sys.stderr)
        return 2
    status_names = load_status_names(root, fixtures)
    failures = 0
    total_expected = 0
    for f in fixtures:
        raw_lines = f.read_text(encoding="utf-8").splitlines()
        _, expects, fixture_path = parse_directives(raw_lines)
        if fixture_path is None:
            print(f"{f}: missing '// maybms-lint-fixture: src/...' header",
                  file=sys.stderr)
            failures += 1
            continue
        findings, _ = analyze_file(f, fixture_path, status_names)
        got = {}
        for finding in findings:
            got.setdefault(finding.line, set()).add(finding.rule)
        total_expected += sum(len(v) for v in expects.values())
        for line, rules in sorted(expects.items()):
            missing = rules - got.get(line, set())
            for rule in sorted(missing):
                print(f"{f.name}:{line}: expected [{rule}] but the linter "
                      "did not flag it", file=sys.stderr)
                failures += 1
        for line, rules in sorted(got.items()):
            unexpected = rules - expects.get(line, set())
            for rule in sorted(unexpected):
                print(f"{f.name}:{line}: unexpected [{rule}] finding",
                      file=sys.stderr)
                failures += 1
    if failures:
        print(f"lint selftest FAILED ({failures} mismatches)",
              file=sys.stderr)
        return 1
    print(f"lint selftest OK ({len(fixtures)} fixtures, "
          f"{total_expected} expected findings all flagged, no extras)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path, default=REPO_ROOT,
                        help="repository root (default: inferred)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture self-test instead of linting")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="files to lint (default: src/**/*.{h,cc})")
    args = parser.parse_args(argv)
    root = args.root.resolve()

    if args.selftest:
        return run_selftest(root)

    files = args.files or collect_default_files(root)
    findings = run_lint(root, files)
    for finding in findings:
        print(finding)
    if findings:
        print(f"maybms_lint: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"maybms_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
