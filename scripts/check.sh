#!/usr/bin/env bash
# Tier-1 verify: docs-freshness gate, then configure, build (with
# -Werror), and run the full test suite. The build+test line is the exact
# line every PR is gated on (see ROADMAP.md).
#
# Usage:
#   scripts/check.sh              # docs + lint checks, then build + ctest
#   scripts/check.sh --docs-only  # just the docs-freshness check
#   scripts/check.sh --lint       # just the invariant lint (tools/lint)
set -euo pipefail
cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Invariant lint: self-test the rule engine against the known-bad fixture
# corpus, then lint src/ (see tools/lint/maybms_lint.py for the rules).
# ---------------------------------------------------------------------------
invariant_lint() {
  if ! command -v python3 >/dev/null 2>&1; then
    echo "invariant-lint: python3 not found; skipping" >&2
    return 0
  fi
  python3 tools/lint/maybms_lint.py --selftest
  python3 tools/lint/maybms_lint.py
}

# ---------------------------------------------------------------------------
# Docs freshness: documentation must not reference repo files or bench
# case families that no longer exist.
# ---------------------------------------------------------------------------
docs_freshness() {
  local fail=0

  # 1) Every repo-relative path mentioned in docs/ (and the README) must
  #    exist on disk.
  local path
  while IFS= read -r path; do
    if [[ ! -e "${path}" ]]; then
      echo "docs-freshness: '${path}' is referenced in docs but does not exist" >&2
      fail=1
    fi
  done < <(grep -hoE '(src|tests|bench|examples|scripts|docs)/[A-Za-z0-9_./-]+\.(h|cc|cpp|md|sh|yml|json)' \
             docs/*.md README.md 2>/dev/null | sort -u)

  # 2) Every bench case mentioned in docs (tokens shaped like
  #    family/.../explicit|decomposed|memory|paged/...) must have its
  #    family name registered somewhere in bench/*.cc.
  # The family must appear as a registration string literal — `"family/`
  # or `"family"` — not merely as a substring of a comment or identifier.
  local case family
  while IFS= read -r case; do
    family="${case%%/*}"
    if ! grep -Eq "\"${family}[/\"]" bench/*.cc; then
      echo "docs-freshness: bench case '${case}' (family '${family}') is referenced in docs but not registered in bench/" >&2
      fail=1
    fi
  done < <(grep -hoE '[a-z][a-z0-9_]*(/[a-z0-9_*.:]+)+' docs/*.md README.md 2>/dev/null \
             | grep -E '/(explicit|decomposed|memory|paged)(/|$)' | sort -u)

  if [[ ${fail} -ne 0 ]]; then
    echo "docs-freshness check FAILED" >&2
    return 1
  fi
  echo "docs-freshness check OK"
}

if [[ "${1:-}" == "--lint" ]]; then
  invariant_lint
  exit 0
fi

docs_freshness
if [[ "${1:-}" == "--docs-only" ]]; then
  exit 0
fi
invariant_lint

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
