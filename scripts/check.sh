#!/usr/bin/env bash
# Tier-1 verify: configure, build (with -Werror), and run the full test
# suite. This is the exact line every PR is gated on (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
