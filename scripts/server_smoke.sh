#!/usr/bin/env bash
# Server smoke test: start maybms_server on an ephemeral port, run a
# writer client plus several concurrent reader clients over the wire
# protocol, then SIGTERM the server and require a clean drain (exit 0
# and the drain summary line). Exercises the binaries end to end the way
# the unit tests cannot: through real processes and signals.
#
# Usage: scripts/server_smoke.sh
# Environment:
#   BUILD_DIR  build directory holding the binaries (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SERVER="${BUILD_DIR}/maybms_server"
CLIENT="${BUILD_DIR}/maybms_client"
for bin in "${SERVER}" "${CLIENT}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "server-smoke: ${bin} not built (run scripts/check.sh first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2>/dev/null; then
    kill -KILL "${server_pid}" 2>/dev/null || true
  fi
  rm -rf "${workdir}"
}
trap cleanup EXIT

fail() { echo "server-smoke: FAIL: $*" >&2; exit 1; }

# --- Start the server on an ephemeral port -------------------------------
"${SERVER}" --port 0 --max-connections 8 >"${workdir}/server.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 100); do
  port="$(grep -oE 'listening on [0-9.]+:[0-9]+' "${workdir}/server.log" \
          2>/dev/null | grep -oE '[0-9]+$' || true)"
  [[ -n "${port}" ]] && break
  kill -0 "${server_pid}" 2>/dev/null || fail "server died during startup: $(cat "${workdir}/server.log")"
  sleep 0.1
done
[[ -n "${port}" ]] && echo "server-smoke: serving on port ${port}" \
  || fail "no listening line in $(cat "${workdir}/server.log")"

# --- Writer: create a small probabilistic database -----------------------
"${CLIENT}" --port "${port}" -e "
  create table R (K integer, V integer);
  insert into R values (1,1),(1,2),(2,1),(2,2);
  create table I as select * from R repair by key K;
" >"${workdir}/writer.out" || fail "writer client: $(cat "${workdir}/writer.out")"

# An error reply must exit nonzero without killing the connection state.
if "${CLIENT}" --port "${port}" -e "selec nonsense;" \
     >"${workdir}/err.out" 2>&1; then
  fail "parse error did not produce a nonzero client exit"
fi

# --- Concurrent readers over the shared world-set ------------------------
expected="$("${CLIENT}" --port "${port}" -e "select possible V from I;")"
[[ -n "${expected}" ]] || fail "empty probe result"

reader_pids=()
for i in 1 2 3 4; do
  (
    for _ in $(seq 10); do
      got="$("${CLIENT}" --port "${port}" -e "select possible V from I;")"
      [[ "${got}" == "${expected}" ]] || exit 1
    done
  ) &
  reader_pids+=("$!")
done
for pid in "${reader_pids[@]}"; do
  wait "${pid}" || fail "a concurrent reader saw a result differing from serial execution"
done
echo "server-smoke: 4 concurrent readers x 10 round-trips consistent"

# --- Graceful drain on SIGTERM -------------------------------------------
kill -TERM "${server_pid}"
rc=0
wait "${server_pid}" || rc=$?
server_pid=""
[[ "${rc}" -eq 0 ]] || fail "server exited ${rc} on SIGTERM (want 0): $(cat "${workdir}/server.log")"
grep -q "drained cleanly" "${workdir}/server.log" \
  || fail "no drain summary in server log: $(cat "${workdir}/server.log")"

echo "server-smoke: OK ($(grep 'drained cleanly' "${workdir}/server.log"))"
