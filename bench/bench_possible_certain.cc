// Experiment E2.8/E2.9 (DESIGN.md): regenerates `possible sum(B)` =
// {44, 49, 50, 55} and `certain E ... choice of C` = {e1}, then measures
// possible/certain evaluation:
//  * the per-tuple case (selection over one uncertain relation), where
//    the decomposed engine uses per-component math without enumeration;
//  * the aggregate case, which inherently correlates components.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintExamples() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, Fig1Script());
  MustExecute(*session,
              "create table I as select A, B, C from R "
              "repair by key A weight D;");
  PrintReproduction("Example 2.8: possible sums (paper: 44, 49, 50, 55)",
                    *session, "select possible sum(B) from I;");
  PrintReproduction("Example 2.9: certain E across choice-of C (paper: e1)",
                    *session, "select certain E from S choice of C;");
}

void BM_Quantifier(benchmark::State& state, EngineMode mode,
                   const std::string& query, int n_keys, int group_size) {
  auto session = MakeSession(mode);
  MustExecute(*session, KeyViolationScript(n_keys, group_size));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K;");
  for (auto _ : state) {
    auto result = MustQuery(*session, query);
    benchmark::DoNotOptimize(result.kind());
  }
  state.counters["keys"] = n_keys;
}

void RegisterBenchmarks() {
  struct Variant {
    const char* name;
    const char* query;
  };
  const Variant kTupleLevel[] = {
      {"possible_tuple", "select possible K, V from I where V < 50;"},
      {"certain_tuple", "select certain K, V from I where V < 50;"},
  };
  const Variant kAggregate[] = {
      {"possible_sum", "select possible sum(V) from I;"},
      {"certain_count", "select certain count(*) from I;"},
  };

  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    // Tuple-level: decomposed never enumerates; push sizes far beyond the
    // explicit engine's reach only for decomposed. The explicit sizes
    // were raised once the streaming combiner (worlds/combiner.h) made
    // per-world combination linear in answer tuples.
    for (const auto& v : kTupleLevel) {
      std::vector<int> sizes = {4, 8, 16, 18};
      if (mode == EngineMode::kDecomposed) {
        sizes = {4, 8, 16, 100, 1000, 10000, 20000, 40000};
      }
      for (int n : sizes) {
        benchmark::RegisterBenchmark(
            (std::string(v.name) + "/" + engine + "/keys:" +
             std::to_string(n))
                .c_str(),
            [mode, v](benchmark::State& s) {
              BM_Quantifier(s, mode, v.query, static_cast<int>(s.range(0)),
                            2);
            })
            ->Args({n})
            ->Unit(benchmark::kMicrosecond);
      }
    }
    // Aggregates correlate all key groups; both engines enumerate.
    // keys:18 (262144 worlds) became reachable with the streaming
    // combiner.
    for (const auto& v : kAggregate) {
      for (int n : {4, 8, 12, 16, 18}) {
        benchmark::RegisterBenchmark(
            (std::string(v.name) + "/" + engine + "/keys:" +
             std::to_string(n))
                .c_str(),
            [mode, v](benchmark::State& s) {
              BM_Quantifier(s, mode, v.query, static_cast<int>(s.range(0)),
                            2);
            })
            ->Args({n})
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintExamples();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
