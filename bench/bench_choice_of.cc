// Experiment E2.6/E2.7 (DESIGN.md): regenerates the choice-of examples —
// two worlds partitioning S by E, and the weighted three-way choice on R
// with P = 0.35/0.39/0.26 — then sweeps `choice of` over relations with a
// growing number of partitions.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintExamples() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, Fig1Script());
  PrintReproduction("Example 2.6: select * from S choice of E (two worlds)",
                    *session, "select * from S choice of E;");
  PrintReproduction(
      "Example 2.7: choice of A weight D (paper: P = 0.35, 0.39, 0.26)",
      *session, "select * from R choice of A weight D;");
}

/// choice-of over a relation with `partitions` distinct K-values of
/// `per_partition` rows each — one world per partition.
void BM_ChoiceOf(benchmark::State& state, EngineMode mode, bool weighted) {
  const int partitions = static_cast<int>(state.range(0));
  const int per_partition = static_cast<int>(state.range(1));
  const std::string script = KeyViolationScript(partitions, per_partition);
  auto session = MakeSession(mode);
  MustExecute(*session, script);
  const std::string query = weighted
                                ? "select K, V from R choice of K weight W;"
                                : "select K, V from R choice of K;";
  for (auto _ : state) {
    auto result = MustQuery(*session, query);
    benchmark::DoNotOptimize(result.worlds().size());
  }
  state.counters["partitions"] = partitions;
}

void RegisterBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string prefix = mode == EngineMode::kExplicit ? "choice_of/explicit"
                                                       : "choice_of/decomposed";
    for (int partitions : {2, 8, 32, 128, 512}) {
      benchmark::RegisterBenchmark(
          (prefix + "/partitions:" + std::to_string(partitions)).c_str(),
          [mode](benchmark::State& s) { BM_ChoiceOf(s, mode, false); })
          ->Args({partitions, 4})
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark(
        (prefix + "/weighted/partitions:128").c_str(),
        [mode](benchmark::State& s) { BM_ChoiceOf(s, mode, true); })
        ->Args({128, 4})
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintExamples();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
