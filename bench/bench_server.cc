// Network-server throughput (ISSUE 9): end-to-end round-trips per second
// over the loopback wire protocol, scaling the number of concurrent
// client connections. Every round-trip is a full framed request/response
// for a SELECT that pins the published snapshot — the lock-free reader
// path — so the family measures how concurrent sessions share one
// world-set. Note the qps scaling across conns:{1,4,16} is bounded by
// the machine's core count; single-core runners serialize the workers
// and mostly measure context-switch overhead at higher conns.
//
// Case family:
//   server/throughput/conns:{1,4,16}
//
// Counters: qps (round-trips per wall-clock second, all connections).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using maybms::StatusCode;
using maybms::server::ConnectTo;
using maybms::server::Fd;
using maybms::server::RoundTrip;
using maybms::server::Server;
using maybms::server::ServerOptions;

constexpr int kOpsPerClientPerIteration = 50;
constexpr int kTimeoutMs = 30'000;
constexpr char kProbe[] = "select possible V from I;";

/// Starts a server preloaded with a small repaired relation (16 worlds),
/// so the probe SELECT exercises real per-world evaluation rather than a
/// constant-fold.
std::unique_ptr<Server> StartLoadedServer(benchmark::State& state,
                                          size_t max_connections) {
  ServerOptions options;
  options.max_connections = max_connections;
  auto server = Server::Start(std::move(options));
  if (!server.ok()) {
    state.SkipWithError(server.status().ToString().c_str());
    return nullptr;
  }
  auto seeded = (*server)->Execute(
      "create table R (K integer, V integer);"
      "insert into R values (1,1),(1,2),(2,1),(2,2),"
      "                     (3,1),(3,2),(4,1),(4,2);"
      "create table I as select * from R repair by key K;");
  if (seeded.first != StatusCode::kOk) {
    state.SkipWithError(seeded.second.c_str());
    return nullptr;
  }
  return std::move(*server);
}

void BM_ServerThroughput(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  std::unique_ptr<Server> server =
      StartLoadedServer(state, static_cast<size_t>(conns));
  if (server == nullptr) return;

  // Persistent connections: opened once, reused for every iteration, so
  // the timed region is pure request/response traffic.
  std::vector<Fd> connections;
  connections.reserve(static_cast<size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    auto conn = ConnectTo("127.0.0.1", server->port());
    if (!conn.ok()) {
      state.SkipWithError(conn.status().ToString().c_str());
      return;
    }
    connections.push_back(std::move(*conn));
  }

  bool failed = false;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      clients.emplace_back([&, c] {
        for (int op = 0; op < kOpsPerClientPerIteration; ++op) {
          auto reply = RoundTrip(connections[static_cast<size_t>(c)], kProbe,
                                 kTimeoutMs);
          if (!reply.ok() || reply->first != StatusCode::kOk) {
            failed = true;
            return;
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    if (failed) {
      state.SkipWithError("round-trip failed mid-benchmark");
      return;
    }
  }

  const double ops = static_cast<double>(state.iterations()) * conns *
                     kOpsPerClientPerIteration;
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["qps"] =
      benchmark::Counter(ops, benchmark::Counter::kIsRate);
}

void RegisterBenchmarks() {
  benchmark::RegisterBenchmark("server/throughput", BM_ServerThroughput)
      ->ArgName("conns")
      ->Arg(1)
      ->Arg(4)
      ->Arg(16)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
