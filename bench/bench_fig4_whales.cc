// Experiment F3/F4 (DESIGN.md): regenerates the whale-tracking scenario
// of §3.1 — the six worlds of Figure 3 and the two Groups instances of
// Figure 4 — then sweeps the full pipeline (views with assert, group
// worlds by) over observation sets with a growing number of worlds.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

const char kGroupsQuery[] =
    "select possible i2.Gender as G2, i3.Gender as G3 "
    "from I i2, I i3 where i2.Id = 2 and i3.Id = 3 "
    "group worlds by (select Pos from I where Id = 2);";

void PrintFigures() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, Fig3Script(6));
  PrintReproduction("Figure 3: the six whale-tracking worlds", *session,
                    "select * from I;");
  PrintReproduction(
      "Query Q: possible attack (paper: yes — worlds A through D)", *session,
      "select possible 'yes' from I where Id=1 and Pos='b';");
  PrintReproduction(
      "Figure 4: gender combinations per escape route "
      "(paper: 4 rows for pos=c, 2 rows for pos=b)",
      *session, kGroupsQuery);
}

void BM_GroupWorldsBy(benchmark::State& state, EngineMode mode) {
  const int worlds = static_cast<int>(state.range(0));
  auto session = MakeSession(mode);
  MustExecute(*session, Fig3Script(worlds));
  for (auto _ : state) {
    auto result = MustQuery(*session, kGroupsQuery);
    benchmark::DoNotOptimize(result.groups().size());
  }
  state.counters["worlds"] = worlds;
}

void BM_AssertView(benchmark::State& state, EngineMode mode) {
  const int worlds = static_cast<int>(state.range(0));
  auto session = MakeSession(mode);
  MustExecute(*session, Fig3Script(worlds));
  MustExecute(*session,
              "create view Valid as select * from I assert exists"
              "(select * from I where Gender='cow' and Pos='b');");
  for (auto _ : state) {
    auto result = MustQuery(*session, "select certain * from Valid;");
    benchmark::DoNotOptimize(result.kind());
  }
  state.counters["worlds"] = worlds;
}

void RegisterBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    for (int worlds : {6, 24, 96, 384}) {
      benchmark::RegisterBenchmark(
          ("group_worlds_by/" + engine + "/worlds:" + std::to_string(worlds))
              .c_str(),
          [mode](benchmark::State& s) { BM_GroupWorldsBy(s, mode); })
          ->Args({worlds})
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          ("assert_view/" + engine + "/worlds:" + std::to_string(worlds))
              .c_str(),
          [mode](benchmark::State& s) { BM_AssertView(s, mode); })
          ->Args({worlds})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintFigures();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
