#ifndef MAYBMS_BENCH_WORKLOADS_H_
#define MAYBMS_BENCH_WORKLOADS_H_

#include <memory>
#include <string>

#include "isql/session.h"

namespace maybms::bench {

/// SQL script that loads the paper's Figure 1 database (relations R, S).
std::string Fig1Script();

/// SQL script for the Figure 3 whale observations; creates relation I with
/// `worlds` possible worlds via choice-of (6 = the paper's figure; larger
/// values replicate the observation pattern).
std::string Fig3Script(int worlds);

/// SQL script for the Figure 5 dirty SSN/TEL relation with `records`
/// persons (2 = the paper's figure).
std::string Fig5Script(int records);

/// SQL script creating a key-violating relation R(K, V, W) with `n_keys`
/// key groups of `group_size` tuples each; repairing K yields
/// group_size^n_keys worlds.
std::string KeyViolationScript(int n_keys, int group_size,
                               uint32_t seed = 42);

/// Fresh session with the given engine, generous display/merge caps.
/// `threads` caps the per-world execution parallelism (0 = the
/// MAYBMS_THREADS environment variable, else hardware concurrency) — the
/// threads:{1,2,4,8} bench axes pass it explicitly so a sweep is
/// self-contained regardless of the environment.
std::unique_ptr<isql::Session> MakeSession(isql::EngineMode mode,
                                           size_t threads = 0);

/// Runs a script, aborting the process on error (benchmark setup).
void MustExecute(isql::Session& session, const std::string& sql);

/// Runs one statement, aborting on error; returns the result.
isql::QueryResult MustQuery(isql::Session& session, const std::string& sql);

/// Prints a banner + rendered result, used by every bench binary to
/// regenerate its paper figure before timing starts.
void PrintReproduction(const std::string& title, isql::Session& session,
                       const std::string& query);

}  // namespace maybms::bench

#endif  // MAYBMS_BENCH_WORKLOADS_H_
