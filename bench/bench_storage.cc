// Storage microbenchmarks (ISSUE 8): scan / materialize / repair-fanout
// throughput on in-memory tables vs durable paged storage across
// buffer-pool budgets, cold-restart-to-first-answer latency, and — via a
// whole-binary allocation tracker — the resident-byte evidence for the
// pool's central claim: scanning an arbitrarily large relation touches
// O(pool) memory, not O(relation).
//
// Case families:
//   storage/scan/{memory,paged/pool_pages:{64,1024,unbounded}}
//   storage/materialize/{memory,paged/pool_pages:{64,1024,unbounded}}
//   storage/repair_fanout/{memory,paged/pool_pages:{64,1024,unbounded}}
//   storage/cold_restart/paged/pool_pages:{64,1024,unbounded}
// Paged cases report peak_mb — the allocation high-water mark of one cold
// scan with a fresh pool — which grows with pool_pages, not table size.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/workloads.h"
#include "isql/session.h"
#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/paged_table.h"
#include "storage/table.h"
#include "types/value.h"

// ---------------------------------------------------------------------------
// Allocation tracking (whole bench binary): every operator new carries a
// small size header so live and peak byte counts are exact. Same idiom as
// tests/world_storage_test.cc.
// ---------------------------------------------------------------------------

namespace {

std::atomic<size_t> g_live_bytes{0};
std::atomic<size_t> g_peak_bytes{0};

constexpr size_t kHeader = alignof(std::max_align_t);

void TrackAlloc(size_t n) {
  size_t live = g_live_bytes.fetch_add(n) + n;
  size_t peak = g_peak_bytes.load();
  while (peak < live && !g_peak_bytes.compare_exchange_weak(peak, live)) {
  }
}

void* TrackedNew(size_t n) {
  void* base = std::malloc(n + kHeader);
  if (base == nullptr) throw std::bad_alloc();
  *reinterpret_cast<size_t*>(base) = n;
  TrackAlloc(n);
  return static_cast<char*>(base) + kHeader;
}

void TrackedDelete(void* p) noexcept {
  if (p == nullptr) return;
  char* base = static_cast<char*>(p) - kHeader;
  g_live_bytes.fetch_sub(*reinterpret_cast<size_t*>(base));
  std::free(base);
}

/// Peak allocation (bytes above the entry live count) while running `fn`.
template <typename Fn>
size_t PeakDuring(Fn&& fn) {
  const size_t live_before = g_live_bytes.load();
  g_peak_bytes.store(live_before);
  fn();
  return g_peak_bytes.load() - live_before;
}

}  // namespace

void* operator new(size_t n) { return TrackedNew(n); }
void* operator new[](size_t n) { return TrackedNew(n); }
void operator delete(void* p) noexcept { TrackedDelete(p); }
void operator delete[](void* p) noexcept { TrackedDelete(p); }
void operator delete(void* p, size_t) noexcept { TrackedDelete(p); }
void operator delete[](void* p, size_t) noexcept { TrackedDelete(p); }

namespace maybms::bench {
namespace {

using isql::EngineMode;
using isql::Session;
using isql::SessionOptions;
using isql::StorageMode;
using storage::BufferPool;
using storage::File;
using storage::PagedTable;
using storage::PageRun;

// ~740 pages at ~30 bytes/row: a 64-page pool must evict continuously,
// 1024 holds the whole run, "unbounded" proves the budget is never the
// bottleneck when memory is plentiful.
constexpr int kRows = 200000;
constexpr size_t kUnbounded = size_t{1} << 30;

Table MakeBigTable() {
  Schema schema({Column("K", DataType::kInteger),
                 Column("V", DataType::kInteger),
                 Column("T", DataType::kText)});
  Table table(schema);
  for (int i = 0; i < kRows; ++i) {
    table.AppendUnchecked(Tuple({Value::Integer(i % 97),
                                 Value::Integer(i),
                                 Value::Text("r" + std::to_string(i % 1000))}));
  }
  return table;
}

/// A table written once as a page run in a temp file; each benchmark
/// iteration reads it back through its own fresh BufferPool.
class PagedFixture {
 public:
  PagedFixture() {
    dir_ = std::filesystem::temp_directory_path() /
           ("maybms-bench-storage-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto file = File::Open((dir_ / "bench.db").string(), /*create=*/true);
    if (!file.ok()) std::abort();
    file_ = std::move(file).value();
    Table table = MakeBigTable();
    BufferPool setup_pool(file_.get(), 256);
    uint64_t next_page = 0;
    auto written = PagedTable::Write(table, &setup_pool, &next_page);
    if (!written.ok()) std::abort();
    run_ = written.value().run();
    if (!setup_pool.FlushAll().ok()) std::abort();
  }

  ~PagedFixture() {
    file_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  File* file() { return file_.get(); }
  const PageRun& run() const { return run_; }

  static PagedFixture& Instance() {
    static PagedFixture fixture;
    return fixture;
  }

 private:
  std::filesystem::path dir_;
  std::unique_ptr<File> file_;
  PageRun run_;
};

int64_t SumPaged(BufferPool* pool, const PageRun& run) {
  PagedTable table(pool, run);
  int64_t sum = 0;
  Status status = table.Scan([&sum](Tuple t) {
    sum += t.value(1).AsInteger();
    return Status::OK();
  });
  if (!status.ok()) std::abort();
  return sum;
}

// --- storage/scan ----------------------------------------------------------

void BM_ScanMemory(benchmark::State& state) {
  Table table = MakeBigTable();
  for (auto _ : state) {
    int64_t sum = 0;
    for (const Tuple& t : table.rows()) sum += t.value(1).AsInteger();
    benchmark::DoNotOptimize(sum);
  }
  state.counters["rows"] = kRows;
}

void BM_ScanPaged(benchmark::State& state, size_t pool_pages) {
  PagedFixture& fx = PagedFixture::Instance();
  // O(pool) evidence: the cold-scan high-water mark with a fresh pool.
  const size_t peak = PeakDuring([&] {
    BufferPool pool(fx.file(), pool_pages);
    benchmark::DoNotOptimize(SumPaged(&pool, fx.run()));
  });
  BufferPool pool(fx.file(), pool_pages);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SumPaged(&pool, fx.run()));
  }
  state.counters["rows"] = kRows;
  state.counters["peak_mb"] = static_cast<double>(peak) / (1024.0 * 1024.0);
  state.counters["evictions"] = static_cast<double>(pool.stats().evictions);
}

// --- storage/materialize ---------------------------------------------------

void BM_MaterializeMemory(benchmark::State& state) {
  Table table = MakeBigTable();
  for (auto _ : state) {
    Table copy = table;
    benchmark::DoNotOptimize(copy.num_rows());
  }
  state.counters["rows"] = kRows;
}

void BM_MaterializePaged(benchmark::State& state, size_t pool_pages) {
  PagedFixture& fx = PagedFixture::Instance();
  BufferPool pool(fx.file(), pool_pages);
  for (auto _ : state) {
    PagedTable table(&pool, fx.run());
    auto materialized = table.Materialize();
    if (!materialized.ok()) std::abort();
    benchmark::DoNotOptimize(materialized.value()->num_rows());
  }
  state.counters["rows"] = kRows;
}

// --- storage/repair_fanout -------------------------------------------------
// End-to-end session path: a key-repair fanning out to 256 worlds, where
// paged mode also pays the per-statement commit + reload. Sessions are
// rebuilt per iteration (the repair target must not already exist).

SessionOptions StorageOptions(bool paged, size_t pool_pages) {
  SessionOptions options;
  options.engine = EngineMode::kDecomposed;
  options.storage = paged ? StorageMode::kPaged : StorageMode::kMemory;
  options.pool_pages = pool_pages;
  options.max_display_worlds = 1 << 20;
  return options;
}

void BM_RepairFanout(benchmark::State& state, bool paged, size_t pool_pages) {
  for (auto _ : state) {
    state.PauseTiming();
    auto session = std::make_unique<Session>(StorageOptions(paged, pool_pages));
    MustExecute(*session, KeyViolationScript(/*n_keys=*/8, /*group_size=*/2));
    state.ResumeTiming();
    MustQuery(*session, "create table I as select * from R repair by key K;");
    state.PauseTiming();
    session.reset();
    state.ResumeTiming();
  }
  state.counters["worlds"] = 256;
}

// --- storage/cold_restart --------------------------------------------------
// Restart-to-first-answer: open a committed store from disk, recover the
// world-set, and answer one aggregate. Measures Open + Load + the first
// page-fault storm at each pool budget.

void BM_ColdRestart(benchmark::State& state, size_t pool_pages) {
  static const std::string dir = [] {
    std::string d = (std::filesystem::temp_directory_path() /
                     ("maybms-bench-restart-" + std::to_string(::getpid())))
                        .string();
    std::filesystem::create_directories(d);
    SessionOptions options = StorageOptions(/*paged=*/true, 1024);
    options.storage_dir = d;
    Session seed(options);
    MustExecute(seed, "create table Big (K integer, V integer, T text);");
    for (int batch = 0; batch < 20; ++batch) {
      std::string values;
      for (int i = 0; i < 1000; ++i) {
        const int row = batch * 1000 + i;
        values += (i ? ", (" : "(") + std::to_string(row % 97) + ", " +
                  std::to_string(row) + ", 'r" + std::to_string(row % 1000) +
                  "')";
      }
      MustExecute(seed, "insert into Big values " + values + ";");
    }
    return d;
  }();

  SessionOptions options = StorageOptions(/*paged=*/true, pool_pages);
  options.storage_dir = dir;
  for (auto _ : state) {
    Session session(options);
    MustQuery(session, "select count(*) from Big;");
  }
}

void RegisterBenchmarks() {
  struct PoolAxis {
    const char* name;
    size_t pages;
  };
  const PoolAxis kPools[] = {
      {"64", 64}, {"1024", 1024}, {"unbounded", kUnbounded}};

  benchmark::RegisterBenchmark("storage/scan/memory", BM_ScanMemory)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("storage/materialize/memory",
                               BM_MaterializeMemory)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "storage/repair_fanout/memory",
      [](benchmark::State& s) { BM_RepairFanout(s, false, 0); })
      ->Unit(benchmark::kMillisecond);

  for (const PoolAxis& pool : kPools) {
    const std::string axis = "/pool_pages:" + std::string(pool.name);
    const size_t pages = pool.pages;
    benchmark::RegisterBenchmark(
        ("storage/scan/paged" + axis).c_str(),
        [pages](benchmark::State& s) { BM_ScanPaged(s, pages); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("storage/materialize/paged" + axis).c_str(),
        [pages](benchmark::State& s) { BM_MaterializePaged(s, pages); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("storage/repair_fanout/paged" + axis).c_str(),
        [pages](benchmark::State& s) { BM_RepairFanout(s, true, pages); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("storage/cold_restart/paged" + axis).c_str(),
        [pages](benchmark::State& s) { BM_ColdRestart(s, pages); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
