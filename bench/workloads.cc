#include "bench/workloads.h"

#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>

#include "isql/formatter.h"

namespace maybms::bench {

std::string Fig1Script() {
  return R"sql(
    create table R (A text, B integer, C text, D integer);
    insert into R values
      ('a1', 10, 'c1', 2), ('a1', 15, 'c2', 6), ('a2', 14, 'c3', 4),
      ('a2', 20, 'c4', 5), ('a3', 20, 'c5', 6);
    create table S (C text, E text);
    insert into S values ('c2', 'e1'), ('c4', 'e1'), ('c4', 'e2');
  )sql";
}

std::string Fig3Script(int worlds) {
  // The six-world observation pattern of Figure 3, extended cyclically
  // when more worlds are requested.
  static const char* kGender2[] = {"cow", "cow", "bull", "bull", "cow", "bull"};
  static const char* kGender3[] = {"cow", "bull", "cow", "bull", "cow", "cow"};
  static const char* kPos1[] = {"b", "b", "b", "b", "c", "c"};
  static const char* kPos2[] = {"c", "c", "c", "c", "b", "b"};
  std::ostringstream script;
  script << "create table Obs (WID integer, Id integer, Species text, "
            "Gender text, Pos text);\n";
  script << "insert into Obs values ";
  for (int w = 0; w < worlds; ++w) {
    int p = w % 6;
    if (w > 0) script << ", ";
    script << "(" << w << ", 1, 'sperm', 'calf', '" << kPos1[p] << "'), "
           << "(" << w << ", 2, 'sperm', '" << kGender2[p] << "', '"
           << kPos2[p] << "'), "
           << "(" << w << ", 3, 'orca', '" << kGender3[p] << "', 'a')";
  }
  script << ";\n";
  script << "create table I as select Id, Species, Gender, Pos from Obs "
            "choice of WID;\n";
  return script.str();
}

std::string Fig5Script(int records) {
  std::ostringstream script;
  script << "create table R (SSN integer, TEL integer);\n";
  script << "insert into R values ";
  for (int i = 0; i < records; ++i) {
    if (i > 0) script << ", ";
    // Distinct SSN/TEL values per record; the swap doubt applies per row.
    script << "(" << (1000 + i) << ", " << (5000 + i) << ")";
  }
  script << ";\n";
  script << "create table S as "
            "select SSN, TEL, SSN as SSN', TEL as TEL' from R "
            "union select SSN, TEL, TEL as SSN', SSN as TEL' from R;\n";
  script << "create table T as select SSN', TEL' from S "
            "repair by key SSN, TEL;\n";
  return script.str();
}

std::string KeyViolationScript(int n_keys, int group_size, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> value(0, 99);
  std::uniform_int_distribution<int> weight(1, 9);
  std::ostringstream script;
  script << "create table R (K integer, V integer, W integer);\n";
  script << "insert into R values ";
  bool first = true;
  for (int k = 0; k < n_keys; ++k) {
    for (int g = 0; g < group_size; ++g) {
      if (!first) script << ", ";
      first = false;
      script << "(" << k << ", " << value(rng) << ", " << weight(rng) << ")";
    }
  }
  script << ";\n";
  return script.str();
}

std::unique_ptr<isql::Session> MakeSession(isql::EngineMode mode,
                                           size_t threads) {
  isql::SessionOptions options;
  options.engine = mode;
  options.max_display_worlds = 1 << 22;
  options.max_explicit_worlds = 1 << 22;
  options.max_merge = 1 << 22;
  options.threads = threads;
  return std::make_unique<isql::Session>(options);
}

void MustExecute(isql::Session& session, const std::string& sql) {
  auto result = session.ExecuteScript(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark setup failed: %s\nscript: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
}

isql::QueryResult MustQuery(isql::Session& session, const std::string& sql) {
  auto result = session.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\nquery: %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return std::move(result).value();
}

void PrintReproduction(const std::string& title, isql::Session& session,
                       const std::string& query) {
  std::printf("---- %s ----\n", title.c_str());
  std::printf("isql> %s\n", query.c_str());
  auto result = session.Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", isql::FormatQueryResult(*result).c_str());
}

}  // namespace maybms::bench
