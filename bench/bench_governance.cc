// Resource-governance overhead and responsiveness (ISSUE 10).
//
// Two questions, each its own case family segment:
//
//  * `governance/overload/armed/...` vs `.../ungoverned/...` — what does
//    an ARMED but never-fired budget cost? The same 4096-world quantifier
//    statement runs with no limits and with generous limits (deadline,
//    world cap, and memory cap all set far above what the statement
//    uses). The armed run pays the poll-site bookkeeping: a thread-local
//    counter bump per poll, a clock read every 16th, a probe every 64th.
//    Acceptance: armed within 2% of ungoverned.
//
//  * `governance/overload/cancel/...` — time-to-cancel: how long does a
//    4096-world statement take to ABORT once its deadline has already
//    passed? The session's deadline is 1 ms; the measured time is
//    dominated by how quickly the per-world loops reach a poll site and
//    stop, which is the latency a client sees between dropping a
//    connection (or a drain starting) and the worker being free again.
//
// The cancel cases also prove the no-tear contract under timing (the
// kill-point battery in tests/governance_test.cc proves it exhaustively
// under injection): every aborted iteration must leave the probe
// relation untouched.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/query_context.h"
#include "base/status.h"
#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

constexpr int kNKeys = 12;  // 2^12 = 4096 worlds

std::string WorkloadScript() {
  return KeyViolationScript(kNKeys, 2) +
         "create table I as select K, V from R repair by key K;";
}

// The measured statement: a full per-world quantifier walk — every world
// evaluated, every answer fed through the combiner — so the poll sites
// in the per-world loop, the fan-out, and the combine all run.
constexpr const char* kQuery = "select conf, K, V from I where K < 3;";

std::unique_ptr<isql::Session> MakeGovernedSession(EngineMode mode,
                                                   bool armed) {
  isql::SessionOptions options;
  options.engine = mode;
  options.max_display_worlds = 1 << 20;
  if (armed) {
    // Generous: never fires on this workload, but every poll site now
    // does its full bookkeeping.
    options.statement_timeout_ms = 600'000;
    options.max_worlds = 1 << 30;
    options.mem_budget_mb = 4096;
  }
  return std::make_unique<isql::Session>(options);
}

void BM_Overload(benchmark::State& state, EngineMode mode, bool armed) {
  auto session = MakeGovernedSession(mode, armed);
  MustExecute(*session, WorkloadScript());
  for (auto _ : state) {
    auto result = MustQuery(*session, kQuery);
    benchmark::DoNotOptimize(result.kind());
  }
  state.counters["worlds"] = 1 << kNKeys;
}

void BM_TimeToCancel(benchmark::State& state, EngineMode mode) {
  // Setup runs ungoverned; only the measured statement carries the
  // already-hopeless 1 ms deadline, installed per statement the way an
  // embedding host would (an externally installed QueryContext wins
  // over the session's own limits).
  auto session = MakeGovernedSession(mode, /*armed=*/false);
  MustExecute(*session, WorkloadScript());
  base::GovernanceLimits limits;
  limits.deadline_ms = 1;
  for (auto _ : state) {
    base::QueryContext ctx(limits);
    base::QueryContextScope scope(&ctx);
    auto result =
        session->Execute("create table J as select K, V from I where K < 6;");
    if (result.ok()) {
      // Too fast to govern on this machine: nothing to measure, but the
      // case must not poison the baseline with a lie — report and stop.
      state.SkipWithError("statement finished inside the 1 ms deadline");
      break;
    }
    if (result.status().code() != StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr, "unexpected verdict: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
  }
  state.counters["worlds"] = 1 << kNKeys;
}

void RegisterGovernanceBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    const std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    benchmark::RegisterBenchmark(
        ("governance/overload/ungoverned/" + engine + "/worlds:4096").c_str(),
        [mode](benchmark::State& s) { BM_Overload(s, mode, false); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("governance/overload/armed/" + engine + "/worlds:4096").c_str(),
        [mode](benchmark::State& s) { BM_Overload(s, mode, true); })
        ->Unit(benchmark::kMillisecond);
  }
  // Time-to-cancel is an explicit-engine scenario: the decomposed engine
  // answers this statement without a 4096-world walk, so there is no
  // long-running loop to interrupt.
  benchmark::RegisterBenchmark(
      "governance/overload/cancel/explicit/worlds:4096",
      [](benchmark::State& s) { BM_TimeToCancel(s, EngineMode::kExplicit); })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::RegisterGovernanceBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
