#!/usr/bin/env bash
# Runs every bench binary and merges their JSON outputs into one baseline
# file (default BENCH_seed.json in the repo root).
#
# Usage:
#   bench/run_all.sh [output.json]
#
# Environment:
#   BUILD_DIR       build directory holding the bench binaries (default: build)
#   BENCH_MIN_TIME  per-benchmark min time (default: 0.05s — a smoke
#                   baseline; raise for stable numbers, e.g. 0.5s)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${BENCH_MIN_TIME:-0.05s}"
OUT="${1:-BENCH_seed.json}"

if ! ls "${BUILD_DIR}"/bench_* >/dev/null 2>&1; then
  echo "no bench binaries in ${BUILD_DIR}/ — build first (scripts/check.sh)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

for bin in "${BUILD_DIR}"/bench_*; do
  name="$(basename "${bin}")"
  echo "== ${name}" >&2
  "${bin}" --benchmark_min_time="${MIN_TIME}" \
           --benchmark_out="${tmpdir}/${name}.json" \
           --benchmark_out_format=json >&2
done

python3 - "${OUT}" "${tmpdir}"/*.json <<'EOF'
import json, os, sys

out_path, inputs = sys.argv[1], sys.argv[2:]
merged = {"context": None, "benchmarks": {}}
for path in inputs:
    with open(path) as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    name = os.path.splitext(os.path.basename(path))[0]
    merged["benchmarks"][name] = data.get("benchmarks", [])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
total = sum(len(v) for v in merged["benchmarks"].values())
print(f"wrote {out_path}: {total} benchmark cases "
      f"from {len(inputs)} binaries")
EOF
