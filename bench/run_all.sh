#!/usr/bin/env bash
# Runs every bench binary and merges their JSON outputs into one baseline
# file (default BENCH_seed.json in the repo root). Optionally diffs the
# fresh numbers against an earlier baseline and fails on regressions.
#
# Usage:
#   bench/run_all.sh [output.json] [--compare BASE.json] [--threshold 0.25]
#                    [--warn-only] [--threads N]
#
#   --compare BASE.json  after writing the output, compare each case's
#                        real_time against BASE.json (cases matched by
#                        binary + benchmark name; cases present in only
#                        one file are ignored)
#   --threshold F        regression tolerance as a fraction (default 0.25:
#                        fail when a case is >25% slower than the base)
#   --warn-only          print regressions but exit 0 (timings on shared
#                        runners can be noisy)
#   --threads N          export MAYBMS_THREADS=N for the run: every bench
#                        case WITHOUT an explicit threads:X axis executes
#                        its per-world loops with N workers. Results are
#                        byte-identical at any N (base/thread_pool.h);
#                        only timings change. Baselines compared across
#                        machines should pin --threads 1.
#
# Environment:
#   BUILD_DIR       build directory holding the bench binaries (default: build)
#   BENCH_MIN_TIME  per-benchmark min time (default: 0.05s — a smoke
#                   baseline; raise for stable numbers, e.g. 0.5s)
#   MAYBMS_BENCH_WARN_ONLY=1
#                   escape hatch: behave as if --warn-only was passed.
#                   The CI perf gate hard-fails by default; set this (e.g.
#                   as a repository variable) to temporarily demote a
#                   known-noisy regression to a warning without editing
#                   the workflow.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${BENCH_MIN_TIME:-0.05s}"

OUT=""
COMPARE=""
THRESHOLD="0.25"
WARN_ONLY=0
if [[ "${MAYBMS_BENCH_WARN_ONLY:-0}" == "1" ]]; then
  WARN_ONLY=1
fi
while [[ $# -gt 0 ]]; do
  case "$1" in
    --compare)   COMPARE="$2"; shift 2 ;;
    --threshold) THRESHOLD="$2"; shift 2 ;;
    --warn-only) WARN_ONLY=1; shift ;;
    --threads)   export MAYBMS_THREADS="$2"; shift 2 ;;
    *)           OUT="$1"; shift ;;
  esac
done
OUT="${OUT:-BENCH_seed.json}"

if ! ls "${BUILD_DIR}"/bench_* >/dev/null 2>&1; then
  echo "no bench binaries in ${BUILD_DIR}/ — build first (scripts/check.sh)" >&2
  exit 1
fi
if [[ -n "${COMPARE}" && ! -f "${COMPARE}" ]]; then
  echo "compare baseline not found: ${COMPARE}" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

for bin in "${BUILD_DIR}"/bench_*; do
  name="$(basename "${bin}")"
  echo "== ${name}" >&2
  "${bin}" --benchmark_min_time="${MIN_TIME}" \
           --benchmark_out="${tmpdir}/${name}.json" \
           --benchmark_out_format=json >&2
done

python3 - "${OUT}" "${COMPARE}" "${THRESHOLD}" "${WARN_ONLY}" \
    "${tmpdir}"/*.json <<'EOF'
import json, os, sys

out_path, compare_path, threshold, warn_only = sys.argv[1:5]
inputs = sys.argv[5:]
threshold = float(threshold)
warn_only = warn_only == "1"

merged = {"context": None, "benchmarks": {}}
for path in inputs:
    with open(path) as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    name = os.path.splitext(os.path.basename(path))[0]
    merged["benchmarks"][name] = data.get("benchmarks", [])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
total = sum(len(v) for v in merged["benchmarks"].values())
print(f"wrote {out_path}: {total} benchmark cases "
      f"from {len(inputs)} binaries")

if not compare_path:
    sys.exit(0)

def times(doc):
    out = {}
    for binary, cases in doc.get("benchmarks", {}).items():
        for case in cases:
            if case.get("run_type") == "aggregate":
                continue
            t = case.get("real_time")
            if t is not None:
                key = f"{binary}/{case.get('name')}"
                out[key] = (float(t), case.get("time_unit", "ns"))
    return out

with open(compare_path) as f:
    base = times(json.load(f))
fresh = times(merged)

common = sorted(set(base) & set(fresh))
regressions = []
improvements = 0
for key in common:
    old, unit = base[key]
    new, _ = fresh[key]
    if old <= 0:
        continue
    ratio = new / old
    if ratio > 1.0 + threshold:
        regressions.append((key, old, new, unit, ratio))
    elif ratio < 1.0 - threshold:
        improvements += 1

print(f"compared {len(common)} cases against {compare_path}: "
      f"{len(regressions)} regression(s) beyond {threshold:.0%}, "
      f"{improvements} improvement(s)")
for key, old, new, unit, ratio in regressions:
    print(f"  REGRESSION {key}: {old:.1f} -> {new:.1f} {unit} ({ratio:.2f}x)")
if regressions and not warn_only:
    sys.exit(1)
EOF
