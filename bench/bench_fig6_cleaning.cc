// Experiment F5-F7 (DESIGN.md): regenerates the data-cleaning pipeline of
// §3.2 — the swap-union of Figure 5, the four readings of Figure 6 and
// the three FD-consistent worlds of Figure 7 — then sweeps the pipeline
// over a growing number of dirty records. Repairing n records yields 2^n
// readings: the explicit engine materializes them, the decomposed engine
// keeps one component per record until the FD assert correlates them.

#include <benchmark/benchmark.h>

#include <cmath>

#include <string>

#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

const char kFdAssert[] =
    "create table U as select * from T assert not exists "
    "(select 'yes' from T t1, T t2 "
    " where t1.SSN' = t2.SSN' and t1.TEL' <> t2.TEL');";

void PrintFigures() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, R"sql(
    create table R (SSN integer, TEL integer);
    insert into R values (123, 456), (789, 123);
    create table S as
      select SSN, TEL, SSN as SSN', TEL as TEL' from R
      union select SSN, TEL, TEL as SSN', SSN as TEL' from R;
    create table T as select SSN', TEL' from S repair by key SSN, TEL;
  )sql");
  PrintReproduction("Figure 5: possible permutations S", *session,
                    "select * from S;");
  PrintReproduction("Figure 6: the four possible readings of T", *session,
                    "select * from T;");
  MustExecute(*session, kFdAssert);
  PrintReproduction(
      "Figure 7: worlds satisfying the FD SSN' -> TEL' (paper: 3 worlds)",
      *session, "select * from U;");
}

/// The full cleaning pipeline: swap-union, repair, FD assert.
void BM_CleaningPipeline(benchmark::State& state, EngineMode mode) {
  const int records = static_cast<int>(state.range(0));
  const std::string script = Fig5Script(records);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode);
    state.ResumeTiming();
    MustExecute(*session, script);
    MustExecute(*session, kFdAssert);
    benchmark::DoNotOptimize(session->world_set().NumWorlds());
  }
  state.counters["records"] = records;
  state.counters["readings_log10"] = records * std::log10(2.0);
}

/// Repair only (no FD assert): the decomposed engine stays decomposed.
void BM_RepairOnly(benchmark::State& state, EngineMode mode) {
  const int records = static_cast<int>(state.range(0));
  const std::string script = Fig5Script(records);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode);
    state.ResumeTiming();
    MustExecute(*session, script);
    benchmark::DoNotOptimize(session->world_set().NumWorlds());
  }
  state.counters["records"] = records;
}

void RegisterBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    for (int records : {2, 4, 8, 12}) {
      benchmark::RegisterBenchmark(
          ("cleaning_full/" + engine + "/records:" + std::to_string(records))
              .c_str(),
          [mode](benchmark::State& s) { BM_CleaningPipeline(s, mode); })
          ->Args({records})
          ->Unit(benchmark::kMicrosecond);
    }
    std::vector<int> repair_sizes = {2, 4, 8, 12};
    if (mode == EngineMode::kDecomposed) {
      repair_sizes = {2, 4, 8, 12, 100, 1000};  // 2^1000 readings
    }
    for (int records : repair_sizes) {
      benchmark::RegisterBenchmark(
          ("cleaning_repair_only/" + engine + "/records:" +
           std::to_string(records))
              .c_str(),
          [mode](benchmark::State& s) { BM_RepairOnly(s, mode); })
          ->Args({records})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintFigures();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
