// Experiment F1/F2 (DESIGN.md): regenerates Figure 2 — the four repairs
// of R's key A with probabilities 0.11/0.33/0.14/0.42 — then sweeps
// `repair by key` over synthetic key-violating relations on both engines.
//
// Expected shape: the explicit engine's cost grows with the number of
// worlds (g^n), the decomposed engine's with the number of tuples (n*g).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintFigure2() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, Fig1Script());
  MustExecute(*session,
              "create table I as select A, B, C from R "
              "repair by key A weight D;");
  PrintReproduction(
      "Figure 2: the four repairs of key A (paper: P = 0.11, 0.33, 0.14, "
      "0.42)",
      *session, "select * from I;");
}

void BM_RepairMaterialize(benchmark::State& state, EngineMode mode,
                          size_t threads = 0) {
  const int n_keys = static_cast<int>(state.range(0));
  const int group_size = static_cast<int>(state.range(1));
  const std::string script = KeyViolationScript(n_keys, group_size);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode, threads);
    MustExecute(*session, script);
    state.ResumeTiming();
    MustExecute(*session,
                "create table I as select K, V from R repair by key K "
                "weight W;");
    benchmark::DoNotOptimize(session->world_set().NumWorlds());
  }
  state.counters["worlds_log10"] =
      n_keys * std::log10(static_cast<double>(group_size));
  state.counters["tuples"] = n_keys * group_size;
}

void RegisterBenchmarks() {
  // Explicit engine: worlds = g^n, so keep n small.
  for (auto args : {std::pair{2, 2}, {4, 2}, {8, 2}, {12, 2}, {16, 2},
                    std::pair{4, 4}, {8, 4}}) {
    benchmark::RegisterBenchmark(
        ("repair/explicit/keys:" + std::to_string(args.first) +
         "/group:" + std::to_string(args.second))
            .c_str(),
        [](benchmark::State& s) { BM_RepairMaterialize(s, EngineMode::kExplicit); })
        ->Args({args.first, args.second})
        ->Unit(benchmark::kMicrosecond);
  }
  // Parallel repair fan-out (PR 6): the 2^16-world explicit materialize
  // at an explicit thread cap — results are byte-identical at every
  // setting, so the axis isolates the speedup of the per-world loops
  // (acceptance target: >= 3x at threads:8 on an 8-way host).
  for (size_t threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("repair/explicit/keys:16/group:2/threads:" + std::to_string(threads))
            .c_str(),
        [threads](benchmark::State& s) {
          BM_RepairMaterialize(s, EngineMode::kExplicit, threads);
        })
        ->Args({16, 2})
        ->Unit(benchmark::kMicrosecond);
  }
  // Decomposed engine: same sizes plus sizes far beyond explicit reach.
  for (auto args :
       {std::pair{2, 2}, {4, 2}, {8, 2}, {12, 2}, {16, 2}, {4, 4}, {8, 4},
        std::pair{100, 4}, {1000, 4}, {10000, 4}}) {
    benchmark::RegisterBenchmark(
        ("repair/decomposed/keys:" + std::to_string(args.first) +
         "/group:" + std::to_string(args.second))
            .c_str(),
        [](benchmark::State& s) {
          BM_RepairMaterialize(s, EngineMode::kDecomposed);
        })
        ->Args({args.first, args.second})
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintFigure2();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
