// Experiment S2 (DESIGN.md): microbenchmarks of the relational substrate
// the I-SQL layer runs on — parser throughput and per-world executor
// throughput (scan, join, aggregate, subquery).

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "bench/workloads.h"
#include "engine/executor.h"
#include "sql/parser.h"

namespace maybms::bench {
namespace {

const char* const kQueries[] = {
    "select * from R where A = 'a1'",
    "select A, B * 2 as x from R where B between 10 and 20 order by B desc",
    "select A, sum(B) from R group by A having count(*) > 1",
    "select possible i2.G as G2, i3.G as G3 from I i2, I i3 "
    "where i2.Id = 2 and i3.Id = 3 "
    "group worlds by (select Pos from I where Id = 2)",
    "create table T as select SSN', TEL' from S repair by key SSN, TEL",
    "select conf from I where 50 > (select sum(B) from I)",
};

void BM_ParseStatement(benchmark::State& state) {
  const std::string query = kQueries[state.range(0)];
  for (auto _ : state) {
    auto stmt = maybms::sql::Parser::ParseStatement(query);
    benchmark::DoNotOptimize(stmt.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(query.size()));
}

/// One world with a table of `rows` rows for executor throughput tests.
Database MakeWorld(int rows) {
  Schema schema({Column("K", DataType::kInteger),
                 Column("V", DataType::kInteger),
                 Column("G", DataType::kInteger)});
  Table t(schema);
  for (int i = 0; i < rows; ++i) {
    t.AppendUnchecked(Tuple({Value::Integer(i), Value::Integer(i % 97),
                             Value::Integer(i % 10)}));
  }
  Database db;
  db.PutRelation("T", std::move(t));
  return db;
}

void BM_Executor(benchmark::State& state, const std::string& query) {
  Database db = MakeWorld(static_cast<int>(state.range(0)));
  auto stmt = maybms::sql::Parser::ParseStatement(query);
  if (!stmt.ok()) std::abort();
  const auto& select =
      static_cast<const maybms::sql::SelectStatement&>(**stmt);
  for (auto _ : state) {
    auto result = maybms::engine::ExecuteSelect(select, db);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void RegisterBenchmarks() {
  for (size_t i = 0; i < std::size(kQueries); ++i) {
    benchmark::RegisterBenchmark(
        ("parse/query:" + std::to_string(i)).c_str(), BM_ParseStatement)
        ->Arg(static_cast<int>(i));
  }
  struct Variant {
    const char* name;
    const char* query;
  };
  const Variant kExec[] = {
      {"scan_filter", "select K, V from T where V < 10"},
      {"aggregate", "select G, sum(V), count(*) from T group by G"},
      {"self_join",
       "select t1.K from T t1, T t2 where t1.V = t2.V and t1.K < t2.K"},
      {"correlated_exists",
       "select K from T where exists "
       "(select * from T t2 where t2.V = T.V and t2.K <> T.K)"},
      {"order_limit", "select K from T order by V desc, K limit 10"},
  };
  for (const auto& v : kExec) {
    std::vector<int> sizes = {100, 1000};
    // Quadratic plans stay at the small size.
    bool quadratic = std::string(v.name) == "self_join" ||
                     std::string(v.name) == "correlated_exists";
    if (!quadratic) sizes.push_back(10000);
    for (int rows : sizes) {
      benchmark::RegisterBenchmark(
          ("exec/" + std::string(v.name) + "/rows:" + std::to_string(rows))
              .c_str(),
          [v](benchmark::State& s) { BM_Executor(s, v.query); })
          ->Arg(rows)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
