// Experiment E2.10 + ablation (DESIGN.md): regenerates the conf example
// (with the paper's erratum documented) and benchmarks tuple-confidence
// computation — the decomposed engine's closed form
// conf(t) = 1 - prod_c (1 - p_c(t)) versus explicit world enumeration.

#include <benchmark/benchmark.h>

#include <cmath>

#include <string>

#include "bench/workloads.h"
#include "isql/session.h"
#include "sql/parser.h"
#include "worlds/sampling.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintExample210() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, Fig1Script());
  MustExecute(*session,
              "create table I as select A, B, C from R "
              "repair by key A weight D;");
  PrintReproduction(
      "Example 2.10: conf of sum(B) < 50.\n"
      "NOTE paper erratum: the paper prints 0.53 = P(A)+P(D), but by its "
      "own Figure 2 sums\n(A=44, B=49, C=50, D=55) the satisfying worlds "
      "are A and B: P(A)+P(B) = 1/9 + 1/3 = 0.4444.",
      *session, "select conf from I where 50 > (select sum(B) from I);");
  PrintReproduction("Tuple-level confidence over I", *session,
                    "select conf, A, B, C from I;");
}

void BM_TupleConf(benchmark::State& state, EngineMode mode) {
  const int n_keys = static_cast<int>(state.range(0));
  const int group_size = static_cast<int>(state.range(1));
  auto session = MakeSession(mode);
  MustExecute(*session, KeyViolationScript(n_keys, group_size));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K "
              "weight W;");
  for (auto _ : state) {
    auto result = MustQuery(*session, "select conf, K, V from I;");
    benchmark::DoNotOptimize(result.table().num_rows());
  }
  state.counters["keys"] = n_keys;
  state.counters["worlds_log10"] =
      n_keys * std::log10(static_cast<double>(group_size));
}

// Conf of a world-level condition (like Example 2.10): requires the
// correlated sub-product on both engines.
void BM_ConditionConf(benchmark::State& state, EngineMode mode) {
  const int n_keys = static_cast<int>(state.range(0));
  auto session = MakeSession(mode);
  MustExecute(*session, KeyViolationScript(n_keys, 2));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K;");
  const std::string query =
      "select conf from I where " + std::to_string(n_keys * 50) +
      " > (select sum(V) from I);";
  for (auto _ : state) {
    auto result = MustQuery(*session, query);
    benchmark::DoNotOptimize(result.table().num_rows());
  }
  state.counters["keys"] = n_keys;
}

// Ablation: Monte-Carlo approximate confidence (library extension) vs
// the exact closed form, at a fixed sample budget.
void BM_ApproxConf(benchmark::State& state, isql::EngineMode mode,
                   size_t samples) {
  const int n_keys = static_cast<int>(state.range(0));
  auto session = MakeSession(mode);
  MustExecute(*session, KeyViolationScript(n_keys, 2));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K "
              "weight W;");
  auto stmt = sql::Parser::ParseStatement("select K, V from I;");
  if (!stmt.ok()) std::abort();
  const auto& select = static_cast<const sql::SelectStatement&>(**stmt);
  uint32_t seed = 1;
  for (auto _ : state) {
    auto estimate = worlds::EstimateConfidence(session->world_set(), select,
                                               samples, seed++);
    if (!estimate.ok()) std::abort();
    benchmark::DoNotOptimize(estimate->num_rows());
  }
  state.counters["keys"] = n_keys;
  state.counters["samples"] = static_cast<double>(samples);
}

void RegisterBenchmarks() {
  for (int n : {16, 100, 1000}) {
    for (size_t samples : {size_t{100}, size_t{1000}}) {
      benchmark::RegisterBenchmark(
          ("approx_conf/decomposed/keys:" + std::to_string(n) +
           "/samples:" + std::to_string(samples))
              .c_str(),
          [samples](benchmark::State& s) {
            BM_ApproxConf(s, isql::EngineMode::kDecomposed, samples);
          })
          ->Args({n})
          ->Unit(benchmark::kMicrosecond);
    }
  }
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    std::vector<std::pair<int, int>> sizes = {{4, 2}, {8, 2}, {16, 2}, {8, 4}};
    if (mode == EngineMode::kDecomposed) {
      // The closed form is linear in tuples: sizes with astronomically
      // many worlds are still instant.
      sizes.push_back({100, 4});
      sizes.push_back({1000, 4});
      sizes.push_back({10000, 4});
    }
    for (auto [n, g] : sizes) {
      benchmark::RegisterBenchmark(
          ("tuple_conf/" + engine + "/keys:" + std::to_string(n) +
           "/group:" + std::to_string(g))
              .c_str(),
          [mode](benchmark::State& s) { BM_TupleConf(s, mode); })
          ->Args({n, g})
          ->Unit(benchmark::kMicrosecond);
    }
    for (int n : {4, 8, 12, 16}) {
      benchmark::RegisterBenchmark(
          ("condition_conf/" + engine + "/keys:" + std::to_string(n)).c_str(),
          [mode](benchmark::State& s) { BM_ConditionConf(s, mode); })
          ->Args({n})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintExample210();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
