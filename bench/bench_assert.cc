// Experiment E2.5 (DESIGN.md): regenerates the assert example — worlds B
// and D survive with renormalized probabilities 0.44/0.56 — then sweeps
// the assert pipeline (world filtering + renormalization) over world-sets
// of growing size and varying surviving fraction.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/workloads.h"
#include "isql/session.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintExample25() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, Fig1Script());
  MustExecute(*session,
              "create table I as select A, B, C from R "
              "repair by key A weight D;");
  MustExecute(*session,
              "create table J as select * from I "
              "assert not exists(select * from I where C = 'c1');");
  PrintReproduction(
      "Example 2.5: worlds B and D survive (paper: P = 0.44, 0.56)",
      *session, "select * from J;");
}

/// Assert over the repair of `n_keys` binary groups; the condition keeps
/// worlds whose V-sum is below a threshold controlling survival rate.
void BM_AssertPipeline(benchmark::State& state, EngineMode mode,
                       const std::string& threshold) {
  const int n_keys = static_cast<int>(state.range(0));
  const std::string script = KeyViolationScript(n_keys, 2);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode);
    MustExecute(*session, script);
    MustExecute(*session,
                "create table I as select K, V from R repair by key K;");
    state.ResumeTiming();
    // Keep worlds where some tuple has V below the threshold — the higher
    // the threshold, the more worlds survive.
    auto result = session->Execute(
        "create table J as select * from I assert exists"
        "(select * from I where V < " + threshold + ");");
    benchmark::DoNotOptimize(result.ok());
  }
  state.counters["keys"] = n_keys;
}

void RegisterBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string prefix =
        mode == EngineMode::kExplicit ? "assert/explicit" : "assert/decomposed";
    for (int n_keys : {4, 8, 12, 16}) {
      for (const char* threshold : {"20", "80"}) {
        benchmark::RegisterBenchmark(
            (prefix + "/keys:" + std::to_string(n_keys) + "/threshold:" +
             threshold)
                .c_str(),
            [mode, threshold](benchmark::State& s) {
              BM_AssertPipeline(s, mode, threshold);
            })
            ->Args({n_keys})
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintExample25();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
