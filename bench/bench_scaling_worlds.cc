// Experiment S1 (DESIGN.md): the companion ICDE'07 "10^10^6 worlds"
// headline — a world-set decomposition represents and queries world-sets
// whose explicit form is astronomically large.
//
// The bench creates repairs of key-violating relations with n key groups
// of g alternatives (g^n worlds) and measures, per engine:
//  * materializing the repair;
//  * a selection query over the uncertain relation (fast path);
//  * tuple confidence (closed form vs enumeration).
//
// Expected shape: explicit cost is Theta(g^n) and infeasible beyond
// n ~ 20; decomposed cost is Theta(n*g) — at n = 100000, g = 10 the WSD
// represents 10^100000 worlds (the paper title's scale) in linear space.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench/workloads.h"
#include "isql/session.h"
#include "worlds/decomposed_world_set.h"

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintHeadline() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, KeyViolationScript(100000, 10));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K;");
  const auto& ws = session->world_set();
  std::printf(
      "---- S1 headline: world-set decomposition scale ----\n"
      "repaired relation with 100000 key groups x 10 alternatives\n"
      "  components:        %zu\n"
      "  worlds:            10^%.0f (explicit materialization would need\n"
      "                     more databases than atoms in the universe)\n"
      "  representation:    1000000 tuples in linear space\n\n",
      static_cast<const worlds::DecomposedWorldSet&>(ws).num_components(),
      ws.Log10NumWorlds());
  auto conf = MustQuery(*session, "select conf, K, V from I where K < 2;");
  std::printf("tuple confidences over 10^100000 worlds (closed form):\n");
  PrintReproduction("conf over the first two key groups", *session,
                    "select conf, K, V from I where K < 2;");
}

void BM_Materialize(benchmark::State& state, EngineMode mode) {
  const int n_keys = static_cast<int>(state.range(0));
  const int group = static_cast<int>(state.range(1));
  const std::string script = KeyViolationScript(n_keys, group);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode);
    MustExecute(*session, script);
    state.ResumeTiming();
    MustExecute(*session,
                "create table I as select K, V from R repair by key K;");
    benchmark::DoNotOptimize(session->world_set().Log10NumWorlds());
  }
  state.counters["worlds_log10"] = n_keys * std::log10(double(group));
}

void BM_SelectionOverUncertain(benchmark::State& state, EngineMode mode) {
  const int n_keys = static_cast<int>(state.range(0));
  const int group = static_cast<int>(state.range(1));
  auto session = MakeSession(mode);
  MustExecute(*session, KeyViolationScript(n_keys, group));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K;");
  for (auto _ : state) {
    // possible over a selection: fast path in the decomposed engine.
    auto result =
        MustQuery(*session, "select possible K, V from I where V < 10;");
    benchmark::DoNotOptimize(result.table().num_rows());
  }
  state.counters["worlds_log10"] = n_keys * std::log10(double(group));
}

void RegisterBenchmarks() {
  // Explicit engine: up to 2^16 worlds.
  for (int n : {4, 8, 12, 16}) {
    benchmark::RegisterBenchmark(
        ("materialize_repair/explicit/keys:" + std::to_string(n) + "/group:2")
            .c_str(),
        [](benchmark::State& s) { BM_Materialize(s, EngineMode::kExplicit); })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("selection/explicit/keys:" + std::to_string(n) + "/group:2").c_str(),
        [](benchmark::State& s) {
          BM_SelectionOverUncertain(s, EngineMode::kExplicit);
        })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
  }
  // Decomposed engine: same range, then far beyond.
  for (int n : {4, 8, 12, 16, 100, 1000, 10000, 100000}) {
    benchmark::RegisterBenchmark(
        ("materialize_repair/decomposed/keys:" + std::to_string(n) +
         "/group:2")
            .c_str(),
        [](benchmark::State& s) {
          BM_Materialize(s, EngineMode::kDecomposed);
        })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("selection/decomposed/keys:" + std::to_string(n) + "/group:2")
            .c_str(),
        [](benchmark::State& s) {
          BM_SelectionOverUncertain(s, EngineMode::kDecomposed);
        })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintHeadline();
  maybms::bench::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
