// Experiment S1 (DESIGN.md): the companion ICDE'07 "10^10^6 worlds"
// headline — a world-set decomposition represents and queries world-sets
// whose explicit form is astronomically large.
//
// The bench creates repairs of key-violating relations with n key groups
// of g alternatives (g^n worlds) and measures, per engine:
//  * materializing the repair;
//  * a selection query over the uncertain relation (fast path);
//  * tuple confidence (closed form vs enumeration).
//
// Expected shape: explicit cost is Theta(g^n) and infeasible beyond
// n ~ 20; decomposed cost is Theta(n*g) — at n = 100000, g = 10 the WSD
// represents 10^100000 worlds (the paper title's scale) in linear space.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "bench/workloads.h"
#include "isql/session.h"
#include "worlds/decomposed_world_set.h"

// ---------------------------------------------------------------------------
// Allocation counting (whole binary): cumulative bytes through operator
// new, so the world_derivation/* cases below can report bytes allocated
// alongside time (same technique as tests/combiner_property_test.cc /
// tests/world_storage_test.cc, minus the live/peak bookkeeping).
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_alloc_bytes{0};
}  // namespace

void* operator new(size_t n) {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace maybms::bench {
namespace {

using isql::EngineMode;

void PrintHeadline() {
  auto session = MakeSession(EngineMode::kDecomposed);
  MustExecute(*session, KeyViolationScript(100000, 10));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K;");
  const auto& ws = session->world_set();
  std::printf(
      "---- S1 headline: world-set decomposition scale ----\n"
      "repaired relation with 100000 key groups x 10 alternatives\n"
      "  components:        %zu\n"
      "  worlds:            10^%.0f (explicit materialization would need\n"
      "                     more databases than atoms in the universe)\n"
      "  representation:    1000000 tuples in linear space\n\n",
      static_cast<const worlds::DecomposedWorldSet&>(ws).num_components(),
      ws.Log10NumWorlds());
  auto conf = MustQuery(*session, "select conf, K, V from I where K < 2;");
  std::printf("tuple confidences over 10^100000 worlds (closed form):\n");
  PrintReproduction("conf over the first two key groups", *session,
                    "select conf, K, V from I where K < 2;");
}

void BM_Materialize(benchmark::State& state, EngineMode mode) {
  const int n_keys = static_cast<int>(state.range(0));
  const int group = static_cast<int>(state.range(1));
  const std::string script = KeyViolationScript(n_keys, group);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode);
    MustExecute(*session, script);
    state.ResumeTiming();
    MustExecute(*session,
                "create table I as select K, V from R repair by key K;");
    benchmark::DoNotOptimize(session->world_set().Log10NumWorlds());
  }
  state.counters["worlds_log10"] = n_keys * std::log10(double(group));
}

void BM_SelectionOverUncertain(benchmark::State& state, EngineMode mode) {
  const int n_keys = static_cast<int>(state.range(0));
  const int group = static_cast<int>(state.range(1));
  auto session = MakeSession(mode);
  MustExecute(*session, KeyViolationScript(n_keys, group));
  MustExecute(*session,
              "create table I as select K, V from R repair by key K;");
  for (auto _ : state) {
    // possible over a selection: fast path in the decomposed engine.
    auto result =
        MustQuery(*session, "select possible K, V from I where V < 10;");
    benchmark::DoNotOptimize(result.table().num_rows());
  }
  state.counters["worlds_log10"] = n_keys * std::log10(double(group));
}

// ---------------------------------------------------------------------------
// Per-world constant overhead (PR 3): world count scales, per-world data
// stays fixed at 10 rows, so the slope of time vs. worlds is exactly the
// per-world cost. Two statements of very different *planning* complexity
// run over the same data; with plan-once-per-statement execution their
// per-world costs should be nearly identical (scan + evaluate only).
// ---------------------------------------------------------------------------

/// 2^`n_keys` possible worlds via repair of a small key-violating
/// relation, plus two *certain* 10-row relations T and U the measured
/// queries actually read. Every world therefore evaluates the statement
/// over identical 10-row inputs: total time is
/// (one-time planning) + worlds x (fixed per-world evaluation).
std::string FixedRowsScalingScript(int n_keys) {
  std::ostringstream script;
  script << KeyViolationScript(n_keys, 2);
  script << "create table I as select K, V from R repair by key K;\n";
  const char* names[] = {"T", "U"};
  for (int t = 0; t < 2; ++t) {
    script << "create table " << names[t] << " (K integer, V integer);\n";
    script << "insert into " << names[t] << " values ";
    for (int k = 0; k < 10; ++k) {
      if (k > 0) script << ", ";
      script << "(" << k << ", " << (k * 7 + 3 * t) % 13 << ")";
    }
    script << ";\n";
  }
  return script.str();
}

void BM_PerWorldConstant(benchmark::State& state, EngineMode mode,
                         const std::string& query, size_t threads = 0) {
  const int n_keys = static_cast<int>(state.range(0));
  const int worlds = 1 << n_keys;
  auto session = MakeSession(mode, threads);
  MustExecute(*session, FixedRowsScalingScript(n_keys));
  for (auto _ : state) {
    auto result = MustQuery(*session, query);
    benchmark::DoNotOptimize(result.kind());
  }
  state.counters["worlds"] = worlds;
  // kInvert reports elapsed_seconds / worlds: SECONDS per world (the
  // console humanizes it, e.g. "3.7us"; the raw JSON value is seconds).
  state.counters["sec_per_world"] = benchmark::Counter(
      static_cast<double>(worlds),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void RegisterPerWorldConstantBenchmarks() {
  struct Variant {
    const char* name;
    const char* query;
  };
  // `simple` plans one scan; `join3` classifies four conjuncts, extracts a
  // hash-join key, and type-checks both sides — planning work that must
  // not be paid per world.
  const Variant kVariants[] = {
      {"simple", "select certain count(*) from T;"},
      {"join3",
       "select certain count(*) from T, U "
       "where T.K = U.K and T.V >= 0 and U.V >= 0 and T.K < 100;"},
  };
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    for (const auto& v : kVariants) {
      for (int n_keys : {6, 9, 12}) {  // 64 / 512 / 4096 worlds
        benchmark::RegisterBenchmark(
            ("per_world_constant/" + std::string(v.name) + "/" + engine +
             "/worlds:" + std::to_string(1 << n_keys))
                .c_str(),
            [mode, v](benchmark::State& s) {
              BM_PerWorldConstant(s, mode, v.query);
            })
            ->Args({n_keys})
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel per-world execution (PR 6): the same fixed-per-world workload
// at an explicit thread cap. Results are byte-identical at every setting
// (base/thread_pool.h), so this axis isolates pure scheduling overhead
// and speedup: sec_per_world at threads:8 over threads:1 is the
// parallel efficiency of the hot per-world loop. The acceptance target
// is >= 3x on per_world_constant/simple/explicit/worlds:4096 on an
// 8-way host; single-core machines will show ~1x with bounded overhead.
// ---------------------------------------------------------------------------

void RegisterParallelScalingBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    for (size_t threads : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark(
          ("per_world_constant/simple/" + engine +
           "/worlds:4096/threads:" + std::to_string(threads))
              .c_str(),
          [mode, threads](benchmark::State& s) {
            BM_PerWorldConstant(s, mode, "select certain count(*) from T;",
                                threads);
          })
          ->Args({12})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("per_world_combine/conf/" + engine +
           "/worlds:4096/threads:" + std::to_string(threads))
              .c_str(),
          [mode, threads](benchmark::State& s) {
            BM_PerWorldConstant(s, mode, "select conf, K, V from T;",
                                threads);
          })
          ->Args({12})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-world combine cost (PR 4): like per_world_constant, the world count
// scales while every world's answer stays a fixed 10-row relation — but
// the measured statements carry a quantifier, so each iteration runs the
// full streaming combine (worlds/combiner.h) over all worlds. With the
// hashed accumulator the slope of time vs. worlds is the per-world
// execute+feed cost: sec_per_world should stay flat as worlds grow
// (near-linear total cost), where the set-based combinators were
// super-linear and allocation-bound. The decomposed engine answers these
// once over the certain core — its flat line is the contrast.
// ---------------------------------------------------------------------------

void RegisterPerWorldCombineBenchmarks() {
  struct Variant {
    const char* name;
    const char* query;
  };
  const Variant kVariants[] = {
      {"possible", "select possible K, V from T;"},
      {"certain", "select certain K, V from T;"},
      {"conf", "select conf, K, V from T;"},
  };
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    for (const auto& v : kVariants) {
      for (int n_keys : {10, 12, 14}) {  // 1024 / 4096 / 16384 worlds
        benchmark::RegisterBenchmark(
            ("per_world_combine/" + std::string(v.name) + "/" + engine +
             "/worlds:" + std::to_string(1 << n_keys))
                .c_str(),
            [mode, v](benchmark::State& s) {
              BM_PerWorldConstant(s, mode, v.query);
            })
            ->Args({n_keys})
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// World-derivation cost under copy-on-write shared-table storage (PR 5):
// repair fan-out and DML across a 4096-world set, with `untouched`
// additional 1000-row relations the statement never reads or writes.
// Reported alongside time: bytes allocated during the operation and
// bytes per (derived) world. With structural sharing both stay
// proportional to the CHANGED tables — flat as the untouched-relation
// count (and their size) grows — where the pre-COW explicit engine
// copied every relation into every derived world.
// ---------------------------------------------------------------------------

/// 2^11 worlds (11 repaired key groups; a 12th group is left for the
/// measured fan-out), `untouched` 1000-row pad relations, and a tiny DML
/// target T.
std::string WorldDerivationScript(int untouched) {
  std::ostringstream script;
  script << KeyViolationScript(12, 2);
  for (int r = 0; r < untouched; ++r) {
    script << "create table Pad" << r << " (A integer, B integer);\n";
    for (int chunk = 0; chunk < 2; ++chunk) {
      script << "insert into Pad" << r << " values ";
      for (int i = 0; i < 500; ++i) {
        int row = chunk * 500 + i;
        if (i > 0) script << ", ";
        script << "(" << row << ", " << (row * 13 + r) % 101 << ")";
      }
      script << ";\n";
    }
  }
  script << "create table T (K integer, V integer);\n";
  script << "insert into T values (0, 0), (1, 10), (2, 20);\n";
  script << "create table I as select K, V from R where K < 11 "
            "repair by key K;\n";
  return script.str();
}

void ReportDerivationCounters(benchmark::State& state, size_t bytes,
                              double worlds) {
  state.counters["worlds"] = worlds;
  state.counters["bytes_allocated"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kAvgIterations);
  state.counters["bytes_per_world"] =
      benchmark::Counter(static_cast<double>(bytes) / worlds,
                         benchmark::Counter::kAvgIterations);
}

void BM_WorldDerivationRepair(benchmark::State& state, EngineMode mode) {
  const int untouched = static_cast<int>(state.range(0));
  const std::string script = WorldDerivationScript(untouched);
  size_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MakeSession(mode);
    MustExecute(*session, script);
    state.ResumeTiming();
    const size_t before = g_alloc_bytes.load(std::memory_order_relaxed);
    MustExecute(*session,
                "create table I2 as select K, V from R where K = 11 "
                "repair by key K;");
    bytes += g_alloc_bytes.load(std::memory_order_relaxed) - before;
    state.PauseTiming();
    session.reset();  // teardown outside the timed region
    state.ResumeTiming();
  }
  ReportDerivationCounters(state, bytes, 4096.0);
}

void BM_WorldDerivationDml(benchmark::State& state, EngineMode mode) {
  const int untouched = static_cast<int>(state.range(0));
  auto session = MakeSession(mode);
  MustExecute(*session, WorldDerivationScript(untouched));
  MustExecute(*session,
              "create table I2 as select K, V from R where K = 11 "
              "repair by key K;");
  size_t bytes = 0;
  for (auto _ : state) {
    const size_t before = g_alloc_bytes.load(std::memory_order_relaxed);
    MustExecute(*session, "update T set V = V + 1;");
    bytes += g_alloc_bytes.load(std::memory_order_relaxed) - before;
  }
  ReportDerivationCounters(state, bytes, 4096.0);
}

void RegisterWorldDerivationBenchmarks() {
  for (EngineMode mode : {EngineMode::kExplicit, EngineMode::kDecomposed}) {
    std::string engine =
        mode == EngineMode::kExplicit ? "explicit" : "decomposed";
    for (int untouched : {1, 8, 32}) {
      benchmark::RegisterBenchmark(
          ("world_derivation/repair_fanout/" + engine +
           "/untouched_rels:" + std::to_string(untouched))
              .c_str(),
          [mode](benchmark::State& s) { BM_WorldDerivationRepair(s, mode); })
          ->Args({untouched})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("world_derivation/dml/" + engine +
           "/untouched_rels:" + std::to_string(untouched))
              .c_str(),
          [mode](benchmark::State& s) { BM_WorldDerivationDml(s, mode); })
          ->Args({untouched})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void RegisterBenchmarks() {
  // Explicit engine: up to 2^16 worlds.
  for (int n : {4, 8, 12, 16}) {
    benchmark::RegisterBenchmark(
        ("materialize_repair/explicit/keys:" + std::to_string(n) + "/group:2")
            .c_str(),
        [](benchmark::State& s) { BM_Materialize(s, EngineMode::kExplicit); })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("selection/explicit/keys:" + std::to_string(n) + "/group:2").c_str(),
        [](benchmark::State& s) {
          BM_SelectionOverUncertain(s, EngineMode::kExplicit);
        })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
  }
  // Decomposed engine: same range, then far beyond.
  for (int n : {4, 8, 12, 16, 100, 1000, 10000, 100000}) {
    benchmark::RegisterBenchmark(
        ("materialize_repair/decomposed/keys:" + std::to_string(n) +
         "/group:2")
            .c_str(),
        [](benchmark::State& s) {
          BM_Materialize(s, EngineMode::kDecomposed);
        })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("selection/decomposed/keys:" + std::to_string(n) + "/group:2")
            .c_str(),
        [](benchmark::State& s) {
          BM_SelectionOverUncertain(s, EngineMode::kDecomposed);
        })
        ->Args({n, 2})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace maybms::bench

int main(int argc, char** argv) {
  maybms::bench::PrintHeadline();
  maybms::bench::RegisterBenchmarks();
  maybms::bench::RegisterPerWorldConstantBenchmarks();
  maybms::bench::RegisterParallelScalingBenchmarks();
  maybms::bench::RegisterPerWorldCombineBenchmarks();
  maybms::bench::RegisterWorldDerivationBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
