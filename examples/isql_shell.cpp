// Interactive I-SQL shell — the closest thing to the paper's live
// demonstration. Type I-SQL statements terminated by ';'.
//
// Meta-commands:
//   \worlds         render the current world-set (like Figure 2)
//   \top k          render the k most probable worlds
//   \engine         show the active engine and world count
//   \views          list defined views
//   \demo fig1|fig3|fig5   load a paper dataset
//   \help           this text
//   \q              quit
//
// Run:  ./isql_shell [--explicit]

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/string_util.h"
#include "isql/formatter.h"
#include "isql/session.h"

namespace {

const char kHelp[] = R"(I-SQL statements end with ';'. Examples:
  create table R (A text, B integer);
  insert into R values ('a1', 10), ('a1', 15);
  create table I as select * from R repair by key A;
  select possible B from I;
  select conf, B from I;
Meta-commands: \worlds \top k \engine \views \demo fig1|fig3|fig5 \help \q
)";

const char kFig1[] = R"sql(
  create table R (A text, B integer, C text, D integer);
  insert into R values ('a1',10,'c1',2), ('a1',15,'c2',6), ('a2',14,'c3',4),
                       ('a2',20,'c4',5), ('a3',20,'c5',6);
  create table S (C text, E text);
  insert into S values ('c2','e1'), ('c4','e1'), ('c4','e2');
)sql";

const char kFig3[] = R"sql(
  create table Obs (WID text, Id integer, Species text, Gender text, Pos text);
  insert into Obs values
    ('A',1,'sperm','calf','b'), ('A',2,'sperm','cow','c'), ('A',3,'orca','cow','a'),
    ('B',1,'sperm','calf','b'), ('B',2,'sperm','cow','c'), ('B',3,'orca','bull','a'),
    ('C',1,'sperm','calf','b'), ('C',2,'sperm','bull','c'), ('C',3,'orca','cow','a'),
    ('D',1,'sperm','calf','b'), ('D',2,'sperm','bull','c'), ('D',3,'orca','bull','a'),
    ('E',1,'sperm','calf','c'), ('E',2,'sperm','cow','b'), ('E',3,'orca','cow','a'),
    ('F',1,'sperm','calf','c'), ('F',2,'sperm','bull','b'), ('F',3,'orca','cow','a');
  create table I as select Id, Species, Gender, Pos from Obs choice of WID;
)sql";

const char kFig5[] = R"sql(
  create table R (SSN integer, TEL integer);
  insert into R values (123, 456), (789, 123);
)sql";

void RunMeta(maybms::isql::Session& session, const std::string& command) {
  using maybms::isql::FormatWorldSet;
  if (command == "\\help") {
    std::cout << kHelp;
  } else if (command == "\\worlds") {
    std::cout << FormatWorldSet(session.world_set(), 32);
  } else if (command.rfind("\\top", 0) == 0) {
    int k = 3;
    if (command.size() > 4) k = std::max(1, std::atoi(command.c_str() + 4));
    auto top = session.world_set().TopKWorlds(static_cast<size_t>(k));
    if (!top.ok()) {
      std::cout << "error: " << top.status().ToString() << "\n";
      return;
    }
    for (size_t i = 0; i < top->size(); ++i) {
      std::cout << "== rank " << (i + 1)
                << " (P = " << maybms::FormatDouble((*top)[i].probability)
                << ")\n";
      for (const std::string& name : (*top)[i].db.RelationNames()) {
        auto table = (*top)[i].db.GetRelation(name);
        if (!table.ok()) continue;
        std::cout << name << ":\n"
                  << maybms::isql::FormatTable(**table);
      }
    }
  } else if (command == "\\engine") {
    std::cout << session.world_set().EngineName() << " engine, "
              << session.world_set().NumWorlds() << " worlds (10^"
              << maybms::FormatDouble(session.world_set().Log10NumWorlds())
              << ")\n";
  } else if (command == "\\views") {
    for (const std::string& v : session.ViewNames()) std::cout << v << "\n";
  } else if (command.rfind("\\demo", 0) == 0) {
    const char* script = nullptr;
    if (command.find("fig1") != std::string::npos) script = kFig1;
    if (command.find("fig3") != std::string::npos) script = kFig3;
    if (command.find("fig5") != std::string::npos) script = kFig5;
    if (script == nullptr) {
      std::cout << "usage: \\demo fig1|fig3|fig5\n";
      return;
    }
    auto result = session.ExecuteScript(script);
    if (!result.ok()) {
      std::cout << "error: " << result.status().ToString() << "\n";
    } else {
      std::cout << "demo data loaded\n";
    }
  } else {
    std::cout << "unknown meta-command; try \\help\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  maybms::isql::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explicit") == 0) {
      options.engine = maybms::isql::EngineMode::kExplicit;
    }
  }
  maybms::isql::Session session(options);

  std::cout << "MayBMS I-SQL shell (" << session.world_set().EngineName()
            << " engine). \\help for help.\n";

  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "isql> " : "  ... ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = maybms::StripWhitespace(line);
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\q" || trimmed == "\\quit") break;
      RunMeta(session, std::string(trimmed));
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the buffer holds a ';'-terminated statement.
    std::string_view pending = maybms::StripWhitespace(buffer);
    if (pending.empty() || pending.back() != ';') continue;
    auto results = session.ExecuteScript(buffer);
    if (!results.ok()) {
      std::cout << "error: " << results.status().ToString() << "\n";
    } else {
      for (const auto& r : *results) {
        std::cout << maybms::isql::FormatQueryResult(r);
      }
    }
    buffer.clear();
  }
  return 0;
}
