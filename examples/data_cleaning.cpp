// The paper's Section 3.2 demonstration: cleaning dirty data by an
// interplay of query-based and constraint-based cleaning (Figures 5-7).
//
// A relation of social security numbers and phone numbers may have the
// two fields swapped. The program:
//  1. generates all possible readings with a UNION query (Figure 5),
//  2. repairs the key to enumerate consistent readings (Figure 6),
//  3. enforces the functional dependency SSN' -> TEL' with assert
//     (Figure 7), and
//  4. asks confidence questions about the cleaned data.
//
// Run:  ./data_cleaning [--explicit]

#include <cstring>
#include <iostream>

#include "isql/formatter.h"
#include "isql/session.h"

namespace {

// [[nodiscard]] so a failed demo step cannot be silently ignored:
// main() folds every result into its exit code.
[[nodiscard]] bool Run(maybms::isql::Session& session,
                       const std::string& sql) {
  std::cout << "isql> " << sql << "\n";
  auto result = session.Execute(sql);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return false;
  }
  std::cout << maybms::isql::FormatQueryResult(*result) << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  maybms::isql::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explicit") == 0) {
      options.engine = maybms::isql::EngineMode::kExplicit;
    }
  }
  maybms::isql::Session session(options);

  auto setup = session.ExecuteScript(R"sql(
    create table R (SSN integer, TEL integer);
    insert into R values (123, 456), (789, 123);
  )sql");
  if (!setup.ok()) {
    std::cerr << "setup failed: " << setup.status().ToString() << "\n";
    return 1;
  }

  bool ok = true;
  std::cout << "== The dirty relation R (numbers possibly swapped) ==\n";
  ok &= Run(session, "select * from R;");

  std::cout << "== Step 1 (Figure 5): every pair may be confused ==\n";
  ok &= Run(session,
            "create table S as "
            "select SSN, TEL, SSN as SSN', TEL as TEL' from R "
            "union "
            "select SSN, TEL, TEL as SSN', SSN as TEL' from R;");
  ok &= Run(session, "select * from S;");

  std::cout << "== Step 2 (Figure 6): all readings via repair by key ==\n";
  ok &= Run(session,
            "create table T as select SSN', TEL' from S repair by key SSN, TEL;");
  ok &= Run(session, "select * from T;");

  std::cout << "== Step 3 (Figure 7): enforce SSN' -> TEL' with assert ==\n";
  ok &= Run(session,
            "create table U as select * from T assert not exists "
            "(select 'yes' from T t1, T t2 "
            " where t1.SSN' = t2.SSN' and t1.TEL' <> t2.TEL');");
  ok &= Run(session, "select * from U;");

  std::cout << "== Step 4: what do we now believe? ==\n";
  ok &= Run(session, "select conf, SSN', TEL' from U;");
  ok &= Run(session, "select possible SSN' from U;");
  ok &= Run(session, "select certain * from U;");
  return ok ? 0 : 1;
}
