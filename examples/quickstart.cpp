// Quickstart: the paper's running example (Figures 1 and 2) end to end.
//
// Builds the complete database of Figure 1, repairs the key of R to obtain
// the world-set of Figure 2, and walks through the I-SQL operations of
// Section 2: per-world queries, assert, possible/certain, and conf.
//
// Run:  ./quickstart [--explicit]

#include <cstring>
#include <iostream>

#include "isql/formatter.h"
#include "isql/session.h"

namespace {

// Executes one statement and prints its rendered result. [[nodiscard]]
// so a demo step that fails cannot be silently ignored: main() folds
// every result into its exit code.
[[nodiscard]] bool Run(maybms::isql::Session& session,
                       const std::string& sql) {
  std::cout << "isql> " << sql << "\n";
  auto result = session.Execute(sql);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return false;
  }
  std::cout << maybms::isql::FormatQueryResult(*result) << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  maybms::isql::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explicit") == 0) {
      options.engine = maybms::isql::EngineMode::kExplicit;
    }
  }
  maybms::isql::Session session(options);

  // Figure 1: the complete database.
  auto setup = session.ExecuteScript(R"sql(
    create table R (A text, B integer, C text, D integer);
    insert into R values
      ('a1', 10, 'c1', 2),
      ('a1', 15, 'c2', 6),
      ('a2', 14, 'c3', 4),
      ('a2', 20, 'c4', 5),
      ('a3', 20, 'c5', 6);
    create table S (C text, E text);
    insert into S values ('c2', 'e1'), ('c4', 'e1'), ('c4', 'e2');
  )sql");
  if (!setup.ok()) {
    std::cerr << "setup failed: " << setup.status().ToString() << "\n";
    return 1;
  }

  std::cout << "== Example 2.3/2.4: repair by key (Figure 2) ==\n";
  if (!Run(session,
           "create table I as select A, B, C from R "
           "repair by key A weight D;")) {
    return 1;  // every later example reads I; nothing sensible to show
  }
  bool ok = true;
  ok &= Run(session, "select * from I;");

  std::cout << "== Example 2.1: per-world selection ==\n";
  ok &= Run(session, "select * from I where A = 'a3';");

  std::cout << "== Example 2.5: assert (drops worlds, renormalizes) ==\n";
  ok &= Run(session,
            "create table J as select * from I "
            "assert not exists(select * from I where C = 'c1');");
  ok &= Run(session, "select * from J;");

  std::cout << "== Example 2.6/2.7: choice of ==\n";
  ok &= Run(session, "select * from S choice of E;");
  ok &= Run(session, "select * from R choice of A weight D;");

  std::cout << "== Example 2.8: possible sums ==\n";
  ok &= Run(session, "select sum(B) from I;");
  ok &= Run(session, "select possible sum(B) from I;");

  std::cout << "== Example 2.9: certain across choice-of worlds ==\n";
  ok &= Run(session, "select certain E from S choice of C;");

  std::cout << "== Example 2.10: tuple confidence ==\n";
  ok &= Run(session, "select conf from I where 50 > (select sum(B) from I);");
  ok &= Run(session, "select conf, A, B, C from I;");

  std::cout << "== Current world-set (" << session.world_set().EngineName()
            << " engine) ==\n";
  std::cout << maybms::isql::FormatWorldSet(session.world_set(), 8);
  return ok ? 0 : 1;
}
