// The paper's Section 3.1 demonstration: tracking whales from satellite
// photographs with incomplete information (Figures 3 and 4).
//
// Three whales were observed; the gender of the adults and which sperm
// whale moved to which position are uncertain, giving the six worlds of
// Figure 3. The program asks the paper's questions:
//  1. can the orca attack the calf? (possible)
//  2. reconsidered under expert knowledge (views + assert)
//  3. do the adults' genders correlate with the escape route?
//     (group worlds by + possible, Figure 4)
//
// Run:  ./whale_tracking [--explicit]

#include <cstring>
#include <iostream>

#include "isql/formatter.h"
#include "isql/session.h"

namespace {

// [[nodiscard]] so a failed demo step cannot be silently ignored:
// main() folds every result into its exit code.
[[nodiscard]] bool Run(maybms::isql::Session& session,
                       const std::string& sql) {
  std::cout << "isql> " << sql << "\n";
  auto result = session.Execute(sql);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return false;
  }
  std::cout << maybms::isql::FormatQueryResult(*result) << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  maybms::isql::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explicit") == 0) {
      options.engine = maybms::isql::EngineMode::kExplicit;
    }
  }
  maybms::isql::Session session(options);

  // The observations, one block per possible world of Figure 3. `choice
  // of WID` turns the stacked observations into six possible worlds.
  auto setup = session.ExecuteScript(R"sql(
    create table Obs (WID text, Id integer, Species text, Gender text,
                      Pos text);
    insert into Obs values
      ('A', 1, 'sperm', 'calf', 'b'), ('A', 2, 'sperm', 'cow',  'c'),
      ('A', 3, 'orca',  'cow',  'a'),
      ('B', 1, 'sperm', 'calf', 'b'), ('B', 2, 'sperm', 'cow',  'c'),
      ('B', 3, 'orca',  'bull', 'a'),
      ('C', 1, 'sperm', 'calf', 'b'), ('C', 2, 'sperm', 'bull', 'c'),
      ('C', 3, 'orca',  'cow',  'a'),
      ('D', 1, 'sperm', 'calf', 'b'), ('D', 2, 'sperm', 'bull', 'c'),
      ('D', 3, 'orca',  'bull', 'a'),
      ('E', 1, 'sperm', 'calf', 'c'), ('E', 2, 'sperm', 'cow',  'b'),
      ('E', 3, 'orca',  'cow',  'a'),
      ('F', 1, 'sperm', 'calf', 'c'), ('F', 2, 'sperm', 'bull', 'b'),
      ('F', 3, 'orca',  'cow',  'a');
    create table I as select Id, Species, Gender, Pos from Obs
      choice of WID;
  )sql");
  if (!setup.ok()) {
    std::cerr << "setup failed: " << setup.status().ToString() << "\n";
    return 1;
  }

  bool ok = true;
  std::cout << "== The six worlds of Figure 3 ==\n";
  ok &= Run(session, "select * from I;");

  std::cout << "== Query Q: can the orca attack the calf (Id=1 at b)? ==\n";
  ok &= Run(session, "select possible 'yes' from I where Id=1 and Pos='b';");

  std::cout << "== Expert knowledge: cows position themselves between\n"
               "   their calves and the enemy (view Valid, assert) ==\n";
  ok &= Run(session,
            "create view Valid as select * from I assert exists"
            "(select * from I where Gender='cow' and Pos='b');");
  ok &= Run(session, "select possible 'yes' from Valid where Id=1 and Pos='b';");

  std::cout << "== Alternative view Valid' (empty outside world E) ==\n";
  ok &= Run(session,
            "create view Valid2 as select * from I where exists"
            "(select * from I where Gender='cow' and Pos='b');");
  ok &= Run(session, "select possible 'yes' from Valid2 where Id=1 and Pos='b';");

  std::cout << "== certain answers distinguish the two views ==\n";
  ok &= Run(session, "select certain * from Valid;");
  ok &= Run(session, "select certain * from Valid2;");

  std::cout << "== Figure 4: gender combinations per escape route ==\n";
  ok &= Run(session,
            "create table Groups as "
            "select possible i2.Gender as G2, i3.Gender as G3 "
            "from I i2, I i3 where i2.Id = 2 and i3.Id = 3 "
            "group worlds by (select Pos from I where Id = 2);");
  ok &= Run(session, "select * from Groups;");
  return ok ? 0 : 1;
}
