#include "worlds/component.h"

namespace maybms::worlds {

const std::vector<Tuple>* Alternative::TuplesFor(
    const std::string& relation_lower) const {
  auto it = tuples.find(relation_lower);
  return it == tuples.end() ? nullptr : &it->second;
}

bool Component::ContributesTo(const std::string& relation_lower) const {
  for (const Alternative& alt : alternatives) {
    auto it = alt.tuples.find(relation_lower);
    if (it != alt.tuples.end() && !it->second.empty()) return true;
  }
  return false;
}

std::vector<std::string> Component::Relations() const {
  std::vector<std::string> names;
  for (const Alternative& alt : alternatives) {
    for (const auto& [rel, tuples] : alt.tuples) {
      if (tuples.empty()) continue;
      bool seen = false;
      for (const std::string& n : names) {
        if (n == rel) {
          seen = true;
          break;
        }
      }
      if (!seen) names.push_back(rel);
    }
  }
  return names;
}

Status Component::Normalize() {
  double total = 0;
  for (const Alternative& alt : alternatives) total += alt.probability;
  if (total <= 0) {
    return Status::EmptyWorldSet("component has zero probability mass");
  }
  for (Alternative& alt : alternatives) alt.probability /= total;
  return Status::OK();
}

Result<Component> MergeComponents(const std::vector<const Component*>& parts,
                                  size_t max_alternatives) {
  Component merged;
  if (parts.empty()) {
    merged.alternatives.push_back(Alternative{});  // the trivial choice
    return merged;
  }

  uint64_t total = 1;
  for (const Component* part : parts) {
    total *= static_cast<uint64_t>(part->size());
    if (max_alternatives != 0 && total > max_alternatives) {
      return Status::Unsupported(
          "component merge would exceed " + std::to_string(max_alternatives) +
          " alternatives; the query correlates too many components");
    }
  }

  merged.alternatives.reserve(static_cast<size_t>(total));
  std::vector<size_t> pick(parts.size(), 0);
  while (true) {
    Alternative combo;
    combo.probability = 1.0;
    for (size_t i = 0; i < parts.size(); ++i) {
      const Alternative& alt = parts[i]->alternatives[pick[i]];
      combo.probability *= alt.probability;
      for (const auto& [rel, tuples] : alt.tuples) {
        auto& dst = combo.tuples[rel];
        dst.insert(dst.end(), tuples.begin(), tuples.end());
      }
    }
    merged.alternatives.push_back(std::move(combo));

    size_t i = 0;
    for (; i < parts.size(); ++i) {
      if (++pick[i] < parts[i]->size()) break;
      pick[i] = 0;
    }
    if (i == parts.size()) break;
  }
  return merged;
}

}  // namespace maybms::worlds
