#ifndef MAYBMS_WORLDS_COMPONENT_H_
#define MAYBMS_WORLDS_COMPONENT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "types/tuple.h"

namespace maybms::worlds {

/// One local world of a component: a probability plus the tuples this
/// choice contributes to each relation (keys are lower-cased relation
/// names). Choosing one alternative from every component — independently —
/// yields one possible world; the world's relation instance is the certain
/// core plus the chosen alternatives' contributions.
struct Alternative {
  double probability = 1.0;
  std::map<std::string, std::vector<Tuple>> tuples;

  const std::vector<Tuple>* TuplesFor(const std::string& relation_lower) const;
};

/// An independent factor of a world-set decomposition (ICDT'07 WSDs,
/// restricted to tuple-level alternatives — which is all the demo paper's
/// operations ever create). Alternatives are mutually exclusive and their
/// probabilities sum to one.
struct Component {
  std::vector<Alternative> alternatives;

  size_t size() const { return alternatives.size(); }

  bool ContributesTo(const std::string& relation_lower) const;

  /// All relation names (lower-cased) any alternative contributes to.
  std::vector<std::string> Relations() const;

  /// Rescales alternative probabilities to sum to one. Returns an error if
  /// the total mass is zero.
  Status Normalize();
};

/// Flattens the product of `parts` into a single component whose
/// alternatives are all combinations, with merged contributions and
/// product probabilities. The result size is the product of the part
/// sizes; `max_alternatives` guards against explosion (0 = unlimited).
Result<Component> MergeComponents(const std::vector<const Component*>& parts,
                                  size_t max_alternatives);

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_COMPONENT_H_
