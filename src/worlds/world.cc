#include "worlds/world.h"

namespace maybms::worlds {

std::string WorldLabel(size_t index) {
  std::string label;
  size_t n = index;
  while (true) {
    label.insert(label.begin(), static_cast<char>('A' + n % 26));
    if (n < 26) break;
    n = n / 26 - 1;
  }
  return label;
}

}  // namespace maybms::worlds
