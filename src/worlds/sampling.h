#ifndef MAYBMS_WORLDS_SAMPLING_H_
#define MAYBMS_WORLDS_SAMPLING_H_

#include <cstdint>

#include "base/result.h"
#include "sql/ast.h"
#include "worlds/world_set.h"

namespace maybms::worlds {

/// Monte-Carlo estimate of tuple confidences (extension beyond the demo
/// paper, in the spirit of MayBMS's later approximate confidence
/// computation).
///
/// Draws `samples` worlds from `world_set` (per-component sampling in the
/// decomposed engine — O(components) per draw) and evaluates the SQL core
/// of `stmt` in each. Returns the same table shape as `select conf ...`:
/// the distinct answer tuples with an estimated `conf` column; tuples
/// never observed are absent. With N samples the standard error of each
/// estimate is at most 1/(2*sqrt(N)).
///
/// `stmt` must be a plain SQL query (no repair/choice/assert/group worlds
/// by); a `conf` quantifier is ignored (the estimate replaces it).
///
/// Draws run on the shared thread pool (base/thread_pool.h); `threads`
/// caps the parallelism (0 = MAYBMS_THREADS / hardware). Each sample's
/// random stream is derived from (seed, sample ordinal) alone, so the
/// estimate depends only on (seed, samples) — never on the thread count.
Result<Table> EstimateConfidence(const WorldSet& world_set,
                                 const sql::SelectStatement& stmt,
                                 size_t samples, uint32_t seed,
                                 size_t threads = 0);

/// Monte-Carlo estimate of P(condition holds), where `condition` is
/// evaluated per world like an `assert` predicate. Companion to
/// EstimateConfidence for world-level conditions (Ex. 2.10 pattern);
/// same (seed, samples)-deterministic parallel drawing.
Result<double> EstimateConditionProbability(const WorldSet& world_set,
                                            const sql::Expr& condition,
                                            size_t samples, uint32_t seed,
                                            size_t threads = 0);

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_SAMPLING_H_
