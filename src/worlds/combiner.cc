#include "worlds/combiner.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <utility>

#include "types/value.h"
#include "worlds/world_set.h"

namespace maybms::worlds {

bool QuantifierCombiner::UsingSetBasedOracle() {
  static const bool enabled = [] {
    const char* env = std::getenv("MAYBMS_COMBINER_ORACLE");
    return env != nullptr && env[0] == '1';
  }();
  return enabled;
}

QuantifierCombiner::QuantifierCombiner(sql::WorldQuantifier quantifier)
    : quantifier_(quantifier), use_oracle_(UsingSetBasedOracle()) {}

Result<QuantifierCombiner> QuantifierCombiner::Create(
    sql::WorldQuantifier quantifier) {
  switch (quantifier) {
    case sql::WorldQuantifier::kPossible:
    case sql::WorldQuantifier::kCertain:
    case sql::WorldQuantifier::kConf:
      return QuantifierCombiner(quantifier);
    case sql::WorldQuantifier::kNone:
      break;
  }
  return Status::InvalidArgument(
      "group worlds by requires possible, certain, or conf");
}

void QuantifierCombiner::Feed(double probability, const Table& table) {
  ++worlds_fed_;
  if (use_oracle_) {
    retained_.emplace_back(probability, table);
    return;
  }
  if (!saw_schema_) {
    first_schema_ = table.schema();
    saw_schema_ = true;
  }
  if (value_schema_.num_columns() == 0 && table.schema().num_columns() > 0) {
    value_schema_ = table.schema();
  }
  if (quantifier_ == sql::WorldQuantifier::kConf && !table.empty()) {
    nonempty_prob_ += probability;
  }
  for (const Tuple& row : table.rows()) {
    auto [it, inserted] = acc_.try_emplace(row);
    Accum& entry = it->second;
    if (!inserted && entry.last_world == worlds_fed_) continue;  // in-world dup
    entry.last_world = worlds_fed_;
    ++entry.worlds_seen;
    entry.conf += probability;
  }
}

void QuantifierCombiner::Merge(QuantifierCombiner&& other) {
  if (use_oracle_) {
    retained_.insert(retained_.end(),
                     std::make_move_iterator(other.retained_.begin()),
                     std::make_move_iterator(other.retained_.end()));
    worlds_fed_ += other.worlds_fed_;
    return;
  }
  if (!saw_schema_ && other.saw_schema_) {
    first_schema_ = std::move(other.first_schema_);
    saw_schema_ = true;
  }
  if (value_schema_.num_columns() == 0 &&
      other.value_schema_.num_columns() > 0) {
    value_schema_ = std::move(other.value_schema_);
  }
  nonempty_prob_ += other.nonempty_prob_;
  // `other`'s worlds come after ours in the merged ordinal space, so its
  // 1-based last_world stamps shift by our pre-merge worlds_fed_. The
  // shifted stamp is always the newer one (> worlds_fed_ >= any existing
  // stamp), which keeps in-world dup detection correct for future Feeds.
  const size_t shift = worlds_fed_;
  for (auto& [row, entry] : other.acc_) {
    auto [it, inserted] = acc_.try_emplace(row);
    Accum& mine = it->second;
    mine.conf += entry.conf;
    mine.worlds_seen += entry.worlds_seen;
    mine.last_world = entry.last_world + shift;
  }
  worlds_fed_ += other.worlds_fed_;
}

Result<Table> QuantifierCombiner::Finish(double normalizer) {
  // Zero total surviving mass (assert killed every world, or every sample
  // weight was 0) has no well-defined conf distribution — fail cleanly
  // instead of emitting NaN confidences. possible/certain never divide.
  if (quantifier_ == sql::WorldQuantifier::kConf && !(normalizer > 0)) {
    return Status::EmptyWorldSet(
        "conf is undefined over zero total probability mass");
  }
  if (use_oracle_) {
    // Differential mode: normalize the retained weights and delegate to
    // the set-based combinators kept in world_set.cc.
    if (normalizer != 1.0) {
      for (auto& [prob, table] : retained_) prob /= normalizer;
    }
    switch (quantifier_) {
      case sql::WorldQuantifier::kPossible:
        return CombinePossible(retained_);
      case sql::WorldQuantifier::kCertain:
        return CombineCertain(retained_);
      case sql::WorldQuantifier::kConf:
        return CombineConf(retained_);
      case sql::WorldQuantifier::kNone:
        break;
    }
    return Status::InvalidArgument(
        "group worlds by requires possible, certain, or conf");
  }

  // Deterministic emission order: the same tuple total order the
  // set-based combinators produce (std::map / SortedDistinct).
  std::vector<std::pair<const Tuple*, const Accum*>> ordered;
  ordered.reserve(acc_.size());
  for (const auto& [row, entry] : acc_) {
    if (quantifier_ == sql::WorldQuantifier::kCertain &&
        entry.worlds_seen != worlds_fed_) {
      continue;  // missed at least one world
    }
    ordered.emplace_back(&row, &entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });

  switch (quantifier_) {
    case sql::WorldQuantifier::kPossible:
    case sql::WorldQuantifier::kCertain: {
      if (!saw_schema_) return Table();  // no worlds fed
      Table out(first_schema_);
      for (const auto& e : ordered) out.AppendUnchecked(*e.first);
      return out;
    }
    case sql::WorldQuantifier::kConf: {
      // 0-column answers: confidence that the answer is non-empty.
      if (value_schema_.num_columns() == 0) {
        Schema schema;
        schema.AddColumn(Column("conf", DataType::kReal));
        Table out(std::move(schema));
        out.AppendUnchecked(Tuple({Value::Real(nonempty_prob_ / normalizer)}));
        return out;
      }
      Schema schema = value_schema_;
      schema.AddColumn(Column("conf", DataType::kReal));
      Table out(std::move(schema));
      for (const auto& e : ordered) {
        Tuple extended = *e.first;
        extended.Append(Value::Real(e.second->conf / normalizer));
        out.AppendUnchecked(std::move(extended));
      }
      return out;
    }
    case sql::WorldQuantifier::kNone:
      break;
  }
  return Status::InvalidArgument(
      "group worlds by requires possible, certain, or conf");
}

GroupedQuantifierCombiner::GroupedQuantifierCombiner(
    sql::WorldQuantifier quantifier)
    : quantifier_(quantifier) {}

Status GroupedQuantifierCombiner::Feed(double probability, const Table& answer,
                                       const Table& group_key_answer) {
  Table canonical = CanonicalizeGroupKey(group_key_answer);
  auto it = groups_.find(canonical.rows());
  if (it == groups_.end()) {
    // Create the combiner BEFORE inserting the group entry: a kNone
    // quantifier must fail without leaving a combinerless GroupAccum
    // behind for Finish() to trip over.
    MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                            QuantifierCombiner::Create(quantifier_));
    GroupAccum fresh;
    fresh.combiner.emplace(std::move(combiner));
    it = groups_.emplace(canonical.rows(), std::move(fresh)).first;
    it->second.key_table = std::move(canonical);
  }
  GroupAccum& group = it->second;
  group.combiner->Feed(probability, answer);
  group.mass += probability;
  total_mass_ += probability;
  ++worlds_fed_;
  return Status::OK();
}

Status GroupedQuantifierCombiner::Merge(GroupedQuantifierCombiner&& other) {
  for (auto& [key, group] : other.groups_) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                              QuantifierCombiner::Create(quantifier_));
      GroupAccum fresh;
      fresh.combiner.emplace(std::move(combiner));
      it = groups_.emplace(key, std::move(fresh)).first;
      it->second.key_table = std::move(group.key_table);
    }
    it->second.combiner->Merge(std::move(*group.combiner));
    it->second.mass += group.mass;
  }
  total_mass_ += other.total_mass_;
  worlds_fed_ += other.worlds_fed_;
  return Status::OK();
}

Result<std::vector<SelectEvaluation::GroupResult>>
GroupedQuantifierCombiner::Finish() {
  std::vector<SelectEvaluation::GroupResult> out;
  out.reserve(groups_.size());
  for (auto& [key, group] : groups_) {
    MAYBMS_ASSIGN_OR_RETURN(
        Table combined,
        group.combiner->Finish(group.mass > 0 ? group.mass : 1.0));
    out.push_back(SelectEvaluation::GroupResult{
        total_mass_ > 0 ? group.mass / total_mass_ : 0,
        std::move(group.key_table), std::move(combined)});
  }
  return out;
}

}  // namespace maybms::worlds
