#include "worlds/explicit_world_set.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <random>
#include <utility>

#include "base/query_context.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "engine/dml.h"
#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "engine/planner.h"
#include "engine/prepared.h"
#include "worlds/combiner.h"
#include "worlds/partition.h"

namespace maybms::worlds {

namespace {

/// Canonical map key for group-worlds-by: the sorted distinct rows of the
/// grouping query answer.
std::vector<Tuple> GroupKeyRows(const Table& table) {
  return table.SortedDistinct().rows();
}

/// Enumerates every repair/choice combination of every input world, in
/// parallel within each input world: plans the source pipeline once and
/// the projection once per thread slot, partitions each world's source
/// relation, enforces the world cap (error text is part of the
/// conformance surface), and emits one derived world per combination.
///
/// Combination `c` of a world is decoded from the per-block mixed-radix
/// odometer (block 0 is the least-significant digit), so emission index
/// order — and with it probability multiplication order and first-error
/// choice — is exactly the sequential odometer walk at any thread count.
///
/// Per input world: `begin_world(combos)` sizes the caller's per-chunk
/// state, `emit(global_index, slot, chunk, world, prob, result)` runs on
/// pool threads (chunk geometry is ThreadPool::ChunkSize(combos)), and
/// `end_world()` runs on the caller thread afterwards to merge chunk
/// state in chunk order. Input worlds advance strictly in sequence, so
/// error interleaving (world i's combos before world i+1's partition)
/// matches the sequential engine. Shared by the materializing pipeline
/// and the streaming quantifier paths so cap semantics cannot drift.
template <typename BeginWorld, typename Emit, typename EndWorld>
Status EnumerateRepairChoiceWorlds(base::ThreadPool& pool, size_t threads,
                                   const std::vector<World>& input,
                                   const sql::SelectStatement& stmt,
                                   const sql::SelectStatement& core,
                                   size_t max_worlds, BeginWorld&& begin_world,
                                   Emit&& emit, EndWorld&& end_world) {
  std::optional<engine::PreparedFromWhere> source_plan;
  // Projections lazily build subquery-plan caches during Execute, so each
  // thread slot owns one (base/thread_pool.h rule 3). Slot 0's is
  // prepared eagerly so preparation errors surface exactly where the
  // sequential code surfaced them; preparation is schema-only and
  // deterministic, so a lazy slot>0 preparation can never fail first.
  std::vector<std::optional<engine::PreparedProjection>> projections(
      pool.Slots(threads));
  uint64_t produced = 0;
  for (const World& world : input) {
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    if (!source_plan.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(
          source_plan, engine::PreparedFromWhere::Prepare(stmt, world.db));
      MAYBMS_ASSIGN_OR_RETURN(projections[0],
                              engine::PreparedProjection::Prepare(
                                  core, world.db,
                                  source_plan->output_schema()));
    }
    MAYBMS_ASSIGN_OR_RETURN(Table source, source_plan->Execute(world.db));
    std::vector<PartitionBlock> blocks;
    if (stmt.repair.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(blocks, RepairPartition(source, *stmt.repair));
    } else {
      MAYBMS_ASSIGN_OR_RETURN(blocks, ChoicePartition(source, *stmt.choice));
    }

    uint64_t combos = 1;
    for (const PartitionBlock& b : blocks) {
      combos *= static_cast<uint64_t>(b.choices.size());
      if (combos > max_worlds) {
        return Status::Unsupported(
            "explicit world-set would exceed the configured cap of " +
            std::to_string(max_worlds) + " worlds; use the decomposed engine");
      }
    }
    if (produced + combos > max_worlds) {
      return Status::Unsupported(
          "explicit world-set would exceed the configured cap of " +
          std::to_string(max_worlds) + " worlds; use the decomposed engine");
    }
    const uint64_t base = produced;
    produced += combos;
    // Fan-out is THE world-budget charge site: combos derived worlds come
    // into existence here regardless of which pipeline consumes them.
    MAYBMS_RETURN_NOT_OK(base::GovernChargeWorlds(combos));

    begin_world(static_cast<size_t>(combos));
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        static_cast<size_t>(combos), threads,
        [&](size_t c, size_t slot, size_t chunk) -> Status {
          if (!projections[slot].has_value()) {
            MAYBMS_ASSIGN_OR_RETURN(projections[slot],
                                    engine::PreparedProjection::Prepare(
                                        core, world.db,
                                        source_plan->output_schema()));
          }
          // Decode combination c: pick[b] is digit b of c, block 0 least
          // significant — the sequential odometer's increment order. An
          // empty block list (repair of an empty relation) yields exactly
          // the single empty choice c == 0.
          double prob = world.probability;
          std::vector<size_t> rows;
          uint64_t rem = c;
          for (const PartitionBlock& block : blocks) {
            const size_t digit =
                static_cast<size_t>(rem % block.choices.size());
            rem /= block.choices.size();
            const WeightedChoice& choice = block.choices[digit];
            prob *= choice.probability;
            rows.insert(rows.end(), choice.row_indices.begin(),
                        choice.row_indices.end());
          }
          std::vector<Tuple> chosen;
          chosen.reserve(rows.size());
          for (size_t r : rows) chosen.push_back(source.row(r));
          MAYBMS_ASSIGN_OR_RETURN(Table result,
                                  projections[slot]->Execute(world.db, chosen));
          // Memory-budget charge for the per-world answer, here so every
          // consumer (materializing, streaming, grouped) pays it exactly
          // once per combination.
          MAYBMS_RETURN_NOT_OK(base::GovernChargeBytes(base::EstimateTableBytes(
              result.num_rows(), result.schema().num_columns())));
          return emit(static_cast<size_t>(base) + c, slot, chunk, world, prob,
                      std::move(result));
        }));
    MAYBMS_RETURN_NOT_OK(end_world());
  }
  return Status::OK();
}

}  // namespace

std::unique_ptr<sql::SelectStatement> StripWorldOps(
    const sql::SelectStatement& stmt) {
  std::unique_ptr<sql::SelectStatement> core = stmt.Clone();
  core->quantifier = sql::WorldQuantifier::kNone;
  core->repair.reset();
  core->choice.reset();
  core->assert_condition.reset();
  core->group_worlds_by.reset();
  return core;
}

ExplicitWorldSet::ExplicitWorldSet(size_t max_worlds, size_t threads)
    : max_worlds_(max_worlds), threads_(threads) {
  worlds_.emplace_back(Database(), 1.0);
}

std::unique_ptr<WorldSet> ExplicitWorldSet::Clone() const {
  return std::make_unique<ExplicitWorldSet>(*this);
}

double ExplicitWorldSet::Log10NumWorlds() const {
  return std::log10(static_cast<double>(worlds_.size()));
}

std::vector<std::string> ExplicitWorldSet::RelationNames() const {
  return worlds_.empty() ? std::vector<std::string>{}
                         : worlds_.front().db.RelationNames();
}

bool ExplicitWorldSet::HasRelation(const std::string& name) const {
  return !worlds_.empty() && worlds_.front().db.HasRelation(name);
}

Result<std::vector<World>> ExplicitWorldSet::MaterializeWorlds(
    size_t max_worlds, bool* truncated) const {
  if (truncated != nullptr) *truncated = worlds_.size() > max_worlds;
  if (worlds_.size() <= max_worlds) return worlds_;
  return std::vector<World>(worlds_.begin(), worlds_.begin() + max_worlds);
}

Result<std::vector<World>> ExplicitWorldSet::TopKWorlds(size_t k) const {
  std::vector<size_t> order(worlds_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return worlds_[a].probability > worlds_[b].probability;
  });
  std::vector<World> top;
  top.reserve(std::min(k, order.size()));
  for (size_t i = 0; i < order.size() && top.size() < k; ++i) {
    // Same budget semantics as the decomposed engine: one charge per
    // enumerated world, so which engine holds the data cannot change
    // whether a statement fits its world budget.
    MAYBMS_RETURN_NOT_OK(base::GovernChargeWorlds(1));
    top.push_back(worlds_[order[i]]);
  }
  return top;
}

Result<World> ExplicitWorldSet::SampleWorld(base::SplitMix64* rng) const {
  if (worlds_.empty()) return Status::EmptyWorldSet("no worlds to sample");
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  double u = uniform(*rng);
  double cumulative = 0;
  for (const World& world : worlds_) {
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    cumulative += world.probability;
    if (u <= cumulative) return world;
  }
  return worlds_.back();  // numeric slack
}

Status ExplicitWorldSet::CreateBaseTable(const std::string& name,
                                         const Table& prototype) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  // One shared instance for every world: the relation starts out
  // identical everywhere, so storing it is W handle bumps, not W copies.
  // The first world that mutates it clones its own copy (COW).
  auto shared = std::make_shared<Table>(prototype);
  // One poll BEFORE the loop, none inside: each iteration is an O(1)
  // handle bump, and aborting mid-loop would leave the relation present
  // in some worlds only — a cancellation point must never tear state.
  MAYBMS_RETURN_NOT_OK(base::GovernPoll());
  for (World& world : worlds_) world.db.PutRelation(name, shared);
  return Status::OK();
}

Status ExplicitWorldSet::DropRelation(const std::string& name) {
  if (!HasRelation(name)) {
    return Status::NotFound("relation not found: " + name);
  }
  // Poll before the loop only: dropping from a prefix of the worlds and
  // then aborting would tear the set (see CreateBaseTable).
  MAYBMS_RETURN_NOT_OK(base::GovernPoll());
  for (World& world : worlds_) {
    MAYBMS_RETURN_NOT_OK(world.db.DropRelation(name));
  }
  return Status::OK();
}

Status ExplicitWorldSet::ApplyDml(const sql::Statement& stmt,
                                  const Catalog& catalog) {
  // Possible-worlds update semantics (paper §2): the update must commit
  // in every world or in none. Snapshot/rollback commit protocol: each
  // world's post-statement database is computed against a copy-on-write
  // snapshot (O(#relations) handle bumps; only the statement's target
  // relation is rewritten, every untouched relation stays shared with the
  // live world) and recorded in a commit log. The log is swapped into
  // `worlds_` only after every world succeeded; any per-world failure
  // (e.g. a constraint violation) simply drops the log, leaving the set
  // untouched — the PR 1 atomicity guarantee without copying unchanged
  // relations.
  //
  // Snapshots are computed in parallel; each world is touched by exactly
  // one thread and the live set is read-only until the final swap. When
  // several worlds fail, the error of the smallest world index is
  // reported (ThreadPool rule 2) — the same error the sequential loop
  // hit first, so rollback behavior is deterministic at any thread count.
  if (worlds_.empty()) return Status::OK();
  base::ThreadPool& pool = base::ThreadPool::Shared();
  // The statement is planned once per thread slot (column resolution,
  // INSERT ... SELECT preparation, subquery analysis) against one world's
  // schemas — identical in every world — and only executed per world.
  // Slot 0 prepares eagerly so preparation errors surface before any
  // world executes, exactly as in the sequential code.
  std::vector<std::optional<engine::PreparedDml>> plans(pool.Slots(threads_));
  MAYBMS_ASSIGN_OR_RETURN(
      plans[0], engine::PreparedDml::Prepare(stmt, worlds_[0].db, &catalog));
  std::vector<Database> commit_log(worlds_.size());
  MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
      worlds_.size(), threads_,
      [&](size_t i, size_t slot, size_t /*chunk*/) -> Status {
        if (!plans[slot].has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(
              plans[slot],
              engine::PreparedDml::Prepare(stmt, worlds_[i].db, &catalog));
        }
        Database snapshot = worlds_[i].db;  // shares every table handle
        MAYBMS_RETURN_NOT_OK(plans[slot]->Execute(&snapshot));
        commit_log[i] = std::move(snapshot);
        return Status::OK();
      }));
  for (size_t i = 0; i < worlds_.size(); ++i) {
    worlds_[i].db = std::move(commit_log[i]);
  }
  return Status::OK();
}

void ExplicitWorldSet::SetWorlds(std::vector<World> worlds) {
  // Pure O(1)-per-world arithmetic over an already-materialized vector
  // (whose construction was the governed, charged part), and the whole
  // normalize-and-swap must be atomic — aborting between the two loops
  // would install half-normalized probabilities.
  double total = 0;
  // maybms-lint: allow(ungoverned-world-loop)
  for (const World& w : worlds) total += w.probability;
  if (total > 0) {
    // maybms-lint: allow(ungoverned-world-loop)
    for (World& w : worlds) w.probability /= total;
  }
  worlds_ = std::move(worlds);
}

Result<ExplicitWorldSet::PipelineOutput> ExplicitWorldSet::RunPipeline(
    std::vector<World> input, const sql::SelectStatement& stmt,
    const std::string& result_name, bool want_per_world_results) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));

  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);
  base::ThreadPool& pool = base::ThreadPool::Shared();
  const size_t slots = pool.Slots(threads_);

  PipelineOutput out;

  // When a quantifier collapses the answer and no assert/grouping needs
  // per-world results later, stream each world's answer straight into a
  // per-chunk combiner instead of storing it in the world — no per-world
  // result table outlives its own combination step. Chunk combiners merge
  // in chunk order (deterministic at any thread count).
  const bool stream_feed = stmt.quantifier != sql::WorldQuantifier::kNone &&
                           !stmt.group_worlds_by && !stmt.assert_condition;
  std::optional<QuantifierCombiner> stream_combiner;
  if (stream_feed) {
    MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner c,
                            QuantifierCombiner::Create(stmt.quantifier));
    stream_combiner.emplace(std::move(c));
  }
  std::vector<std::optional<QuantifierCombiner>> chunk_combiners;
  auto feed_chunk = [&](size_t chunk, double prob,
                        const Table& result) -> Status {
    if (!chunk_combiners[chunk].has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(chunk_combiners[chunk],
                              QuantifierCombiner::Create(stmt.quantifier));
    }
    chunk_combiners[chunk]->Feed(prob, result);
    return Status::OK();
  };
  auto merge_chunks = [&] {
    for (auto& c : chunk_combiners) {
      if (c.has_value()) stream_combiner->Merge(std::move(*c));
    }
    chunk_combiners.clear();
  };

  // --- Step 1: per-world SQL core, with repair/choice world creation. ---
  // Statements are planned once per thread slot (all worlds share one
  // schema catalog; see engine/prepared.h) and executed per world; only
  // scans, joins, and predicate evaluation repeat. Worlds are
  // index-stamped into `out.worlds`, so emission order is identical to
  // the sequential engine at any thread count.
  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    MAYBMS_RETURN_NOT_OK(EnumerateRepairChoiceWorlds(
        pool, threads_, input, stmt, *core, max_worlds_,
        [&](size_t combos) {
          out.worlds.resize(out.worlds.size() + combos);
          if (stream_feed) {
            chunk_combiners.clear();
            chunk_combiners.resize(base::ThreadPool::NumChunks(combos));
          }
        },
        [&](size_t global, size_t /*slot*/, size_t chunk, const World& world,
            double prob, Table result) -> Status {
          World derived(world.db, prob);
          if (stream_feed) {
            MAYBMS_RETURN_NOT_OK(feed_chunk(chunk, prob, result));
          } else {
            derived.db.PutRelation(result_name, std::move(result));
          }
          out.worlds[global] = std::move(derived);
          return Status::OK();
        },
        [&]() -> Status {
          if (stream_feed) merge_chunks();
          return Status::OK();
        }));
  } else {
    const size_t n = input.size();
    std::vector<std::optional<engine::PreparedSelect>> plans(slots);
    if (n > 0) {
      MAYBMS_ASSIGN_OR_RETURN(
          plans[0], engine::PreparedSelect::Prepare(*core, input[0].db));
    }
    if (stream_feed) chunk_combiners.resize(base::ThreadPool::NumChunks(n));
    out.worlds.resize(n);
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t slot, size_t chunk) -> Status {
          if (!plans[slot].has_value()) {
            MAYBMS_ASSIGN_OR_RETURN(
                plans[slot], engine::PreparedSelect::Prepare(*core,
                                                             input[i].db));
          }
          MAYBMS_ASSIGN_OR_RETURN(Table result,
                                  plans[slot]->Execute(input[i].db));
          MAYBMS_RETURN_NOT_OK(
              base::GovernChargeBytes(base::EstimateTableBytes(
                  result.num_rows(), result.schema().num_columns())));
          World derived(std::move(input[i].db), input[i].probability);
          if (stream_feed) {
            MAYBMS_RETURN_NOT_OK(feed_chunk(chunk, derived.probability,
                                            result));
          } else {
            derived.db.PutRelation(result_name, std::move(result));
          }
          out.worlds[i] = std::move(derived);
          return Status::OK();
        }));
    if (stream_feed) merge_chunks();
  }

  // --- Step 2: assert — drop worlds, renormalize. ---
  if (stmt.assert_condition) {
    // Predicate evaluation is parallel (per-slot subquery-plan caches,
    // per-world flags); compaction and the probability sum stay in world
    // index order so renormalization is deterministic.
    const size_t n = out.worlds.size();
    std::vector<engine::SubqueryPlanCache> assert_plans(slots);
    std::vector<char> keep(n, 0);
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t slot, size_t /*chunk*/) -> Status {
          engine::SubqueryCache cache(&assert_plans[slot]);
          engine::EvalContext ctx{&out.worlds[i].db, nullptr, nullptr,
                                  nullptr, nullptr, &cache};
          MAYBMS_ASSIGN_OR_RETURN(
              Trivalent verdict,
              engine::EvalPredicate(*stmt.assert_condition, ctx));
          keep[i] = verdict == Trivalent::kTrue ? 1 : 0;
          return Status::OK();
        }));
    std::vector<World> surviving;
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (keep[i] == 0) continue;
      total += out.worlds[i].probability;
      surviving.push_back(std::move(out.worlds[i]));
    }
    if (surviving.empty()) {
      return Status::EmptyWorldSet("assert eliminated every world");
    }
    // World probabilities are always positive (weights must be positive;
    // see worlds/partition.cc), so survivors imply total > 0. Guard
    // anyway: dividing by zero here would poison every downstream
    // confidence with NaN.
    if (!(total > 0)) {
      return Status::EmptyWorldSet("assert leaves no probability mass");
    }
    // O(1)-per-world renormalization; a mid-loop abort would leave a
    // half-normalized survivor set.
    // maybms-lint: allow(ungoverned-world-loop)
    for (World& world : surviving) world.probability /= total;
    out.worlds = std::move(surviving);
  }

  // --- Step 3: group worlds by / possible / certain / conf. ---
  if (stmt.group_worlds_by) {
    if (engine::HasWorldOps(*stmt.group_worlds_by)) {
      return Status::Unsupported(
          "the GROUP WORLDS BY query must be a plain SQL query");
    }
    // Grouping-query answers are computed in parallel; grouping and
    // per-group combination keep world index order.
    const size_t n = out.worlds.size();
    std::vector<std::optional<engine::PreparedSelect>> plans(slots);
    if (n > 0) {
      MAYBMS_ASSIGN_OR_RETURN(plans[0],
                              engine::PreparedSelect::Prepare(
                                  *stmt.group_worlds_by, out.worlds[0].db));
    }
    std::vector<Table> answers(n);
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t slot, size_t /*chunk*/) -> Status {
          if (!plans[slot].has_value()) {
            MAYBMS_ASSIGN_OR_RETURN(plans[slot],
                                    engine::PreparedSelect::Prepare(
                                        *stmt.group_worlds_by,
                                        out.worlds[i].db));
          }
          MAYBMS_ASSIGN_OR_RETURN(answers[i],
                                  plans[slot]->Execute(out.worlds[i].db));
          return Status::OK();
        }));
    std::map<std::vector<Tuple>, std::vector<size_t>> groups;
    std::map<std::vector<Tuple>, Table> key_tables;
    for (size_t i = 0; i < n; ++i) {
      std::vector<Tuple> key = GroupKeyRows(answers[i]);
      key_tables.emplace(key, answers[i].SortedDistinct());
      groups[std::move(key)].push_back(i);
    }
    for (const auto& [key, members] : groups) {
      MAYBMS_RETURN_NOT_OK(base::GovernPoll());
      double group_prob = 0;
      for (size_t i : members) group_prob += out.worlds[i].probability;
      MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                              QuantifierCombiner::Create(stmt.quantifier));
      for (size_t i : members) {
        MAYBMS_ASSIGN_OR_RETURN(const Table* result,
                                out.worlds[i].db.GetRelation(result_name));
        combiner.Feed(
            group_prob > 0 ? out.worlds[i].probability / group_prob : 0,
            *result);
      }
      MAYBMS_ASSIGN_OR_RETURN(Table combined, combiner.Finish());
      // All member worlds hold the identical group result: store one
      // shared instance instead of one copy per world.
      auto shared = std::make_shared<Table>(combined);
      for (size_t i : members) {
        out.worlds[i].db.PutRelation(result_name, shared);
      }
      out.groups.push_back(SelectEvaluation::GroupResult{
          group_prob, key_tables.at(key), std::move(combined)});
    }
  } else if (stmt.quantifier != sql::WorldQuantifier::kNone) {
    Table combined;
    if (stream_feed) {
      // Step 1 already fed every world's answer; nothing was retained.
      MAYBMS_ASSIGN_OR_RETURN(combined, stream_combiner->Finish());
    } else {
      // Post-assert: feed each surviving world's answer into a per-chunk
      // combiner and drop it immediately, then merge in chunk order.
      MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                              QuantifierCombiner::Create(stmt.quantifier));
      const size_t n = out.worlds.size();
      chunk_combiners.resize(base::ThreadPool::NumChunks(n));
      MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
          n, threads_,
          [&](size_t i, size_t /*slot*/, size_t chunk) -> Status {
            MAYBMS_ASSIGN_OR_RETURN(
                const Table* result,
                out.worlds[i].db.GetRelation(result_name));
            MAYBMS_RETURN_NOT_OK(
                feed_chunk(chunk, out.worlds[i].probability, *result));
            return out.worlds[i].db.DropRelation(result_name);
          }));
      for (auto& c : chunk_combiners) {
        if (c.has_value()) combiner.Merge(std::move(*c));
      }
      chunk_combiners.clear();
      MAYBMS_ASSIGN_OR_RETURN(combined, combiner.Finish());
    }
    // The quantifier collapsed the answer to one certain relation that is
    // identical in every world: share a single instance across all of
    // them (W handle bumps, not W row copies).
    auto shared = std::make_shared<Table>(combined);
    for (World& world : out.worlds) {
      MAYBMS_RETURN_NOT_OK(base::GovernPoll());
      world.db.PutRelation(result_name, shared);
    }
    out.combined = std::move(combined);
  }

  // Per-world answers are only consumed by EvaluateSelect for plain
  // (quantifier-free) statements; quantifier results collapse to
  // `combined`/`groups` above and MaterializeSelect never reads them.
  if (want_per_world_results &&
      stmt.quantifier == sql::WorldQuantifier::kNone) {
    const size_t n = out.worlds.size();
    out.per_world_results.resize(n);
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t /*slot*/, size_t /*chunk*/)
                         -> Status {
          MAYBMS_ASSIGN_OR_RETURN(const Table* result,
                                  out.worlds[i].db.GetRelation(result_name));
          out.per_world_results[i] =
              std::make_pair(out.worlds[i].probability, *result);
          return Status::OK();
        }));
  }
  return out;
}


Result<Table> ExplicitWorldSet::EvaluateQuantifierStreaming(
    const sql::SelectStatement& stmt) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);

  MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                          QuantifierCombiner::Create(stmt.quantifier));
  base::ThreadPool& pool = base::ThreadPool::Shared();
  const size_t slots = pool.Slots(threads_);

  // Parallel streaming: each chunk of worlds folds into its own combiner
  // and survival accumulators; chunks merge in chunk-index order, so the
  // combined answer and the renormalization sum are byte-identical at
  // every thread count (base/thread_pool.h rule 1).
  struct ChunkAcc {
    std::optional<QuantifierCombiner> combiner;
    double prob = 0;
    size_t survivors = 0;
  };
  std::vector<ChunkAcc> chunks;
  double surviving_prob = 0;
  size_t survivors = 0;
  // Assert-condition subquery analysis is shared per thread slot; results
  // stay per world (fresh SubqueryCache per evaluation).
  std::vector<engine::SubqueryPlanCache> assert_plans(slots);

  // The assert condition can only see the statement's own answer if it
  // literally names the internal "__result" relation; copying the world
  // database to expose it is reserved for that (pathological) case so
  // the common assert stays copy-free.
  bool assert_reads_result = false;
  if (stmt.assert_condition) {
    std::set<std::string> assert_refs;
    CollectReferencedRelations(*stmt.assert_condition, &assert_refs);
    assert_reads_result = assert_refs.count("__result") > 0;
  }

  // Folds one world's answer into its chunk's combiner, applying the
  // assert filter first. `result` dies here — nothing per-world is
  // retained.
  auto feed = [&](double prob, Table result, const Database& db, size_t slot,
                  size_t chunk) -> Status {
    ChunkAcc& acc = chunks[chunk];
    if (!acc.combiner.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(acc.combiner,
                              QuantifierCombiner::Create(stmt.quantifier));
    }
    if (stmt.assert_condition) {
      engine::SubqueryCache cache(&assert_plans[slot]);
      if (assert_reads_result) {
        Database extended = db;
        extended.PutRelation("__result", std::move(result));
        engine::EvalContext ctx{&extended, nullptr, nullptr, nullptr, nullptr,
                                &cache};
        MAYBMS_ASSIGN_OR_RETURN(
            Trivalent keep,
            engine::EvalPredicate(*stmt.assert_condition, ctx));
        if (keep != Trivalent::kTrue) return Status::OK();
        MAYBMS_ASSIGN_OR_RETURN(const Table* kept,
                                extended.GetRelation("__result"));
        acc.combiner->Feed(prob, *kept);
      } else {
        engine::EvalContext ctx{&db, nullptr, nullptr, nullptr, nullptr,
                                &cache};
        MAYBMS_ASSIGN_OR_RETURN(
            Trivalent keep,
            engine::EvalPredicate(*stmt.assert_condition, ctx));
        if (keep != Trivalent::kTrue) return Status::OK();
        acc.combiner->Feed(prob, result);
      }
    } else {
      acc.combiner->Feed(prob, result);
    }
    acc.prob += prob;
    ++acc.survivors;
    return Status::OK();
  };
  auto merge_chunks = [&] {
    for (ChunkAcc& acc : chunks) {
      if (acc.combiner.has_value()) combiner.Merge(std::move(*acc.combiner));
      surviving_prob += acc.prob;
      survivors += acc.survivors;
    }
    chunks.clear();
  };

  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    MAYBMS_RETURN_NOT_OK(EnumerateRepairChoiceWorlds(
        pool, threads_, worlds_, stmt, *core, max_worlds_,
        [&](size_t combos) {
          chunks.resize(base::ThreadPool::NumChunks(combos));
        },
        [&](size_t /*global*/, size_t slot, size_t chunk, const World& world,
            double prob, Table result) -> Status {
          return feed(prob, std::move(result), world.db, slot, chunk);
        },
        [&]() -> Status {
          merge_chunks();
          return Status::OK();
        }));
  } else {
    const size_t n = worlds_.size();
    std::vector<std::optional<engine::PreparedSelect>> plans(slots);
    if (n > 0) {
      MAYBMS_ASSIGN_OR_RETURN(
          plans[0], engine::PreparedSelect::Prepare(*core, worlds_[0].db));
    }
    chunks.resize(base::ThreadPool::NumChunks(n));
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t slot, size_t chunk) -> Status {
          if (!plans[slot].has_value()) {
            MAYBMS_ASSIGN_OR_RETURN(
                plans[slot],
                engine::PreparedSelect::Prepare(*core, worlds_[i].db));
          }
          MAYBMS_ASSIGN_OR_RETURN(Table result,
                                  plans[slot]->Execute(worlds_[i].db));
          MAYBMS_RETURN_NOT_OK(
              base::GovernChargeBytes(base::EstimateTableBytes(
                  result.num_rows(), result.schema().num_columns())));
          return feed(worlds_[i].probability, std::move(result),
                      worlds_[i].db, slot, chunk);
        }));
    merge_chunks();
  }

  if (stmt.assert_condition) {
    if (survivors == 0) {
      return Status::EmptyWorldSet("assert eliminated every world");
    }
    // Fed weights were pre-assert probabilities; renormalize over the
    // surviving mass, exactly as the materializing pipeline does.
    // (Survivors have positive probability, so surviving_prob > 0 and
    // Finish cannot hit its zero-mass guard here.)
    return combiner.Finish(surviving_prob);
  }
  return combiner.Finish();
}

Result<std::vector<SelectEvaluation::GroupResult>>
ExplicitWorldSet::EvaluateGroupedStreaming(
    const sql::SelectStatement& stmt) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));
  if (engine::HasWorldOps(*stmt.group_worlds_by)) {
    return Status::Unsupported(
        "the GROUP WORLDS BY query must be a plain SQL query");
  }
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);
  base::ThreadPool& pool = base::ThreadPool::Shared();
  const size_t slots = pool.Slots(threads_);

  // The shared grouped accumulator (worlds/combiner.h): one combiner per
  // distinct group key, fed unnormalized (pre-assert) probabilities and
  // normalized per group at Finish — identical semantics on both engines.
  // Worlds fold into per-chunk grouped combiners merged in chunk order.
  GroupedQuantifierCombiner grouped(stmt.quantifier);
  std::vector<std::optional<GroupedQuantifierCombiner>> chunk_grouped;
  std::vector<engine::SubqueryPlanCache> assert_plans(slots);
  std::vector<std::optional<engine::PreparedSelect>> group_plans(slots);

  // Folds one world: assert filter, group key, feed — the per-world
  // answer dies here; nothing larger than the accumulators is retained.
  auto feed = [&](double prob, Table result, const Database& db, size_t slot,
                  size_t chunk) -> Status {
    if (stmt.assert_condition) {
      engine::SubqueryCache cache(&assert_plans[slot]);
      engine::EvalContext ctx{&db, nullptr, nullptr, nullptr, nullptr,
                              &cache};
      MAYBMS_ASSIGN_OR_RETURN(
          Trivalent keep, engine::EvalPredicate(*stmt.assert_condition, ctx));
      if (keep != Trivalent::kTrue) return Status::OK();
    }
    if (!group_plans[slot].has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(group_plans[slot],
                              engine::PreparedSelect::Prepare(
                                  *stmt.group_worlds_by, db));
    }
    MAYBMS_ASSIGN_OR_RETURN(Table answer, group_plans[slot]->Execute(db));
    if (!chunk_grouped[chunk].has_value()) {
      chunk_grouped[chunk].emplace(stmt.quantifier);
    }
    return chunk_grouped[chunk]->Feed(prob, result, answer);
  };
  auto merge_chunks = [&]() -> Status {
    for (auto& c : chunk_grouped) {
      if (c.has_value()) MAYBMS_RETURN_NOT_OK(grouped.Merge(std::move(*c)));
    }
    chunk_grouped.clear();
    return Status::OK();
  };

  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    MAYBMS_RETURN_NOT_OK(EnumerateRepairChoiceWorlds(
        pool, threads_, worlds_, stmt, *core, max_worlds_,
        [&](size_t combos) {
          chunk_grouped.resize(base::ThreadPool::NumChunks(combos));
        },
        [&](size_t /*global*/, size_t slot, size_t chunk, const World& world,
            double prob, Table result) -> Status {
          return feed(prob, std::move(result), world.db, slot, chunk);
        },
        merge_chunks));
  } else {
    const size_t n = worlds_.size();
    std::vector<std::optional<engine::PreparedSelect>> plans(slots);
    if (n > 0) {
      MAYBMS_ASSIGN_OR_RETURN(
          plans[0], engine::PreparedSelect::Prepare(*core, worlds_[0].db));
    }
    chunk_grouped.resize(base::ThreadPool::NumChunks(n));
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t slot, size_t chunk) -> Status {
          if (!plans[slot].has_value()) {
            MAYBMS_ASSIGN_OR_RETURN(
                plans[slot],
                engine::PreparedSelect::Prepare(*core, worlds_[i].db));
          }
          MAYBMS_ASSIGN_OR_RETURN(Table result,
                                  plans[slot]->Execute(worlds_[i].db));
          MAYBMS_RETURN_NOT_OK(
              base::GovernChargeBytes(base::EstimateTableBytes(
                  result.num_rows(), result.schema().num_columns())));
          return feed(worlds_[i].probability, std::move(result),
                      worlds_[i].db, slot, chunk);
        }));
    MAYBMS_RETURN_NOT_OK(merge_chunks());
  }

  if (stmt.assert_condition && grouped.worlds_fed() == 0) {
    return Status::EmptyWorldSet("assert eliminated every world");
  }
  return grouped.Finish();
}

Result<SelectEvaluation> ExplicitWorldSet::EvaluateSelect(
    const sql::SelectStatement& stmt, size_t max_worlds) const {
  if (stmt.quantifier != sql::WorldQuantifier::kNone &&
      !stmt.group_worlds_by) {
    // possible/certain/conf collapse to one certain relation: stream
    // per-world answers into the combiner without copying any database.
    MAYBMS_ASSIGN_OR_RETURN(Table combined, EvaluateQuantifierStreaming(stmt));
    SelectEvaluation eval;
    eval.combined = std::move(combined);
    return eval;
  }
  if (stmt.quantifier != sql::WorldQuantifier::kNone && stmt.group_worlds_by &&
      !ReferencesInternalResult(stmt)) {
    // Grouped quantifier: per-group-key streaming combination; no
    // per-world answer outlives its own feed.
    MAYBMS_ASSIGN_OR_RETURN(std::vector<SelectEvaluation::GroupResult> groups,
                            EvaluateGroupedStreaming(stmt));
    SelectEvaluation eval;
    eval.groups = std::move(groups);
    return eval;
  }
  MAYBMS_ASSIGN_OR_RETURN(
      PipelineOutput out,
      RunPipeline(worlds_, stmt, "__result", /*want_per_world_results=*/true));
  SelectEvaluation eval;
  eval.combined = std::move(out.combined);
  eval.groups = std::move(out.groups);
  eval.truncated = out.per_world_results.size() > max_worlds;
  if (eval.truncated) out.per_world_results.resize(max_worlds);
  eval.per_world = std::move(out.per_world_results);
  return eval;
}

Status ExplicitWorldSet::MaterializeSelect(const std::string& name,
                                           const sql::SelectStatement& stmt) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  // Snapshot/rollback: the pipeline runs against copy-on-write snapshots
  // of the worlds (the by-value `input` copy is O(worlds × relations)
  // handle bumps; every untouched relation stays shared with the live
  // set), so a mid-pipeline error (e.g. `choice of` over an empty
  // relation, or the world cap) leaves the world-set untouched, matching
  // the decomposed engine's compute-then-commit behavior. Committing
  // swaps the snapshot vector in wholesale.
  MAYBMS_ASSIGN_OR_RETURN(
      PipelineOutput out,
      RunPipeline(worlds_, stmt, name, /*want_per_world_results=*/false));
  worlds_ = std::move(out.worlds);
  return Status::OK();
}

Result<storage::DurableSnapshot> ExplicitWorldSet::ToSnapshot() const {
  storage::DurableSnapshot snapshot;
  snapshot.engine = EngineName();
  // Pointer-dedupe: every distinct shared instance appears once in
  // `tables`, so worlds that share a relation instance keep sharing it on
  // disk and after restore.
  std::map<const Table*, size_t> index;
  snapshot.worlds.reserve(worlds_.size());
  for (const World& world : worlds_) {
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    storage::DurableSnapshot::WorldRef world_ref;
    world_ref.probability = world.probability;
    for (const std::string& name : world.db.RelationNames()) {
      MAYBMS_ASSIGN_OR_RETURN(Database::TableHandle handle,
                              world.db.GetRelationHandle(name));
      auto [it, inserted] = index.emplace(handle.get(), snapshot.tables.size());
      if (inserted) snapshot.tables.push_back(std::move(handle));
      world_ref.relations.push_back({name, it->second});
    }
    snapshot.worlds.push_back(std::move(world_ref));
  }
  return snapshot;
}

Status ExplicitWorldSet::FromSnapshot(
    const storage::DurableSnapshot& snapshot) {
  if (snapshot.engine != EngineName()) {
    return Status::InvalidArgument(
        "cannot restore a '" + snapshot.engine +
        "' snapshot into the explicit engine");
  }
  if (snapshot.worlds.empty()) {
    return Status::InvalidArgument(
        "explicit snapshot restore: snapshot has no worlds");
  }
  std::vector<World> worlds;
  worlds.reserve(snapshot.worlds.size());
  for (const auto& world_ref : snapshot.worlds) {
    // Restore builds into a local vector and swaps at the end, so a poll
    // aborting here leaves the live set untouched. (The post-commit
    // reload in isql::Session runs SHIELDED — QueryContextScope(nullptr)
    // — so a fired deadline can never abort it; see PersistAndReload.)
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    World world;
    world.probability = world_ref.probability;
    for (const auto& relation : world_ref.relations) {
      if (relation.table_index >= snapshot.tables.size()) {
        return Status::DataLoss(
            "explicit snapshot restore: table index out of range");
      }
      world.db.PutRelation(relation.name,
                           snapshot.tables[relation.table_index]);
    }
    worlds.push_back(std::move(world));
  }
  // Adopt probabilities verbatim — NOT SetWorlds, whose renormalization
  // could perturb the doubles and break byte-identical restored results.
  worlds_ = std::move(worlds);
  return Status::OK();
}

}  // namespace maybms::worlds
