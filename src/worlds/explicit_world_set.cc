#include "worlds/explicit_world_set.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/string_util.h"
#include "engine/dml.h"
#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "engine/planner.h"
#include "engine/prepared.h"
#include "worlds/combiner.h"
#include "worlds/partition.h"

namespace maybms::worlds {

namespace {

/// Canonical map key for group-worlds-by: the sorted distinct rows of the
/// grouping query answer.
std::vector<Tuple> GroupKeyRows(const Table& table) {
  return table.SortedDistinct().rows();
}

/// Enumerates every repair/choice combination of every input world:
/// plans the source pipeline and the projection once, partitions each
/// world's source relation, enforces the world cap (error text is part
/// of the conformance surface), and walks the per-block odometer,
/// invoking `emit(world, probability, projected answer)` per derived
/// world. Shared by the materializing pipeline and the streaming
/// quantifier path so cap semantics cannot drift between them.
template <typename Emit>
Status EnumerateRepairChoiceWorlds(const std::vector<World>& input,
                                   const sql::SelectStatement& stmt,
                                   const sql::SelectStatement& core,
                                   size_t max_worlds, Emit&& emit) {
  std::optional<engine::PreparedFromWhere> source_plan;
  std::optional<engine::PreparedProjection> projection;
  uint64_t produced = 0;
  for (const World& world : input) {
    if (!source_plan.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(
          source_plan, engine::PreparedFromWhere::Prepare(stmt, world.db));
      MAYBMS_ASSIGN_OR_RETURN(projection,
                              engine::PreparedProjection::Prepare(
                                  core, world.db,
                                  source_plan->output_schema()));
    }
    MAYBMS_ASSIGN_OR_RETURN(Table source, source_plan->Execute(world.db));
    std::vector<PartitionBlock> blocks;
    if (stmt.repair.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(blocks, RepairPartition(source, *stmt.repair));
    } else {
      MAYBMS_ASSIGN_OR_RETURN(blocks, ChoicePartition(source, *stmt.choice));
    }

    uint64_t combos = 1;
    for (const PartitionBlock& b : blocks) {
      combos *= static_cast<uint64_t>(b.choices.size());
      if (combos > max_worlds) {
        return Status::Unsupported(
            "explicit world-set would exceed the configured cap of " +
            std::to_string(max_worlds) + " worlds; use the decomposed engine");
      }
    }
    if (produced + combos > max_worlds) {
      return Status::Unsupported(
          "explicit world-set would exceed the configured cap of " +
          std::to_string(max_worlds) + " worlds; use the decomposed engine");
    }
    produced += combos;

    std::vector<size_t> pick(blocks.size(), 0);
    while (true) {
      double prob = world.probability;
      std::vector<size_t> rows;
      for (size_t b = 0; b < blocks.size(); ++b) {
        const WeightedChoice& choice = blocks[b].choices[pick[b]];
        prob *= choice.probability;
        rows.insert(rows.end(), choice.row_indices.begin(),
                    choice.row_indices.end());
      }
      std::vector<Tuple> chosen;
      chosen.reserve(rows.size());
      for (size_t r : rows) chosen.push_back(source.row(r));
      MAYBMS_ASSIGN_OR_RETURN(Table result,
                              projection->Execute(world.db, chosen));
      MAYBMS_RETURN_NOT_OK(emit(world, prob, std::move(result)));

      // Advance the odometer. An empty block list (repair of an empty
      // relation) yields exactly the single empty choice above.
      size_t b = 0;
      for (; b < blocks.size(); ++b) {
        if (++pick[b] < blocks[b].choices.size()) break;
        pick[b] = 0;
      }
      if (b == blocks.size()) break;
    }
  }
  return Status::OK();
}

}  // namespace

std::unique_ptr<sql::SelectStatement> StripWorldOps(
    const sql::SelectStatement& stmt) {
  std::unique_ptr<sql::SelectStatement> core = stmt.Clone();
  core->quantifier = sql::WorldQuantifier::kNone;
  core->repair.reset();
  core->choice.reset();
  core->assert_condition.reset();
  core->group_worlds_by.reset();
  return core;
}

ExplicitWorldSet::ExplicitWorldSet(size_t max_worlds)
    : max_worlds_(max_worlds) {
  worlds_.emplace_back(Database(), 1.0);
}

std::unique_ptr<WorldSet> ExplicitWorldSet::Clone() const {
  return std::make_unique<ExplicitWorldSet>(*this);
}

double ExplicitWorldSet::Log10NumWorlds() const {
  return std::log10(static_cast<double>(worlds_.size()));
}

std::vector<std::string> ExplicitWorldSet::RelationNames() const {
  return worlds_.empty() ? std::vector<std::string>{}
                         : worlds_.front().db.RelationNames();
}

bool ExplicitWorldSet::HasRelation(const std::string& name) const {
  return !worlds_.empty() && worlds_.front().db.HasRelation(name);
}

Result<std::vector<World>> ExplicitWorldSet::MaterializeWorlds(
    size_t max_worlds, bool* truncated) const {
  if (truncated != nullptr) *truncated = worlds_.size() > max_worlds;
  if (worlds_.size() <= max_worlds) return worlds_;
  return std::vector<World>(worlds_.begin(), worlds_.begin() + max_worlds);
}

Result<std::vector<World>> ExplicitWorldSet::TopKWorlds(size_t k) const {
  std::vector<size_t> order(worlds_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return worlds_[a].probability > worlds_[b].probability;
  });
  std::vector<World> top;
  top.reserve(std::min(k, order.size()));
  for (size_t i = 0; i < order.size() && top.size() < k; ++i) {
    top.push_back(worlds_[order[i]]);
  }
  return top;
}

Result<World> ExplicitWorldSet::SampleWorld(std::mt19937* rng) const {
  if (worlds_.empty()) return Status::EmptyWorldSet("no worlds to sample");
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  double u = uniform(*rng);
  double cumulative = 0;
  for (const World& world : worlds_) {
    cumulative += world.probability;
    if (u <= cumulative) return world;
  }
  return worlds_.back();  // numeric slack
}

Status ExplicitWorldSet::CreateBaseTable(const std::string& name,
                                         const Table& prototype) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  // One shared instance for every world: the relation starts out
  // identical everywhere, so storing it is W handle bumps, not W copies.
  // The first world that mutates it clones its own copy (COW).
  auto shared = std::make_shared<Table>(prototype);
  for (World& world : worlds_) world.db.PutRelation(name, shared);
  return Status::OK();
}

Status ExplicitWorldSet::DropRelation(const std::string& name) {
  if (!HasRelation(name)) {
    return Status::NotFound("relation not found: " + name);
  }
  for (World& world : worlds_) {
    MAYBMS_RETURN_NOT_OK(world.db.DropRelation(name));
  }
  return Status::OK();
}

Status ExplicitWorldSet::ApplyDml(const sql::Statement& stmt,
                                  const Catalog& catalog) {
  // Possible-worlds update semantics (paper §2): the update must commit
  // in every world or in none. Snapshot/rollback commit protocol: each
  // world's post-statement database is computed against a copy-on-write
  // snapshot (O(#relations) handle bumps; only the statement's target
  // relation is rewritten, every untouched relation stays shared with the
  // live world) and recorded in a commit log. The log is swapped into
  // `worlds_` only after every world succeeded; any per-world failure
  // (e.g. a constraint violation) simply drops the log, leaving the set
  // untouched — the PR 1 atomicity guarantee without copying unchanged
  // relations. The statement is planned once (column resolution,
  // INSERT ... SELECT preparation, subquery analysis) against the first
  // world's schemas — identical in every world — and only executed per
  // world.
  std::optional<engine::PreparedDml> plan;
  std::vector<Database> commit_log;
  commit_log.reserve(worlds_.size());
  for (const World& world : worlds_) {
    if (!plan.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(plan,
                              engine::PreparedDml::Prepare(stmt, world.db,
                                                           &catalog));
    }
    Database snapshot = world.db;  // shares every table handle
    MAYBMS_RETURN_NOT_OK(plan->Execute(&snapshot));
    commit_log.push_back(std::move(snapshot));
  }
  for (size_t i = 0; i < worlds_.size(); ++i) {
    worlds_[i].db = std::move(commit_log[i]);
  }
  return Status::OK();
}

void ExplicitWorldSet::SetWorlds(std::vector<World> worlds) {
  double total = 0;
  for (const World& w : worlds) total += w.probability;
  if (total > 0) {
    for (World& w : worlds) w.probability /= total;
  }
  worlds_ = std::move(worlds);
}

Result<ExplicitWorldSet::PipelineOutput> ExplicitWorldSet::RunPipeline(
    std::vector<World> input, const sql::SelectStatement& stmt,
    const std::string& result_name, bool want_per_world_results) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));

  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);

  PipelineOutput out;

  // When a quantifier collapses the answer and no assert/grouping needs
  // per-world results later, stream each world's answer straight into the
  // combiner instead of storing it in the world — no per-world result
  // table outlives its own combination step.
  const bool stream_feed = stmt.quantifier != sql::WorldQuantifier::kNone &&
                           !stmt.group_worlds_by && !stmt.assert_condition;
  std::optional<QuantifierCombiner> stream_combiner;
  if (stream_feed) {
    MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner c,
                            QuantifierCombiner::Create(stmt.quantifier));
    stream_combiner.emplace(std::move(c));
  }

  // --- Step 1: per-world SQL core, with repair/choice world creation. ---
  // Statements are planned once against the first world's schemas (all
  // worlds share one schema catalog; see engine/prepared.h) and executed
  // per world; only scans, joins, and predicate evaluation repeat.
  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    MAYBMS_RETURN_NOT_OK(EnumerateRepairChoiceWorlds(
        input, stmt, *core, max_worlds_,
        [&](const World& world, double prob, Table result) -> Status {
          World derived(world.db, prob);
          if (stream_feed) {
            stream_combiner->Feed(prob, result);
          } else {
            derived.db.PutRelation(result_name, std::move(result));
          }
          out.worlds.push_back(std::move(derived));
          return Status::OK();
        }));
  } else {
    std::optional<engine::PreparedSelect> select_plan;
    for (World& world : input) {
      if (!select_plan.has_value()) {
        MAYBMS_ASSIGN_OR_RETURN(select_plan,
                                engine::PreparedSelect::Prepare(*core,
                                                                world.db));
      }
      MAYBMS_ASSIGN_OR_RETURN(Table result, select_plan->Execute(world.db));
      World derived(std::move(world.db), world.probability);
      if (stream_feed) {
        stream_combiner->Feed(derived.probability, result);
      } else {
        derived.db.PutRelation(result_name, std::move(result));
      }
      out.worlds.push_back(std::move(derived));
    }
  }

  // --- Step 2: assert — drop worlds, renormalize. ---
  if (stmt.assert_condition) {
    std::vector<World> surviving;
    double total = 0;
    // Subquery *analysis* of the assert condition is shared across worlds
    // (schema-level); subquery *results* are per world via a fresh
    // SubqueryCache per evaluation.
    engine::SubqueryPlanCache assert_plans;
    for (World& world : out.worlds) {
      engine::SubqueryCache cache(&assert_plans);
      engine::EvalContext ctx{&world.db, nullptr, nullptr, nullptr, nullptr,
                              &cache};
      MAYBMS_ASSIGN_OR_RETURN(
          Trivalent keep,
          engine::EvalPredicate(*stmt.assert_condition, ctx));
      if (keep == Trivalent::kTrue) {
        total += world.probability;
        surviving.push_back(std::move(world));
      }
    }
    if (surviving.empty()) {
      return Status::EmptyWorldSet("assert eliminated every world");
    }
    for (World& world : surviving) world.probability /= total;
    out.worlds = std::move(surviving);
  }

  // --- Step 3: group worlds by / possible / certain / conf. ---
  if (stmt.group_worlds_by) {
    if (engine::HasWorldOps(*stmt.group_worlds_by)) {
      return Status::Unsupported(
          "the GROUP WORLDS BY query must be a plain SQL query");
    }
    std::map<std::vector<Tuple>, std::vector<size_t>> groups;
    std::map<std::vector<Tuple>, Table> key_tables;
    std::optional<engine::PreparedSelect> group_plan;
    for (size_t i = 0; i < out.worlds.size(); ++i) {
      if (!group_plan.has_value()) {
        MAYBMS_ASSIGN_OR_RETURN(group_plan,
                                engine::PreparedSelect::Prepare(
                                    *stmt.group_worlds_by, out.worlds[i].db));
      }
      MAYBMS_ASSIGN_OR_RETURN(Table answer,
                              group_plan->Execute(out.worlds[i].db));
      std::vector<Tuple> key = GroupKeyRows(answer);
      key_tables.emplace(key, answer.SortedDistinct());
      groups[std::move(key)].push_back(i);
    }
    for (const auto& [key, members] : groups) {
      double group_prob = 0;
      for (size_t i : members) group_prob += out.worlds[i].probability;
      MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                              QuantifierCombiner::Create(stmt.quantifier));
      for (size_t i : members) {
        MAYBMS_ASSIGN_OR_RETURN(const Table* result,
                                out.worlds[i].db.GetRelation(result_name));
        combiner.Feed(
            group_prob > 0 ? out.worlds[i].probability / group_prob : 0,
            *result);
      }
      MAYBMS_ASSIGN_OR_RETURN(Table combined, combiner.Finish());
      // All member worlds hold the identical group result: store one
      // shared instance instead of one copy per world.
      auto shared = std::make_shared<Table>(combined);
      for (size_t i : members) {
        out.worlds[i].db.PutRelation(result_name, shared);
      }
      out.groups.push_back(SelectEvaluation::GroupResult{
          group_prob, key_tables.at(key), std::move(combined)});
    }
  } else if (stmt.quantifier != sql::WorldQuantifier::kNone) {
    Table combined;
    if (stream_feed) {
      // Step 1 already fed every world's answer; nothing was retained.
      MAYBMS_ASSIGN_OR_RETURN(combined, stream_combiner->Finish());
    } else {
      // Post-assert: feed each surviving world's answer and drop it
      // immediately so no per-world result outlives its combination.
      MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                              QuantifierCombiner::Create(stmt.quantifier));
      for (World& world : out.worlds) {
        MAYBMS_ASSIGN_OR_RETURN(const Table* result,
                                world.db.GetRelation(result_name));
        combiner.Feed(world.probability, *result);
        MAYBMS_RETURN_NOT_OK(world.db.DropRelation(result_name));
      }
      MAYBMS_ASSIGN_OR_RETURN(combined, combiner.Finish());
    }
    // The quantifier collapsed the answer to one certain relation that is
    // identical in every world: share a single instance across all of
    // them (W handle bumps, not W row copies).
    auto shared = std::make_shared<Table>(combined);
    for (World& world : out.worlds) {
      world.db.PutRelation(result_name, shared);
    }
    out.combined = std::move(combined);
  }

  // Per-world answers are only consumed by EvaluateSelect for plain
  // (quantifier-free) statements; quantifier results collapse to
  // `combined`/`groups` above and MaterializeSelect never reads them.
  if (want_per_world_results &&
      stmt.quantifier == sql::WorldQuantifier::kNone) {
    for (const World& world : out.worlds) {
      MAYBMS_ASSIGN_OR_RETURN(const Table* result,
                              world.db.GetRelation(result_name));
      out.per_world_results.emplace_back(world.probability, *result);
    }
  }
  return out;
}

Result<Table> ExplicitWorldSet::EvaluateQuantifierStreaming(
    const sql::SelectStatement& stmt) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);

  MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                          QuantifierCombiner::Create(stmt.quantifier));
  double surviving_prob = 0;
  size_t survivors = 0;
  // Assert-condition subquery analysis is shared across worlds; results
  // stay per world (fresh SubqueryCache per evaluation).
  engine::SubqueryPlanCache assert_plans;

  // The assert condition can only see the statement's own answer if it
  // literally names the internal "__result" relation; copying the world
  // database to expose it is reserved for that (pathological) case so
  // the common assert stays copy-free.
  bool assert_reads_result = false;
  if (stmt.assert_condition) {
    std::set<std::string> assert_refs;
    CollectReferencedRelations(*stmt.assert_condition, &assert_refs);
    assert_reads_result = assert_refs.count("__result") > 0;
  }

  // Folds one world's answer into the combiner, applying the assert
  // filter first. `result` dies here — nothing per-world is retained.
  auto feed = [&](double prob, Table result,
                  const Database& db) -> Status {
    if (stmt.assert_condition) {
      engine::SubqueryCache cache(&assert_plans);
      if (assert_reads_result) {
        Database extended = db;
        extended.PutRelation("__result", std::move(result));
        engine::EvalContext ctx{&extended, nullptr, nullptr, nullptr, nullptr,
                                &cache};
        MAYBMS_ASSIGN_OR_RETURN(
            Trivalent keep,
            engine::EvalPredicate(*stmt.assert_condition, ctx));
        if (keep != Trivalent::kTrue) return Status::OK();
        MAYBMS_ASSIGN_OR_RETURN(const Table* kept,
                                extended.GetRelation("__result"));
        combiner.Feed(prob, *kept);
      } else {
        engine::EvalContext ctx{&db, nullptr, nullptr, nullptr, nullptr,
                                &cache};
        MAYBMS_ASSIGN_OR_RETURN(
            Trivalent keep,
            engine::EvalPredicate(*stmt.assert_condition, ctx));
        if (keep != Trivalent::kTrue) return Status::OK();
        combiner.Feed(prob, result);
      }
    } else {
      combiner.Feed(prob, result);
    }
    surviving_prob += prob;
    ++survivors;
    return Status::OK();
  };

  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    MAYBMS_RETURN_NOT_OK(EnumerateRepairChoiceWorlds(
        worlds_, stmt, *core, max_worlds_,
        [&](const World& world, double prob, Table result) -> Status {
          return feed(prob, std::move(result), world.db);
        }));
  } else {
    std::optional<engine::PreparedSelect> select_plan;
    for (const World& world : worlds_) {
      if (!select_plan.has_value()) {
        MAYBMS_ASSIGN_OR_RETURN(
            select_plan, engine::PreparedSelect::Prepare(*core, world.db));
      }
      MAYBMS_ASSIGN_OR_RETURN(Table result, select_plan->Execute(world.db));
      MAYBMS_RETURN_NOT_OK(feed(world.probability, std::move(result),
                                world.db));
    }
  }

  if (stmt.assert_condition) {
    if (survivors == 0) {
      return Status::EmptyWorldSet("assert eliminated every world");
    }
    // Fed weights were pre-assert probabilities; renormalize over the
    // surviving mass, exactly as the materializing pipeline does.
    return combiner.Finish(surviving_prob);
  }
  return combiner.Finish();
}

Result<std::vector<SelectEvaluation::GroupResult>>
ExplicitWorldSet::EvaluateGroupedStreaming(
    const sql::SelectStatement& stmt) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));
  if (engine::HasWorldOps(*stmt.group_worlds_by)) {
    return Status::Unsupported(
        "the GROUP WORLDS BY query must be a plain SQL query");
  }
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);

  // The shared grouped accumulator (worlds/combiner.h): one combiner per
  // distinct group key, fed unnormalized (pre-assert) probabilities and
  // normalized per group at Finish — identical semantics on both engines.
  GroupedQuantifierCombiner grouped(stmt.quantifier);
  engine::SubqueryPlanCache assert_plans;
  std::optional<engine::PreparedSelect> group_plan;

  // Folds one world: assert filter, group key, feed — the per-world
  // answer dies here; nothing larger than the accumulators is retained.
  auto feed = [&](double prob, Table result, const Database& db) -> Status {
    if (stmt.assert_condition) {
      engine::SubqueryCache cache(&assert_plans);
      engine::EvalContext ctx{&db, nullptr, nullptr, nullptr, nullptr,
                              &cache};
      MAYBMS_ASSIGN_OR_RETURN(
          Trivalent keep, engine::EvalPredicate(*stmt.assert_condition, ctx));
      if (keep != Trivalent::kTrue) return Status::OK();
    }
    if (!group_plan.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(group_plan,
                              engine::PreparedSelect::Prepare(
                                  *stmt.group_worlds_by, db));
    }
    MAYBMS_ASSIGN_OR_RETURN(Table answer, group_plan->Execute(db));
    return grouped.Feed(prob, result, answer);
  };

  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    MAYBMS_RETURN_NOT_OK(EnumerateRepairChoiceWorlds(
        worlds_, stmt, *core, max_worlds_,
        [&](const World& world, double prob, Table result) -> Status {
          return feed(prob, std::move(result), world.db);
        }));
  } else {
    std::optional<engine::PreparedSelect> select_plan;
    for (const World& world : worlds_) {
      if (!select_plan.has_value()) {
        MAYBMS_ASSIGN_OR_RETURN(
            select_plan, engine::PreparedSelect::Prepare(*core, world.db));
      }
      MAYBMS_ASSIGN_OR_RETURN(Table result, select_plan->Execute(world.db));
      MAYBMS_RETURN_NOT_OK(feed(world.probability, std::move(result),
                                world.db));
    }
  }

  if (stmt.assert_condition && grouped.worlds_fed() == 0) {
    return Status::EmptyWorldSet("assert eliminated every world");
  }
  return grouped.Finish();
}

Result<SelectEvaluation> ExplicitWorldSet::EvaluateSelect(
    const sql::SelectStatement& stmt, size_t max_worlds) const {
  if (stmt.quantifier != sql::WorldQuantifier::kNone &&
      !stmt.group_worlds_by) {
    // possible/certain/conf collapse to one certain relation: stream
    // per-world answers into the combiner without copying any database.
    MAYBMS_ASSIGN_OR_RETURN(Table combined, EvaluateQuantifierStreaming(stmt));
    SelectEvaluation eval;
    eval.combined = std::move(combined);
    return eval;
  }
  if (stmt.quantifier != sql::WorldQuantifier::kNone && stmt.group_worlds_by &&
      !ReferencesInternalResult(stmt)) {
    // Grouped quantifier: per-group-key streaming combination; no
    // per-world answer outlives its own feed.
    MAYBMS_ASSIGN_OR_RETURN(std::vector<SelectEvaluation::GroupResult> groups,
                            EvaluateGroupedStreaming(stmt));
    SelectEvaluation eval;
    eval.groups = std::move(groups);
    return eval;
  }
  MAYBMS_ASSIGN_OR_RETURN(
      PipelineOutput out,
      RunPipeline(worlds_, stmt, "__result", /*want_per_world_results=*/true));
  SelectEvaluation eval;
  eval.combined = std::move(out.combined);
  eval.groups = std::move(out.groups);
  eval.truncated = out.per_world_results.size() > max_worlds;
  if (eval.truncated) out.per_world_results.resize(max_worlds);
  eval.per_world = std::move(out.per_world_results);
  return eval;
}

Status ExplicitWorldSet::MaterializeSelect(const std::string& name,
                                           const sql::SelectStatement& stmt) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  // Snapshot/rollback: the pipeline runs against copy-on-write snapshots
  // of the worlds (the by-value `input` copy is O(worlds × relations)
  // handle bumps; every untouched relation stays shared with the live
  // set), so a mid-pipeline error (e.g. `choice of` over an empty
  // relation, or the world cap) leaves the world-set untouched, matching
  // the decomposed engine's compute-then-commit behavior. Committing
  // swaps the snapshot vector in wholesale.
  MAYBMS_ASSIGN_OR_RETURN(
      PipelineOutput out,
      RunPipeline(worlds_, stmt, name, /*want_per_world_results=*/false));
  worlds_ = std::move(out.worlds);
  return Status::OK();
}

}  // namespace maybms::worlds
