#include "worlds/sampling.h"

#include <optional>
#include <random>

#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "engine/prepared.h"
#include "worlds/combiner.h"
#include "worlds/explicit_world_set.h"

namespace maybms::worlds {

Result<Table> EstimateConfidence(const WorldSet& world_set,
                                 const sql::SelectStatement& stmt,
                                 size_t samples, uint32_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  if (stmt.repair.has_value() || stmt.choice.has_value() ||
      stmt.assert_condition || stmt.group_worlds_by) {
    return Status::Unsupported(
        "approximate confidence requires a plain SQL query");
  }
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);

  std::mt19937 rng(seed);
  // The weighted-sample variant of the streaming combiner: every draw is
  // a world of weight 1; Finish(samples) turns accumulated hit counts
  // into confidence estimates. Each sampled answer dies right after it is
  // fed — only the accumulator's distinct tuples stay resident.
  MAYBMS_ASSIGN_OR_RETURN(
      QuantifierCombiner combiner,
      QuantifierCombiner::Create(sql::WorldQuantifier::kConf));
  // Sampled worlds share one schema catalog: plan the core once against
  // the first draw, execute per sample.
  std::optional<engine::PreparedSelect> plan;
  for (size_t s = 0; s < samples; ++s) {
    MAYBMS_ASSIGN_OR_RETURN(World world, world_set.SampleWorld(&rng));
    if (!plan.has_value()) {
      MAYBMS_ASSIGN_OR_RETURN(plan,
                              engine::PreparedSelect::Prepare(*core, world.db));
    }
    MAYBMS_ASSIGN_OR_RETURN(Table answer, plan->Execute(world.db));
    combiner.Feed(1.0, answer);
  }
  return combiner.Finish(static_cast<double>(samples));
}

Result<double> EstimateConditionProbability(const WorldSet& world_set,
                                            const sql::Expr& condition,
                                            size_t samples, uint32_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  std::mt19937 rng(seed);
  size_t hits = 0;
  for (size_t s = 0; s < samples; ++s) {
    MAYBMS_ASSIGN_OR_RETURN(World world, world_set.SampleWorld(&rng));
    engine::EvalContext ctx{&world.db, nullptr, nullptr, nullptr, nullptr,
                            nullptr};
    MAYBMS_ASSIGN_OR_RETURN(Trivalent holds,
                            engine::EvalPredicate(condition, ctx));
    if (holds == Trivalent::kTrue) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace maybms::worlds
