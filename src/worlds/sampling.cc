#include "worlds/sampling.h"

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "engine/prepared.h"
#include "worlds/combiner.h"
#include "worlds/explicit_world_set.h"

namespace maybms::worlds {

namespace {

/// Per-sample generator: the stream for sample `s` is a pure function of
/// (seed, s), so draws are identical whether samples run sequentially or
/// scattered across threads. (A single shared generator would tie each
/// draw to the dynamic schedule.) SplitMix64 construction is O(1) — one
/// 64-bit state word — so per-sample seeding costs nothing; an mt19937's
/// 624-word init here dominated cheap samples (2-3x on approx_conf).
base::SplitMix64 RngForSample(uint32_t seed, size_t s) {
  return base::SplitMix64((static_cast<uint64_t>(seed) << 32) ^
                          static_cast<uint64_t>(s));
}

}  // namespace

Result<Table> EstimateConfidence(const WorldSet& world_set,
                                 const sql::SelectStatement& stmt,
                                 size_t samples, uint32_t seed,
                                 size_t threads) {
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  if (stmt.repair.has_value() || stmt.choice.has_value() ||
      stmt.assert_condition || stmt.group_worlds_by) {
    return Status::Unsupported(
        "approximate confidence requires a plain SQL query");
  }
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);

  // The weighted-sample variant of the streaming combiner: every draw is
  // a world of weight 1; Finish(samples) turns accumulated hit counts
  // into confidence estimates. Each sampled answer dies right after it is
  // fed — only the accumulators' distinct tuples stay resident.
  //
  // Combiners are per SLOT here, not per chunk: every fed weight is
  // exactly 1.0, so each accumulator is a sum of ones — exact integer
  // arithmetic in doubles, independent of grouping and order — and
  // Finish emits rows in sorted tuple order. The result is therefore
  // byte-identical at every thread count without per-chunk combiners,
  // whose cold hash maps re-materialize every distinct answer tuple once
  // per chunk (a measured ~25% overhead at high sample counts). One slot
  // (threads=1) degenerates to the plain sequential feed.
  MAYBMS_ASSIGN_OR_RETURN(
      QuantifierCombiner combiner,
      QuantifierCombiner::Create(sql::WorldQuantifier::kConf));
  base::ThreadPool& pool = base::ThreadPool::Shared();
  // Sampled worlds share one schema catalog: plan the core once per slot
  // against that slot's first draw, execute per sample.
  std::vector<std::optional<engine::PreparedSelect>> plans(
      pool.Slots(threads));
  std::vector<std::optional<QuantifierCombiner>> slot_combiners(
      pool.Slots(threads));
  MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
      samples, threads, [&](size_t s, size_t slot, size_t /*chunk*/)
                            -> Status {
        base::SplitMix64 rng = RngForSample(seed, s);
        MAYBMS_ASSIGN_OR_RETURN(World world, world_set.SampleWorld(&rng));
        if (!plans[slot].has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(
              plans[slot], engine::PreparedSelect::Prepare(*core, world.db));
        }
        MAYBMS_ASSIGN_OR_RETURN(Table answer, plans[slot]->Execute(world.db));
        if (!slot_combiners[slot].has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(
              slot_combiners[slot],
              QuantifierCombiner::Create(sql::WorldQuantifier::kConf));
        }
        slot_combiners[slot]->Feed(1.0, answer);
        return Status::OK();
      }));
  for (auto& c : slot_combiners) {
    if (c.has_value()) combiner.Merge(std::move(*c));
  }
  return combiner.Finish(static_cast<double>(samples));
}

Result<double> EstimateConditionProbability(const WorldSet& world_set,
                                            const sql::Expr& condition,
                                            size_t samples, uint32_t seed,
                                            size_t threads) {
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  base::ThreadPool& pool = base::ThreadPool::Shared();
  std::vector<size_t> chunk_hits(base::ThreadPool::NumChunks(samples), 0);
  MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
      samples, threads, [&](size_t s, size_t, size_t chunk) -> Status {
        base::SplitMix64 rng = RngForSample(seed, s);
        MAYBMS_ASSIGN_OR_RETURN(World world, world_set.SampleWorld(&rng));
        engine::EvalContext ctx{&world.db, nullptr, nullptr, nullptr, nullptr,
                                nullptr};
        MAYBMS_ASSIGN_OR_RETURN(Trivalent holds,
                                engine::EvalPredicate(condition, ctx));
        if (holds == Trivalent::kTrue) ++chunk_hits[chunk];
        return Status::OK();
      }));
  size_t hits = 0;
  for (size_t h : chunk_hits) hits += h;
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace maybms::worlds
