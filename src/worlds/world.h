#ifndef MAYBMS_WORLDS_WORLD_H_
#define MAYBMS_WORLDS_WORLD_H_

#include <cstddef>
#include <string>

#include "storage/catalog.h"

namespace maybms::worlds {

/// One possible world: a complete database instance plus its probability.
///
/// World-sets are always probabilistic in this implementation: operations
/// that create worlds without an explicit `weight` clause assign uniform
/// probabilities (the paper's non-probabilistic world-sets, e.g. Fig. 3,
/// are the uniform special case).
struct World {
  Database db;
  double probability = 1.0;

  World() = default;
  World(Database db_in, double probability_in)
      : db(std::move(db_in)), probability(probability_in) {}
};

/// Labels worlds the way the paper's figures do: A, B, ..., Z, AA, AB, ...
std::string WorldLabel(size_t index);

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_WORLD_H_
