#include "worlds/world_set.h"

#include <algorithm>
#include <map>

#include "base/string_util.h"
#include "engine/executor.h"

namespace maybms::worlds {

Status ValidateWorldOps(const sql::SelectStatement& stmt) {
  if ((stmt.repair.has_value() || stmt.choice.has_value()) &&
      stmt.union_next) {
    return Status::Unsupported(
        "repair by key / choice of cannot be combined with UNION");
  }
  if (stmt.repair.has_value() && stmt.choice.has_value()) {
    return Status::Unsupported(
        "repair by key and choice of cannot be combined in one statement");
  }
  if (stmt.union_next && engine::HasWorldOps(*stmt.union_next)) {
    return Status::Unsupported(
        "world-set operations are not allowed in UNION branches");
  }
  return Status::OK();
}

namespace {

void CollectFromExpr(const sql::Expr& expr, std::set<std::string>* out);

void CollectFromItems(const std::vector<sql::SelectItem>& items,
                      std::set<std::string>* out) {
  for (const sql::SelectItem& item : items) {
    if (item.expr) CollectFromExpr(*item.expr, out);
  }
}

void CollectFromExpr(const sql::Expr& expr, std::set<std::string>* out) {
  switch (expr.kind) {
    case sql::ExprKind::kLiteral:
    case sql::ExprKind::kColumnRef:
      return;
    case sql::ExprKind::kUnary:
      CollectFromExpr(*static_cast<const sql::UnaryExpr&>(expr).operand, out);
      return;
    case sql::ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      CollectFromExpr(*b.left, out);
      CollectFromExpr(*b.right, out);
      return;
    }
    case sql::ExprKind::kFunctionCall: {
      const auto& f = static_cast<const sql::FunctionCallExpr&>(expr);
      for (const auto& a : f.args) CollectFromExpr(*a, out);
      return;
    }
    case sql::ExprKind::kIsNull:
      CollectFromExpr(*static_cast<const sql::IsNullExpr&>(expr).operand, out);
      return;
    case sql::ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      CollectFromExpr(*in.operand, out);
      for (const auto& i : in.items) CollectFromExpr(*i, out);
      return;
    }
    case sql::ExprKind::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(expr);
      CollectFromExpr(*in.operand, out);
      CollectReferencedRelations(*in.subquery, out);
      return;
    }
    case sql::ExprKind::kExists:
      CollectReferencedRelations(
          *static_cast<const sql::ExistsExpr&>(expr).subquery, out);
      return;
    case sql::ExprKind::kScalarSubquery:
      CollectReferencedRelations(
          *static_cast<const sql::ScalarSubqueryExpr&>(expr).subquery, out);
      return;
    case sql::ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(expr);
      CollectFromExpr(*b.operand, out);
      CollectFromExpr(*b.low, out);
      CollectFromExpr(*b.high, out);
      return;
    }
    case sql::ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& w : c.whens) {
        CollectFromExpr(*w.condition, out);
        CollectFromExpr(*w.result, out);
      }
      if (c.else_result) CollectFromExpr(*c.else_result, out);
      return;
    }
    case sql::ExprKind::kCast:
      CollectFromExpr(*static_cast<const sql::CastExpr&>(expr).operand, out);
      return;
  }
}

}  // namespace

void CollectReferencedRelations(const sql::Expr& expr,
                                std::set<std::string>* out) {
  CollectFromExpr(expr, out);
}

void CollectReferencedRelations(const sql::SelectStatement& stmt,
                                std::set<std::string>* out) {
  for (const sql::TableRef& ref : stmt.from) {
    out->insert(AsciiToLower(ref.table_name));
  }
  for (const sql::JoinClause& join : stmt.joins) {
    out->insert(AsciiToLower(join.table.table_name));
    if (join.on) CollectFromExpr(*join.on, out);
  }
  CollectFromItems(stmt.items, out);
  if (stmt.where) CollectFromExpr(*stmt.where, out);
  for (const auto& g : stmt.group_by) CollectFromExpr(*g, out);
  if (stmt.having) CollectFromExpr(*stmt.having, out);
  for (const auto& o : stmt.order_by) CollectFromExpr(*o.expr, out);
  if (stmt.assert_condition) CollectFromExpr(*stmt.assert_condition, out);
  if (stmt.group_worlds_by) CollectReferencedRelations(*stmt.group_worlds_by, out);
  if (stmt.union_next) CollectReferencedRelations(*stmt.union_next, out);
}

bool ReferencesInternalResult(const sql::SelectStatement& stmt) {
  std::set<std::string> refs;
  CollectReferencedRelations(stmt, &refs);
  return refs.count("__result") > 0;
}

Table CombinePossible(const std::vector<std::pair<double, Table>>& entries) {
  Table out;
  bool first = true;
  for (const auto& [prob, table] : entries) {
    (void)prob;
    if (first) {
      out = table;
      first = false;
    } else {
      for (const Tuple& row : table.rows()) out.AppendUnchecked(row);
    }
  }
  out.DeduplicateRows();
  return out;
}

Table CombineCertain(const std::vector<std::pair<double, Table>>& entries) {
  if (entries.empty()) return Table();
  Table acc = entries[0].second.SortedDistinct();
  for (size_t i = 1; i < entries.size(); ++i) {
    Table next(acc.schema());
    for (const Tuple& row : acc.rows()) {
      if (entries[i].second.ContainsTuple(row)) next.AppendUnchecked(row);
    }
    acc = std::move(next);
  }
  return acc;
}

Table CombineConf(const std::vector<std::pair<double, Table>>& entries) {
  // 0-column answers: confidence that the answer is non-empty.
  bool zero_ary = true;
  for (const auto& [prob, table] : entries) {
    (void)prob;
    if (table.schema().num_columns() > 0) {
      zero_ary = false;
      break;
    }
  }
  if (zero_ary) {
    double conf = 0;
    for (const auto& [prob, table] : entries) {
      if (!table.empty()) conf += prob;
    }
    Schema schema;
    schema.AddColumn(Column("conf", DataType::kReal));
    Table out(std::move(schema));
    out.AppendUnchecked(Tuple({Value::Real(conf)}));
    return out;
  }

  // Distinct tuples across all worlds, each with the total probability of
  // the worlds whose answer contains it.
  std::map<Tuple, double> conf;
  Schema value_schema;
  for (const auto& [prob, table] : entries) {
    if (value_schema.num_columns() == 0 && table.schema().num_columns() > 0) {
      value_schema = table.schema();
    }
    Table distinct = table.SortedDistinct();
    for (const Tuple& row : distinct.rows()) conf[row] += prob;
  }
  Schema schema = value_schema;
  schema.AddColumn(Column("conf", DataType::kReal));
  Table out(std::move(schema));
  for (const auto& [row, p] : conf) {
    Tuple extended = row;
    extended.Append(Value::Real(p));
    out.AppendUnchecked(std::move(extended));
  }
  return out;
}

Table CanonicalizeGroupKey(const Table& table) { return table.SortedDistinct(); }

}  // namespace maybms::worlds
