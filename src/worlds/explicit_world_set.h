#ifndef MAYBMS_WORLDS_EXPLICIT_WORLD_SET_H_
#define MAYBMS_WORLDS_EXPLICIT_WORLD_SET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "worlds/world_set.h"

namespace maybms::worlds {

/// The textbook possible-worlds representation: every world is a fully
/// materialized database. Doubles as the semantic reference implementation
/// (differential tests) and the benchmark baseline against the
/// decomposition-based engine.
///
/// World creation (`repair by key`, `choice of`) multiplies the number of
/// materialized databases, so the total world count is capped; exceeding
/// the cap is an error directing users to the decomposed engine.
///
/// Per-world work (the pipeline core, streaming combination, DML
/// snapshots) runs on the shared chunked thread pool (base/thread_pool.h).
/// `threads` caps the parallelism (0 = MAYBMS_THREADS / hardware);
/// results and errors are byte-identical at every thread count.
class ExplicitWorldSet : public WorldSet {
 public:
  static constexpr size_t kDefaultMaxWorlds = 1 << 20;

  explicit ExplicitWorldSet(size_t max_worlds = kDefaultMaxWorlds,
                            size_t threads = 0);

  std::unique_ptr<WorldSet> Clone() const override;
  std::string EngineName() const override { return "explicit"; }

  uint64_t NumWorlds() const override { return worlds_.size(); }
  double Log10NumWorlds() const override;
  std::vector<std::string> RelationNames() const override;
  bool HasRelation(const std::string& name) const override;
  Result<std::vector<World>> MaterializeWorlds(
      size_t max_worlds, bool* truncated = nullptr) const override;
  Result<std::vector<World>> TopKWorlds(size_t k) const override;
  Result<World> SampleWorld(base::SplitMix64* rng) const override;

  Status CreateBaseTable(const std::string& name,
                         const Table& prototype) override;
  Status DropRelation(const std::string& name) override;
  Status ApplyDml(const sql::Statement& stmt, const Catalog& catalog) override;

  Result<SelectEvaluation> EvaluateSelect(const sql::SelectStatement& stmt,
                                          size_t max_worlds) const override;
  Status MaterializeSelect(const std::string& name,
                           const sql::SelectStatement& stmt) override;

  Result<storage::DurableSnapshot> ToSnapshot() const override;
  Status FromSnapshot(const storage::DurableSnapshot& snapshot) override;

  /// Direct access for tests and the formatter.
  const std::vector<World>& worlds() const { return worlds_; }

  /// Replaces the worlds wholesale (test setup helper). Probabilities are
  /// normalized to sum to one.
  void SetWorlds(std::vector<World> worlds);

 private:
  struct PipelineOutput {
    std::vector<World> worlds;  // result stored under the pipeline name
    std::vector<std::pair<double, Table>> per_world_results;
    std::optional<Table> combined;
    std::vector<SelectEvaluation::GroupResult> groups;
  };

  /// Runs the full I-SQL select pipeline over `input`:
  /// SQL core (+ repair/choice world creation) -> assert -> group worlds
  /// by / possible / certain / conf. The per-world result relation is
  /// stored under `result_name` in the returned worlds.
  /// `want_per_world_results` controls whether the (probability, answer)
  /// copies for quantifier-free statements are collected — EvaluateSelect
  /// needs them, MaterializeSelect does not.
  Result<PipelineOutput> RunPipeline(std::vector<World> input,
                                     const sql::SelectStatement& stmt,
                                     const std::string& result_name,
                                     bool want_per_world_results) const;

  /// Streaming evaluation of a possible/certain/conf statement without
  /// `group worlds by`: per-world answers are folded into a
  /// QuantifierCombiner (worlds/combiner.h) the moment they are produced
  /// and discarded immediately — no retained per-world result tables and
  /// no database copies (sole exception: an assert condition that
  /// literally names the internal "__result" relation forces a per-world
  /// copy to expose it). Read-only; used by EvaluateSelect.
  Result<Table> EvaluateQuantifierStreaming(
      const sql::SelectStatement& stmt) const;

  /// Streaming evaluation of a grouped quantifier statement
  /// (`select possible/certain/conf ... group worlds by (q)`): one pass
  /// over the (derived) worlds keeping a per-group-key QuantifierCombiner
  /// fed with unnormalized world probabilities — Finish(group mass)
  /// normalizes within each group — instead of materializing every
  /// per-world answer before grouping. Read-only; used by EvaluateSelect.
  /// Callers fall back to the materializing pipeline when the assert or
  /// grouping query references the internal "__result" relation (only
  /// there can they observe the per-world answer).
  Result<std::vector<SelectEvaluation::GroupResult>> EvaluateGroupedStreaming(
      const sql::SelectStatement& stmt) const;

  std::vector<World> worlds_;
  size_t max_worlds_;
  size_t threads_;  // per-call parallelism cap; 0 = default
};

/// Returns a copy of `stmt` with all world-set operations removed, leaving
/// the per-world SQL core (select list, from, where, grouping, ordering,
/// union). Shared by both world-set implementations.
std::unique_ptr<sql::SelectStatement> StripWorldOps(
    const sql::SelectStatement& stmt);

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_EXPLICIT_WORLD_SET_H_
