#ifndef MAYBMS_WORLDS_COMBINER_H_
#define MAYBMS_WORLDS_COMBINER_H_

// Streaming world-combination for possible / certain / conf.
//
// The set-based combinators in world_set.h (CombinePossible/CombineCertain/
// CombineConf) take the full vector of (probability, answer table) pairs —
// which forces every per-world answer to stay materialized until the last
// world has been evaluated, and costs O(W log W) comparisons plus one
// Table allocation per world. The paper's world-set algebra only ever
// needs tuple-level accumulation: a tuple's confidence is the sum of the
// probabilities of the worlds whose answer contains it, a tuple is certain
// iff every world's answer contains it, possible iff some world's does.
//
// QuantifierCombiner exploits that: it is fed one world at a time and
// maintains a single hash map from answer tuple to accumulated state, so
// each per-world answer can be discarded the moment it has been fed.
// Total cost is O(total answer tuples) expected plus one O(D log D) sort
// of the D distinct output tuples at the end.
//
// Tuple identity follows the rules documented in world_set.h: tuples hash
// and compare under Value's total order (Tuple::Hash / Tuple::Compare),
// where NULL is a plain value (two NULL answer fields are identical for
// world-combination purposes) and numerics are type-tagged consistently
// (Integer(1) and Real(1.0) coincide, exactly as in the set-based
// combinators). Output order is deterministic: rows are emitted sorted by
// the same total order the set-based combinators produce.
//
// Oracle hook: setting MAYBMS_COMBINER_ORACLE=1 in the environment makes
// every combiner retain its fed entries and delegate to the set-based
// functions at Finish() — the retained implementations stay alive as a
// differential oracle (tests/combiner_property_test.cc compares the two
// on randomized inputs, and the hook lets the whole engine run on the
// oracle path end to end).

#include <cstddef>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "sql/ast.h"
#include "storage/table.h"
#include "types/tuple.h"
#include "worlds/world_set.h"

namespace maybms::worlds {

/// Streaming accumulator for one possible/certain/conf combination.
///
/// Usage:
///   MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner c,
///                           QuantifierCombiner::Create(quantifier));
///   for (world : worlds) c.Feed(world.probability, result_of(world));
///   MAYBMS_ASSIGN_OR_RETURN(Table combined, c.Finish(total_probability));
///
/// Feed weights may be unnormalized (e.g. pre-assert probabilities or
/// Monte-Carlo sample counts); Finish(normalizer) divides accumulated
/// confidences by `normalizer`. Pass 1.0 when the fed weights already sum
/// to one. possible/certain ignore the weights entirely.
class QuantifierCombiner {
 public:
  /// Rejects WorldQuantifier::kNone with the same error the set-based
  /// dispatch produced.
  static Result<QuantifierCombiner> Create(sql::WorldQuantifier quantifier);

  QuantifierCombiner(QuantifierCombiner&&) = default;
  QuantifierCombiner& operator=(QuantifierCombiner&&) = default;

  /// Folds one world's answer into the accumulator. `table` may be
  /// destroyed immediately after the call. Duplicate rows within one
  /// world's answer count once (set semantics across worlds).
  void Feed(double probability, const Table& table);

  /// Number of worlds fed so far.
  size_t worlds_fed() const { return worlds_fed_; }

  /// Absorbs `other` (a combiner for the SAME quantifier) as if its
  /// worlds had been fed to this combiner immediately after this
  /// combiner's own worlds, in `other`'s feed order. This is the parallel
  /// merge: per-chunk combiners are merged in chunk-index order, which
  /// keeps every accumulation order — and therefore every output byte —
  /// independent of the thread count (see base/thread_pool.h).
  /// Consumes `other`.
  void Merge(QuantifierCombiner&& other);

  /// Emits the combined relation, sorted by tuple total order (identical
  /// to the set-based combinators' output). Consumes the combiner.
  /// A conf combination with `normalizer` <= 0 (zero total surviving
  /// mass) is an error, never NaN confidences.
  Result<Table> Finish(double normalizer = 1.0);

  /// True when MAYBMS_COMBINER_ORACLE=1: combiners retain their input and
  /// delegate to the set-based functions (differential/test mode).
  static bool UsingSetBasedOracle();

 private:
  explicit QuantifierCombiner(sql::WorldQuantifier quantifier);

  struct Accum {
    double conf = 0;          // conf: accumulated probability mass
    size_t worlds_seen = 0;   // certain: worlds whose answer contains it
    size_t last_world = 0;    // 1-based ordinal of the last feeding world
  };

  sql::WorldQuantifier quantifier_;
  size_t worlds_fed_ = 0;
  std::unordered_map<Tuple, Accum, TupleHash> acc_;
  Schema value_schema_;        // first fed schema with > 0 columns
  bool saw_schema_ = false;    // any table fed (possible/certain schema)
  Schema first_schema_;        // schema of the very first fed table
  double nonempty_prob_ = 0;   // conf, 0-column answers: P(non-empty)

  // Oracle mode: retained input, combined via world_set.h functions.
  bool use_oracle_ = false;
  std::vector<std::pair<double, Table>> retained_;
};

/// Streaming accumulator for `group worlds by`: one QuantifierCombiner
/// per distinct (canonicalized) group key, fed unnormalized world
/// probabilities; Finish() normalizes within each group and emits groups
/// in the deterministic total order of their canonical key rows. Shared
/// by both engines' streaming grouped tails (ExplicitWorldSet /
/// DecomposedWorldSet::EvaluateGroupedStreaming) so normalization and
/// emission order cannot drift between them.
class GroupedQuantifierCombiner {
 public:
  /// kNone is rejected at the first Feed, with the same error the
  /// per-group QuantifierCombiner::Create produces.
  explicit GroupedQuantifierCombiner(sql::WorldQuantifier quantifier);

  /// Folds one world: `group_key_answer` is the raw grouping-query
  /// answer (canonicalized here via CanonicalizeGroupKey), `answer` the
  /// world's statement answer. Both may be destroyed after the call.
  /// `probability` may be unnormalized (e.g. pre-assert mass).
  Status Feed(double probability, const Table& answer,
              const Table& group_key_answer);

  /// Worlds fed so far. Callers apply assert filtering *before* Feed, so
  /// this doubles as the survivor count.
  size_t worlds_fed() const { return worlds_fed_; }

  /// Absorbs `other` (same quantifier) as if its worlds had been fed
  /// right after this combiner's own, per group key — the grouped
  /// counterpart of QuantifierCombiner::Merge, with the same chunk-order
  /// determinism contract. Consumes `other`.
  Status Merge(GroupedQuantifierCombiner&& other);

  /// One GroupResult per distinct key: probability = group mass / total
  /// fed mass, relation combined under the quantifier with weights
  /// normalized within the group. Consumes the combiner.
  Result<std::vector<SelectEvaluation::GroupResult>> Finish();

 private:
  struct GroupAccum {
    double mass = 0;
    Table key_table;
    std::optional<QuantifierCombiner> combiner;
  };

  sql::WorldQuantifier quantifier_;
  size_t worlds_fed_ = 0;
  double total_mass_ = 0;
  std::map<std::vector<Tuple>, GroupAccum> groups_;
};

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_COMBINER_H_
