#include "worlds/partition.h"

#include <map>

namespace maybms::worlds {

namespace {

/// Reads the weight of a row: positive number required (paper Ex. 2.4:
/// "this makes sense, of course, if all D-values are numbers greater than
/// zero").
Result<double> RowWeight(const Table& source, size_t row,
                         const std::optional<size_t>& weight_column) {
  if (!weight_column.has_value()) return 1.0;
  const Value& v = source.row(row).value(*weight_column);
  if (v.is_null() || !v.IsNumeric()) {
    return Status::InvalidArgument(
        "weight column must hold numeric non-NULL values, found " +
        v.ToString());
  }
  double w = v.NumericValue();
  if (w <= 0) {
    return Status::InvalidArgument("weights must be positive, found " +
                                   v.ToString());
  }
  return w;
}

}  // namespace

Result<std::vector<size_t>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    MAYBMS_ASSIGN_OR_RETURN(size_t idx, schema.FindColumn(name));
    indices.push_back(idx);
  }
  return indices;
}

Result<std::vector<PartitionBlock>> RepairPartition(
    const Table& source, const sql::RepairClause& clause) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<size_t> key_cols,
                          ResolveColumns(source.schema(), clause.key_columns));
  std::optional<size_t> weight_col;
  if (!clause.weight_column.empty()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                            source.schema().FindColumn(clause.weight_column));
    weight_col = idx;
  }

  // Group rows by key value (deterministic order via Tuple's total order).
  std::map<Tuple, std::vector<size_t>> groups;
  for (size_t i = 0; i < source.num_rows(); ++i) {
    groups[source.row(i).Project(key_cols)].push_back(i);
  }

  std::vector<PartitionBlock> blocks;
  blocks.reserve(groups.size());
  for (const auto& [key, rows] : groups) {
    PartitionBlock block;
    double total = 0;
    std::vector<double> weights;
    weights.reserve(rows.size());
    for (size_t row : rows) {
      MAYBMS_ASSIGN_OR_RETURN(double w, RowWeight(source, row, weight_col));
      weights.push_back(w);
      total += w;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      block.choices.push_back(WeightedChoice{{rows[i]}, weights[i] / total});
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

Result<std::vector<PartitionBlock>> ChoicePartition(
    const Table& source, const sql::ChoiceClause& clause) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                          ResolveColumns(source.schema(), clause.columns));
  std::optional<size_t> weight_col;
  if (!clause.weight_column.empty()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                            source.schema().FindColumn(clause.weight_column));
    weight_col = idx;
  }

  std::map<Tuple, std::vector<size_t>> partitions;
  for (size_t i = 0; i < source.num_rows(); ++i) {
    partitions[source.row(i).Project(cols)].push_back(i);
  }
  if (partitions.empty()) {
    return Status::EmptyWorldSet(
        "choice of over an empty relation creates no worlds");
  }

  PartitionBlock block;
  double total = 0;
  std::vector<double> weights;
  for (const auto& [key, rows] : partitions) {
    double w = 0;
    if (weight_col.has_value()) {
      for (size_t row : rows) {
        MAYBMS_ASSIGN_OR_RETURN(double rw, RowWeight(source, row, weight_col));
        w += rw;
      }
    } else {
      w = 1;  // uniform over partitions
    }
    weights.push_back(w);
    total += w;
  }
  size_t idx = 0;
  for (const auto& [key, rows] : partitions) {
    block.choices.push_back(WeightedChoice{rows, weights[idx] / total});
    ++idx;
  }
  return {std::vector<PartitionBlock>{std::move(block)}};
}

}  // namespace maybms::worlds
