#ifndef MAYBMS_WORLDS_WORLD_SET_H_
#define MAYBMS_WORLDS_WORLD_SET_H_

// The world-set abstraction: a set of possible worlds over one shared
// relation catalog, with the I-SQL evaluation pipeline (per-world SQL
// core → assert → group worlds by / possible / certain / conf).
//
// Ownership and invariants:
//  * Every world of a WorldSet shares ONE schema catalog: relation names
//    and column schemas are identical across worlds; only relation
//    contents differ. CreateBaseTable/DropRelation/DML keep this true.
//    The prepared-statement layer (engine/prepared.h) depends on it —
//    statements are planned once against any single world's schemas and
//    executed in all of them; plans never capture world data.
//  * World probabilities are kept normalized (they sum to 1); `assert`
//    renormalizes after dropping worlds and eliminating every world is
//    an error that leaves the set untouched.
//  * SELECT evaluation is const: plain queries never modify the set
//    (per the paper); only MaterializeSelect/ApplyDml/CreateBaseTable/
//    DropRelation mutate, and each is all-or-nothing across worlds.
//  * Relation instances are copy-on-write shared across worlds
//    (storage/catalog.h): a Table is IMMUTABLE once shared — worlds,
//    snapshots, and derived worlds hold handles to the same instance, and
//    every writer either swaps in a new instance (Database::PutRelation)
//    or mutates through Database::MutableRelation, which clones first iff
//    the instance is shared. All-or-nothing mutation is implemented as a
//    snapshot/rollback commit: compute each world's post-statement tables
//    against copy-on-write snapshots, swap handles into the live set only
//    after every world succeeded.
//
// Trivalent logic / NULL keys: per-world evaluation uses standard SQL
// three-valued logic (engine/expr_eval.h); the cross-world combinators
// (CombinePossible/CombineCertain/CombineConf) compare answer *tuples*
// under the total order of Value, where NULL is a plain value — two NULL
// answer fields compare equal for world-combination purposes even though
// NULL = NULL is UNKNOWN inside a query.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/rng.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "worlds/world.h"

namespace maybms::worlds {

/// Result of evaluating an I-SQL SELECT against a world-set.
///
/// Exactly which fields are populated depends on the query:
///  * plain SQL core (possibly after repair/choice/assert): `per_world`
///    holds one (probability, result table) entry per (derived) world;
///  * `possible` / `certain` / `conf`: `combined` holds the single certain
///    answer relation (conf results carry a trailing `conf` column);
///  * `group worlds by`: `groups` holds one entry per world group.
struct SelectEvaluation {
  std::vector<std::pair<double, Table>> per_world;
  bool truncated = false;  // per_world enumeration hit the cap

  std::optional<Table> combined;

  struct GroupResult {
    double probability = 0;  // total probability mass of the group
    Table key;               // the grouping query's answer for this group
    Table table;             // the possible/certain result within the group
  };
  std::vector<GroupResult> groups;
};

/// A set of possible worlds over a shared set of relation names, with an
/// I-SQL evaluation interface. Two implementations exist:
///
///  * ExplicitWorldSet — one materialized database per world (the textbook
///    semantics; baseline);
///  * DecomposedWorldSet — MayBMS-style world-set decomposition: a product
///    of independent components over a certain core.
///
/// All statements handed to a WorldSet must reference base relations only
/// (the session layer expands views beforehand).
class WorldSet {
 public:
  virtual ~WorldSet() = default;

  virtual std::unique_ptr<WorldSet> Clone() const = 0;

  /// Name of the representation ("explicit" / "decomposed").
  virtual std::string EngineName() const = 0;

  // ---- Introspection ----

  /// Number of worlds, saturating at uint64 max.
  virtual uint64_t NumWorlds() const = 0;

  /// log10 of the number of worlds (finite even when NumWorlds saturates).
  virtual double Log10NumWorlds() const = 0;

  virtual std::vector<std::string> RelationNames() const = 0;
  virtual bool HasRelation(const std::string& name) const = 0;

  /// Materializes up to `max_worlds` worlds (all of them if the set is
  /// smaller). Sets *truncated when the cap was hit.
  virtual Result<std::vector<World>> MaterializeWorlds(
      size_t max_worlds, bool* truncated = nullptr) const = 0;

  /// The `k` most probable worlds, in decreasing probability order.
  /// The decomposed engine computes these without enumerating the product
  /// (best-first search over per-component sorted alternatives), so this
  /// works on world-sets with astronomically many worlds.
  virtual Result<std::vector<World>> TopKWorlds(size_t k) const = 0;

  /// Draws one world at random according to the world probabilities.
  /// The decomposed engine samples each component independently — O(n)
  /// per draw regardless of the number of worlds. Basis for Monte-Carlo
  /// approximate confidence (see worlds/sampling.h), which constructs a
  /// fresh O(1)-seeded generator per sample — hence base::SplitMix64,
  /// not std::mt19937 with its 624-word init.
  virtual Result<World> SampleWorld(base::SplitMix64* rng) const = 0;

  // ---- Schema / update operations (applied to every world) ----

  /// Adds an empty base relation with the given schema to every world.
  virtual Status CreateBaseTable(const std::string& name,
                                 const Table& prototype) = 0;

  virtual Status DropRelation(const std::string& name) = 0;

  /// Executes INSERT/UPDATE/DELETE in every world. Possible-worlds update
  /// semantics per the paper: if the update violates a constraint in some
  /// world, it is discarded in all worlds (an error is returned and no
  /// world changes).
  virtual Status ApplyDml(const sql::Statement& stmt,
                          const Catalog& catalog) = 0;

  // ---- I-SQL SELECT pipeline ----

  /// Evaluates `stmt` without modifying this world-set (per the paper,
  /// plain queries are not materialized). `max_worlds` caps the size of
  /// `per_world` in the result.
  virtual Result<SelectEvaluation> EvaluateSelect(
      const sql::SelectStatement& stmt, size_t max_worlds) const = 0;

  /// Executes `create table <name> as <stmt>`: applies the statement's
  /// world operations (repair by key / choice of create worlds; assert
  /// drops worlds and renormalizes) and stores the result relation in
  /// every (surviving) world.
  virtual Status MaterializeSelect(const std::string& name,
                                   const sql::SelectStatement& stmt) = 0;

  // ---- Durable storage interchange (storage/store.h) ----

  /// Captures the world-set as an engine-neutral durable snapshot. Table
  /// instances are pointer-deduped so the copy-on-write sharing structure
  /// is preserved exactly (storage/snapshot.h).
  virtual Result<storage::DurableSnapshot> ToSnapshot() const = 0;

  /// Replaces this world-set's entire contents with the snapshot's.
  /// Probabilities are adopted verbatim — NO renormalization — so restored
  /// query results are byte-identical to pre-snapshot ones. Rejects a
  /// snapshot whose `engine` does not match EngineName().
  virtual Status FromSnapshot(const storage::DurableSnapshot& snapshot) = 0;
};

// ---- Shared helpers used by both implementations -------------------------

/// Statement-shape checks every world-set implementation applies before
/// running the I-SQL pipeline (repair/choice vs UNION combinations). The
/// error messages are part of the differential-conformance surface: both
/// engines — and every evaluation path within an engine — must fail
/// identically, so there is exactly one copy of them.
Status ValidateWorldOps(const sql::SelectStatement& stmt);

/// Collects the (lower-cased) names of all relations referenced anywhere in
/// a statement: FROM clauses, subqueries in any expression, assert
/// conditions, group-worlds-by queries, and UNION branches.
void CollectReferencedRelations(const sql::SelectStatement& stmt,
                                std::set<std::string>* out);
void CollectReferencedRelations(const sql::Expr& expr,
                                std::set<std::string>* out);

/// True if the statement references the internal "__result" relation —
/// the name under which a statement's own per-world answer is exposed to
/// `assert` / `group worlds by` in the materializing pipelines. Both
/// engines use this as the gate for the streaming evaluation paths
/// (which never materialize that relation, and so must fall back when it
/// is observable); keeping the rule here prevents the engines from
/// diverging on which statements stream.
bool ReferencesInternalResult(const sql::SelectStatement& stmt);

// The set-based combinators below are the *retained oracle* for the
// streaming QuantifierCombiner (worlds/combiner.h), which both engines
// use on their hot paths. They stay exercised two ways: the combiner
// property suite compares the two on randomized inputs, and setting
// MAYBMS_COMBINER_ORACLE=1 routes every combination in the engine through
// them end to end.

/// Combines per-world results under `possible`: the distinct union.
/// Entries' tables must share arity.
Table CombinePossible(const std::vector<std::pair<double, Table>>& entries);

/// Combines per-world results under `certain`: tuples present in every
/// world's answer.
Table CombineCertain(const std::vector<std::pair<double, Table>>& entries);

/// Combines per-world results under `conf`: each distinct tuple extended
/// with the sum of probabilities of the worlds whose answer contains it.
/// For 0-column answers (bare `select conf`), produces a single-row table
/// with one `conf` column holding P(answer non-empty).
Table CombineConf(const std::vector<std::pair<double, Table>>& entries);

/// Canonical key for group-worlds-by: the sorted distinct rows of the
/// grouping query's answer.
Table CanonicalizeGroupKey(const Table& table);

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_WORLD_SET_H_
