#include "worlds/decomposed_world_set.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <random>
#include <utility>

#include "base/query_context.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "engine/dml.h"
#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "engine/planner.h"
#include "engine/prepared.h"
#include "worlds/combiner.h"
#include "worlds/explicit_world_set.h"
#include "worlds/partition.h"

namespace maybms::worlds {

namespace {

/// Key under which pipeline results are stored in new components before a
/// materialization assigns the real relation name.
const char kResultKey[] = "__result";

bool ContainsSubquery(const sql::Expr& expr) {
  switch (expr.kind) {
    case sql::ExprKind::kExists:
    case sql::ExprKind::kInSubquery:
    case sql::ExprKind::kScalarSubquery:
      return true;
    case sql::ExprKind::kLiteral:
    case sql::ExprKind::kColumnRef:
      return false;
    case sql::ExprKind::kUnary:
      return ContainsSubquery(
          *static_cast<const sql::UnaryExpr&>(expr).operand);
    case sql::ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      return ContainsSubquery(*b.left) || ContainsSubquery(*b.right);
    }
    case sql::ExprKind::kFunctionCall: {
      const auto& f = static_cast<const sql::FunctionCallExpr&>(expr);
      for (const auto& a : f.args) {
        if (ContainsSubquery(*a)) return true;
      }
      return false;
    }
    case sql::ExprKind::kIsNull:
      return ContainsSubquery(
          *static_cast<const sql::IsNullExpr&>(expr).operand);
    case sql::ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      if (ContainsSubquery(*in.operand)) return true;
      for (const auto& i : in.items) {
        if (ContainsSubquery(*i)) return true;
      }
      return false;
    }
    case sql::ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(expr);
      return ContainsSubquery(*b.operand) || ContainsSubquery(*b.low) ||
             ContainsSubquery(*b.high);
    }
    case sql::ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& w : c.whens) {
        if (ContainsSubquery(*w.condition) || ContainsSubquery(*w.result)) {
          return true;
        }
      }
      return c.else_result && ContainsSubquery(*c.else_result);
    }
    case sql::ExprKind::kCast:
      return ContainsSubquery(
          *static_cast<const sql::CastExpr&>(expr).operand);
  }
  return false;
}

/// One-shot combination of already-materialized per-world answers through
/// the streaming combiner (weights must be normalized). Used where the
/// pipeline genuinely needs every answer at hand anyway (assert tails,
/// group-worlds-by members); the hot quantifier paths feed the combiner
/// incrementally instead.
Result<Table> CombineByQuantifier(
    sql::WorldQuantifier quantifier,
    const std::vector<std::pair<double, const Table*>>& entries) {
  MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner combiner,
                          QuantifierCombiner::Create(quantifier));
  for (const auto& [prob, table] : entries) combiner.Feed(prob, *table);
  return combiner.Finish();
}

/// Filters `rows` (over the projection's qualified source schema) by the
/// statement's WHERE clause and projects them through the prepared select
/// list. The fast path guarantees there are no subqueries, so `db` is only
/// a formality for the evaluation context; `where_plans` shares what
/// little subquery analysis there is across the per-alternative calls.
Result<std::vector<Tuple>> FilterProjectRows(
    const sql::SelectStatement& core, const Database& db, const Schema& schema,
    const std::vector<Tuple>& rows, engine::PreparedProjection& projection,
    engine::SubqueryPlanCache* where_plans) {
  std::vector<Tuple> kept;
  kept.reserve(rows.size());
  engine::SubqueryCache subquery_cache(where_plans);
  for (const Tuple& row : rows) {
    if (core.where) {
      engine::EvalContext ctx{&db,     &schema, &row,
                              nullptr, nullptr, &subquery_cache};
      MAYBMS_ASSIGN_OR_RETURN(Trivalent keep,
                              engine::EvalPredicate(*core.where, ctx));
      if (keep != Trivalent::kTrue) continue;
    }
    kept.push_back(row);
  }
  MAYBMS_ASSIGN_OR_RETURN(Table projected, projection.Execute(db, kept));
  return std::move(*projected.mutable_rows());
}

}  // namespace

DecomposedWorldSet::DecomposedWorldSet(size_t max_merge, size_t threads)
    : max_merge_(max_merge), threads_(threads) {}

std::unique_ptr<WorldSet> DecomposedWorldSet::Clone() const {
  return std::make_unique<DecomposedWorldSet>(*this);
}

uint64_t DecomposedWorldSet::NumWorlds() const {
  uint64_t total = 1;
  for (const Component& c : components_) {
    uint64_t size = static_cast<uint64_t>(c.size());
    if (size != 0 &&
        total > std::numeric_limits<uint64_t>::max() / size) {
      return std::numeric_limits<uint64_t>::max();  // saturate
    }
    total *= size;
  }
  return total;
}

double DecomposedWorldSet::Log10NumWorlds() const {
  double log_total = 0;
  for (const Component& c : components_) {
    log_total += std::log10(static_cast<double>(c.size()));
  }
  return log_total;
}

std::vector<std::string> DecomposedWorldSet::RelationNames() const {
  return certain_.RelationNames();
}

bool DecomposedWorldSet::HasRelation(const std::string& name) const {
  return certain_.HasRelation(name);
}

Database DecomposedWorldSet::BuildLocalDatabase(
    const std::vector<const Alternative*>& chosen) const {
  // Copying the certain core is O(#relations) handle bumps; only the
  // relations this choice actually contributes to are cloned (by the
  // copy-on-write MutableRelation) — every untouched relation stays
  // shared with the core and every other local world.
  Database db = certain_;
  for (const Alternative* alt : chosen) {
    for (const auto& [rel, tuples] : alt->tuples) {
      auto table = db.MutableRelation(rel);
      if (!table.ok()) continue;  // relation dropped; stale contribution
      for (const Tuple& t : tuples) (*table)->AppendUnchecked(t);
    }
  }
  return db;
}

Result<std::vector<World>> DecomposedWorldSet::MaterializeWorlds(
    size_t max_worlds, bool* truncated) const {
  std::vector<World> worlds;
  if (truncated != nullptr) *truncated = false;

  std::vector<size_t> pick(components_.size(), 0);
  while (true) {
    if (worlds.size() >= max_worlds) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    // Each odometer step materializes one full world (a database copy):
    // charge it against the world budget, which also polls.
    MAYBMS_RETURN_NOT_OK(base::GovernChargeWorlds(1));
    std::vector<const Alternative*> chosen;
    double prob = 1.0;
    chosen.reserve(components_.size());
    for (size_t i = 0; i < components_.size(); ++i) {
      const Alternative& alt = components_[i].alternatives[pick[i]];
      chosen.push_back(&alt);
      prob *= alt.probability;
    }
    worlds.emplace_back(BuildLocalDatabase(chosen), prob);

    size_t i = 0;
    for (; i < components_.size(); ++i) {
      if (++pick[i] < components_[i].size()) break;
      pick[i] = 0;
    }
    if (i == components_.size()) break;
  }
  return worlds;
}

Result<std::vector<World>> DecomposedWorldSet::TopKWorlds(size_t k) const {
  // Best-first search over the product of per-component alternatives
  // sorted by decreasing probability: the most probable world picks rank
  // 0 everywhere; successors bump one rank. Never enumerates more than
  // O(k * n) states, independent of the total world count.
  const size_t n = components_.size();
  std::vector<std::vector<size_t>> sorted(n);  // rank -> alternative index
  for (size_t c = 0; c < n; ++c) {
    sorted[c].resize(components_[c].size());
    for (size_t j = 0; j < sorted[c].size(); ++j) sorted[c][j] = j;
    std::stable_sort(sorted[c].begin(), sorted[c].end(),
                     [&](size_t a, size_t b) {
                       return components_[c].alternatives[a].probability >
                              components_[c].alternatives[b].probability;
                     });
  }

  auto probability_of = [&](const std::vector<size_t>& ranks) {
    double p = 1.0;
    for (size_t c = 0; c < n; ++c) {
      p *= components_[c].alternatives[sorted[c][ranks[c]]].probability;
    }
    return p;
  };

  struct State {
    double probability;
    std::vector<size_t> ranks;
    bool operator<(const State& other) const {
      return probability < other.probability;  // max-heap
    }
  };
  std::priority_queue<State> frontier;
  std::set<std::vector<size_t>> seen;
  std::vector<size_t> initial(n, 0);
  frontier.push(State{probability_of(initial), initial});
  seen.insert(std::move(initial));

  std::vector<World> top;
  while (!frontier.empty() && top.size() < k) {
    MAYBMS_RETURN_NOT_OK(base::GovernChargeWorlds(1));
    State state = frontier.top();
    frontier.pop();
    std::vector<const Alternative*> chosen;
    chosen.reserve(n);
    for (size_t c = 0; c < n; ++c) {
      chosen.push_back(
          &components_[c].alternatives[sorted[c][state.ranks[c]]]);
    }
    top.emplace_back(BuildLocalDatabase(chosen), state.probability);

    for (size_t c = 0; c < n; ++c) {
      if (state.ranks[c] + 1 >= sorted[c].size()) continue;
      std::vector<size_t> next = state.ranks;
      ++next[c];
      if (seen.insert(next).second) {
        frontier.push(State{probability_of(next), std::move(next)});
      }
    }
  }
  return top;
}

Result<World> DecomposedWorldSet::SampleWorld(base::SplitMix64* rng) const {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<const Alternative*> chosen;
  chosen.reserve(components_.size());
  double probability = 1.0;
  for (const Component& component : components_) {
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    if (component.alternatives.empty()) {
      return Status::EmptyWorldSet("component with no alternatives");
    }
    double u = uniform(*rng);
    double cumulative = 0;
    const Alternative* pick = &component.alternatives.back();
    for (const Alternative& alt : component.alternatives) {
      cumulative += alt.probability;
      if (u <= cumulative) {
        pick = &alt;
        break;
      }
    }
    probability *= pick->probability;
    chosen.push_back(pick);
  }
  return World(BuildLocalDatabase(chosen), probability);
}

Status DecomposedWorldSet::CreateBaseTable(const std::string& name,
                                           const Table& prototype) {
  if (certain_.HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  certain_.PutRelation(name, prototype);
  return Status::OK();
}

Status DecomposedWorldSet::DropRelation(const std::string& name) {
  // Poll BEFORE any mutation: erasing contributions from a prefix of the
  // components and then aborting would tear the set.
  MAYBMS_RETURN_NOT_OK(base::GovernPoll());
  MAYBMS_RETURN_NOT_OK(certain_.DropRelation(name));
  std::string lower = AsciiToLower(name);
  for (Component& c : components_) {
    for (Alternative& alt : c.alternatives) alt.tuples.erase(lower);
  }
  return Status::OK();
}

std::vector<size_t> DecomposedWorldSet::RelevantComponents(
    const std::set<std::string>& relations) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < components_.size(); ++i) {
    for (const std::string& rel : relations) {
      if (components_[i].ContributesTo(rel)) {
        indices.push_back(i);
        break;
      }
    }
  }
  return indices;
}

Result<Component> DecomposedWorldSet::MergeRelevant(
    const std::vector<size_t>& indices) const {
  std::vector<const Component*> parts;
  parts.reserve(indices.size());
  for (size_t i : indices) parts.push_back(&components_[i]);
  return MergeComponents(parts, max_merge_);
}

Status DecomposedWorldSet::ApplyDml(const sql::Statement& stmt,
                                    const Catalog& catalog) {
  std::set<std::string> referenced;
  std::string target;
  switch (stmt.kind) {
    case sql::StatementKind::kInsert: {
      const auto& insert = static_cast<const sql::InsertStatement&>(stmt);
      target = insert.table_name;
      if (insert.query) CollectReferencedRelations(*insert.query, &referenced);
      for (const auto& row : insert.rows) {
        for (const auto& e : row) CollectReferencedRelations(*e, &referenced);
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      const auto& update = static_cast<const sql::UpdateStatement&>(stmt);
      target = update.table_name;
      if (update.where) CollectReferencedRelations(*update.where, &referenced);
      for (const auto& [col, e] : update.assignments) {
        CollectReferencedRelations(*e, &referenced);
      }
      break;
    }
    case sql::StatementKind::kDelete: {
      const auto& del = static_cast<const sql::DeleteStatement&>(stmt);
      target = del.table_name;
      if (del.where) CollectReferencedRelations(*del.where, &referenced);
      break;
    }
    default:
      return Status::InvalidArgument("not a DML statement");
  }
  referenced.insert(AsciiToLower(target));

  // The statement is planned once against the certain schemas (local
  // worlds share them) and executed per world.
  MAYBMS_ASSIGN_OR_RETURN(engine::PreparedDml plan,
                          engine::PreparedDml::Prepare(stmt, certain_,
                                                       &catalog));

  std::vector<size_t> relevant = RelevantComponents(referenced);
  if (relevant.empty()) {
    // All referenced relations are certain: apply once to the core.
    return plan.Execute(&certain_);
  }

  // General path: the update's effect may differ per world. Merge the
  // relevant components; apply the update in each local world; the target
  // relation becomes per-alternative content.
  MAYBMS_ASSIGN_OR_RETURN(Component merged, MergeRelevant(relevant));
  std::string target_lower = AsciiToLower(target);
  base::ThreadPool& pool = base::ThreadPool::Shared();
  const size_t n = merged.size();
  std::vector<Table> new_contents(n);
  // A PreparedDml caches per-execution state, so each slot gets its own;
  // slot 0 adopts the plan prepared above (preparation errors already
  // surfaced there, exactly as in the sequential path).
  std::vector<std::optional<engine::PreparedDml>> plans(pool.Slots(threads_));
  plans[0].emplace(std::move(plan));
  MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
      n, threads_, [&](size_t i, size_t slot, size_t) -> Status {
        if (!plans[slot].has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(
              plans[slot], engine::PreparedDml::Prepare(stmt, certain_,
                                                        &catalog));
        }
        Database local = BuildLocalDatabase({&merged.alternatives[i]});
        // All-or-nothing per world.
        MAYBMS_RETURN_NOT_OK(plans[slot]->Execute(&local));
        MAYBMS_ASSIGN_OR_RETURN(const Table* updated,
                                local.GetRelation(target));
        new_contents[i] = *updated;
        return Status::OK();
      }));

  // Commit: the merged component carries the full per-world contents of
  // the target relation; its certain part becomes empty.
  for (size_t i = 0; i < merged.alternatives.size(); ++i) {
    merged.alternatives[i].tuples[target_lower] = new_contents[i].rows();
  }
  // The target's contents moved into the merged component: swap an empty
  // instance into the core instead of cloning a (possibly shared) table
  // just to clear it.
  MAYBMS_ASSIGN_OR_RETURN(const Table* core_table,
                          certain_.GetRelation(target));
  certain_.PutRelation(target, Table(core_table->schema()));

  std::sort(relevant.rbegin(), relevant.rend());
  for (size_t i : relevant) {
    components_.erase(components_.begin() + static_cast<long>(i));
  }
  components_.push_back(std::move(merged));
  return Status::OK();
}

bool DecomposedWorldSet::QualifiesForFastPath(
    const sql::SelectStatement& stmt,
    const std::set<std::string>& referenced) const {
  if (stmt.from.size() != 1 || referenced.size() != 1) return false;
  if (!stmt.joins.empty()) return false;  // self-joins correlate tuples
  if (stmt.union_next || stmt.distinct) return false;
  if (!stmt.group_by.empty() || stmt.having || !stmt.order_by.empty() ||
      stmt.limit.has_value()) {
    return false;
  }
  if (stmt.where &&
      (ContainsSubquery(*stmt.where) || engine::ContainsAggregate(*stmt.where))) {
    return false;
  }
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) continue;
    if (ContainsSubquery(*item.expr) || engine::ContainsAggregate(*item.expr)) {
      return false;
    }
  }
  return true;
}

Result<DecomposedWorldSet::PipelineOutput> DecomposedWorldSet::RunPipeline(
    const sql::SelectStatement& stmt, const std::string& result_name) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));
  if (stmt.group_worlds_by && engine::HasWorldOps(*stmt.group_worlds_by)) {
    return Status::Unsupported(
        "the GROUP WORLDS BY query must be a plain SQL query");
  }

  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);
  std::set<std::string> referenced;
  CollectReferencedRelations(stmt, &referenced);
  std::vector<size_t> relevant = RelevantComponents(referenced);

  const bool needs_merge_tail =
      stmt.assert_condition != nullptr || stmt.group_worlds_by != nullptr;

  // Per-alternative loops below run on the shared pool; per-chunk
  // accumulators merged in chunk order and per-slot prepared plans keep
  // results and errors byte-identical at every thread count.
  base::ThreadPool& pool = base::ThreadPool::Shared();
  const size_t slots = pool.Slots(threads_);

  PipelineOutput out;

  // When a quantifier collapses the answer and nothing downstream needs
  // per-alternative results (no assert, no grouping), the merged paths
  // stream each local world's answer into the combiner as it is produced
  // and discard it immediately instead of materializing `merged.results`.
  const bool stream_feed = stmt.quantifier != sql::WorldQuantifier::kNone &&
                           !needs_merge_tail;
  std::optional<QuantifierCombiner> stream_combiner;
  bool streamed = false;
  if (stream_feed) {
    MAYBMS_ASSIGN_OR_RETURN(QuantifierCombiner c,
                            QuantifierCombiner::Create(stmt.quantifier));
    stream_combiner.emplace(std::move(c));
  }

  // ---- Step 1: compute the result representation. ----
  if (stmt.repair.has_value() || stmt.choice.has_value()) {
    // Plan the repair/choice source pipeline and the projection once: the
    // certain core and every local world share one schema catalog.
    MAYBMS_ASSIGN_OR_RETURN(engine::PreparedFromWhere source_plan,
                            engine::PreparedFromWhere::Prepare(stmt, certain_));
    MAYBMS_ASSIGN_OR_RETURN(
        engine::PreparedProjection projection,
        engine::PreparedProjection::Prepare(*core, certain_,
                                            source_plan.output_schema()));
    if (relevant.empty()) {
      // The clean product construction: repair creates one component per
      // key group, choice a single component. This is the O(n·g)
      // representation of g^n worlds.
      MAYBMS_ASSIGN_OR_RETURN(Table source, source_plan.Execute(certain_));
      std::vector<PartitionBlock> blocks;
      if (stmt.repair.has_value()) {
        MAYBMS_ASSIGN_OR_RETURN(blocks, RepairPartition(source, *stmt.repair));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(blocks, ChoicePartition(source, *stmt.choice));
      }
      DecomposedResult result;
      result.schema = projection.output_schema();
      for (const PartitionBlock& block : blocks) {
        // Each block becomes one component whose alternatives are this
        // block's choices: charge them as the decomposition's unit of
        // world fan-out (the explicit engine charges the full product;
        // the decomposed representation IS the O(n·g) compression).
        MAYBMS_RETURN_NOT_OK(
            base::GovernChargeWorlds(block.choices.size()));
        Component comp;
        for (const WeightedChoice& choice : block.choices) {
          std::vector<Tuple> chosen;
          chosen.reserve(choice.row_indices.size());
          for (size_t r : choice.row_indices) chosen.push_back(source.row(r));
          MAYBMS_ASSIGN_OR_RETURN(Table projected,
                                  projection.Execute(certain_, chosen));
          MAYBMS_RETURN_NOT_OK(
              base::GovernChargeBytes(base::EstimateTableBytes(
                  projected.num_rows(), projected.schema().num_columns())));
          Alternative alt;
          alt.probability = choice.probability;
          alt.tuples[kResultKey] = projected.rows();
          comp.alternatives.push_back(std::move(alt));
        }
        result.new_components.push_back(std::move(comp));
      }
      out.decomposed = std::move(result);
    } else {
      // Repair/choice over an uncertain source: flatten within each local
      // world of the relevant sub-product. The outer loop over source
      // alternatives stays sequential (alternative i's emissions precede
      // alternative i+1's source evaluation, exactly as before); the
      // combo enumeration inside one alternative runs on the pool, each
      // combo decoded from its ordinal in the same little-endian block
      // order the sequential odometer walked.
      MAYBMS_ASSIGN_OR_RETURN(Component merged_src, MergeRelevant(relevant));
      MergedResult merged;
      merged.replaced = relevant;
      std::vector<std::optional<engine::PreparedProjection>> projections(
          slots);
      projections[0].emplace(std::move(projection));
      std::vector<std::optional<QuantifierCombiner>> chunk_combiners;
      size_t flat_count = 0;
      for (const Alternative& alt : merged_src.alternatives) {
        MAYBMS_RETURN_NOT_OK(base::GovernPoll());
        Database local = BuildLocalDatabase({&alt});
        MAYBMS_ASSIGN_OR_RETURN(Table source, source_plan.Execute(local));
        std::vector<PartitionBlock> blocks;
        if (stmt.repair.has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(blocks,
                                  RepairPartition(source, *stmt.repair));
        } else {
          MAYBMS_ASSIGN_OR_RETURN(blocks,
                                  ChoicePartition(source, *stmt.choice));
        }
        // Combo count, checked against the merge cap before emission (the
        // sequential walk checked after each emitted world — same error,
        // surfaced earlier).
        size_t combos = 1;
        for (const PartitionBlock& block : blocks) {
          const size_t choices = block.choices.size();
          if (choices != 0 &&
              combos > std::numeric_limits<size_t>::max() / choices) {
            return Status::Unsupported(
                "repair/choice over an uncertain source exceeds the merge "
                "cap of " +
                std::to_string(max_merge_) + " alternatives");
          }
          combos *= choices;
          if (max_merge_ != 0 && flat_count + combos > max_merge_) {
            return Status::Unsupported(
                "repair/choice over an uncertain source exceeds the merge "
                "cap of " +
                std::to_string(max_merge_) + " alternatives");
          }
        }
        const size_t base = merged.component.alternatives.size();
        MAYBMS_RETURN_NOT_OK(base::GovernChargeWorlds(combos));
        if (stream_feed) {
          chunk_combiners.clear();
          chunk_combiners.resize(base::ThreadPool::NumChunks(combos));
        } else {
          merged.component.alternatives.resize(base + combos);
          merged.results.resize(base + combos);
        }
        MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
            combos, threads_,
            [&](size_t c, size_t slot, size_t chunk) -> Status {
              if (!projections[slot].has_value()) {
                MAYBMS_ASSIGN_OR_RETURN(
                    projections[slot],
                    engine::PreparedProjection::Prepare(
                        *core, certain_, source_plan.output_schema()));
              }
              double prob = alt.probability;
              std::vector<size_t> rows;
              size_t rem = c;
              for (size_t b = 0; b < blocks.size(); ++b) {
                const size_t digit = rem % blocks[b].choices.size();
                rem /= blocks[b].choices.size();
                const WeightedChoice& choice = blocks[b].choices[digit];
                prob *= choice.probability;
                rows.insert(rows.end(), choice.row_indices.begin(),
                            choice.row_indices.end());
              }
              std::vector<Tuple> chosen;
              chosen.reserve(rows.size());
              for (size_t r : rows) chosen.push_back(source.row(r));
              MAYBMS_ASSIGN_OR_RETURN(
                  Table result, projections[slot]->Execute(local, chosen));
              MAYBMS_RETURN_NOT_OK(
                  base::GovernChargeBytes(base::EstimateTableBytes(
                      result.num_rows(), result.schema().num_columns())));
              if (stream_feed) {
                if (!chunk_combiners[chunk].has_value()) {
                  MAYBMS_ASSIGN_OR_RETURN(
                      chunk_combiners[chunk],
                      QuantifierCombiner::Create(stmt.quantifier));
                }
                chunk_combiners[chunk]->Feed(prob, result);
              } else {
                Alternative flat = alt;
                flat.probability = prob;
                merged.component.alternatives[base + c] = std::move(flat);
                merged.results[base + c] = std::move(result);
              }
              return Status::OK();
            }));
        flat_count += combos;
        if (stream_feed) {
          for (auto& cc : chunk_combiners) {
            if (cc.has_value()) stream_combiner->Merge(std::move(*cc));
          }
        }
      }
      if (stream_feed) {
        streamed = true;
      } else {
        out.merged = std::move(merged);
      }
    }
  } else if (relevant.empty()) {
    // Entirely certain input: one evaluation suffices.
    MAYBMS_ASSIGN_OR_RETURN(Table result,
                            engine::ExecuteSelect(*core, certain_));
    out.certain_result = std::move(result);
  } else if (!needs_merge_tail && QualifiesForFastPath(stmt, referenced)) {
    // Fast path: push selection/projection into each alternative — no
    // component merging, component structure preserved.
    const std::string rel = AsciiToLower(stmt.from[0].table_name);
    MAYBMS_ASSIGN_OR_RETURN(const Table* base, certain_.GetRelation(rel));
    Schema qualified =
        base->schema().WithQualifier(stmt.from[0].effective_alias());

    // One prepared projection + shared WHERE subquery plans serve the
    // certain rows and every alternative's contribution.
    MAYBMS_ASSIGN_OR_RETURN(
        engine::PreparedProjection projection,
        engine::PreparedProjection::Prepare(*core, certain_, qualified));
    engine::SubqueryPlanCache where_plans;

    DecomposedResult result;
    result.schema = projection.output_schema();
    MAYBMS_ASSIGN_OR_RETURN(
        result.certain_rows,
        FilterProjectRows(*core, certain_, qualified, base->rows(), projection,
                          &where_plans));
    result.component_indices = relevant;
    for (size_t idx : relevant) {
      std::vector<std::vector<Tuple>> per_alt;
      per_alt.reserve(components_[idx].size());
      for (const Alternative& alt : components_[idx].alternatives) {
        MAYBMS_RETURN_NOT_OK(base::GovernPoll());
        const std::vector<Tuple>* rows = alt.TuplesFor(rel);
        std::vector<Tuple> projected;
        if (rows != nullptr) {
          MAYBMS_ASSIGN_OR_RETURN(
              projected, FilterProjectRows(*core, certain_, qualified, *rows,
                                           projection, &where_plans));
          MAYBMS_RETURN_NOT_OK(
              base::GovernChargeBytes(base::EstimateTableBytes(
                  projected.size(), result.schema.num_columns())));
        }
        per_alt.push_back(std::move(projected));
      }
      result.contributions.push_back(std::move(per_alt));
    }
    out.decomposed = std::move(result);
  } else {
    // General path: enumerate the relevant sub-product, evaluate the SQL
    // core in each local world. The core is planned once against the
    // certain schemas (local worlds only append rows, never change
    // schemas) and executed per alternative.
    MAYBMS_ASSIGN_OR_RETURN(Component merged_src, MergeRelevant(relevant));
    MAYBMS_ASSIGN_OR_RETURN(engine::PreparedSelect core_plan,
                            engine::PreparedSelect::Prepare(*core, certain_));
    // One execution loop, two sinks: streaming mode combines and drops
    // each local world's answer on the spot (neither the answers nor the
    // merged component reach the pipeline output — the quantifier
    // collapses everything to one certain relation); otherwise the
    // answers are retained for the assert/grouping/materialize tails.
    MergedResult merged;
    merged.replaced = relevant;
    const size_t n = merged_src.size();
    std::vector<std::optional<engine::PreparedSelect>> plans(slots);
    plans[0].emplace(std::move(core_plan));
    std::vector<std::optional<QuantifierCombiner>> chunk_combiners;
    if (stream_feed) {
      chunk_combiners.resize(base::ThreadPool::NumChunks(n));
    } else {
      merged.results.resize(n);
    }
    MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
        n, threads_, [&](size_t i, size_t slot, size_t chunk) -> Status {
          if (!plans[slot].has_value()) {
            MAYBMS_ASSIGN_OR_RETURN(
                plans[slot], engine::PreparedSelect::Prepare(*core, certain_));
          }
          const Alternative& alt = merged_src.alternatives[i];
          Database local = BuildLocalDatabase({&alt});
          MAYBMS_ASSIGN_OR_RETURN(Table result, plans[slot]->Execute(local));
          MAYBMS_RETURN_NOT_OK(
              base::GovernChargeBytes(base::EstimateTableBytes(
                  result.num_rows(), result.schema().num_columns())));
          if (stream_feed) {
            if (!chunk_combiners[chunk].has_value()) {
              MAYBMS_ASSIGN_OR_RETURN(
                  chunk_combiners[chunk],
                  QuantifierCombiner::Create(stmt.quantifier));
            }
            chunk_combiners[chunk]->Feed(alt.probability, result);
          } else {
            merged.results[i] = std::move(result);
          }
          return Status::OK();
        }));
    if (stream_feed) {
      for (auto& cc : chunk_combiners) {
        if (cc.has_value()) stream_combiner->Merge(std::move(*cc));
      }
      streamed = true;
    } else {
      merged.component = std::move(merged_src);
      out.merged = std::move(merged);
    }
  }

  // ---- Step 2: assert. ----
  if (stmt.assert_condition) {
    if (out.certain_result.has_value()) {
      Database extended = certain_;
      extended.PutRelation(result_name, *out.certain_result);
      engine::EvalContext ctx{&extended, nullptr, nullptr, nullptr, nullptr,
                              nullptr};
      MAYBMS_ASSIGN_OR_RETURN(
          Trivalent keep, engine::EvalPredicate(*stmt.assert_condition, ctx));
      if (keep != Trivalent::kTrue) {
        return Status::EmptyWorldSet("assert eliminated every world");
      }
    } else {
      // Convert the repair/choice product into merged form if needed
      // (assert correlates the blocks).
      if (out.decomposed.has_value()) {
        const DecomposedResult& dec = *out.decomposed;
        std::vector<const Component*> parts;
        for (const Component& c : dec.new_components) parts.push_back(&c);
        MAYBMS_ASSIGN_OR_RETURN(Component flat,
                                MergeComponents(parts, max_merge_));
        MergedResult merged;
        merged.replaced = dec.component_indices;  // empty for repair/choice
        for (Alternative& alt : flat.alternatives) {
          Table result(dec.schema);
          for (const Tuple& t : dec.certain_rows) result.AppendUnchecked(t);
          auto it = alt.tuples.find(kResultKey);
          if (it != alt.tuples.end()) {
            for (const Tuple& t : it->second) result.AppendUnchecked(t);
            alt.tuples.erase(it);
          }
          merged.results.push_back(std::move(result));
        }
        merged.component = std::move(flat);
        out.merged = std::move(merged);
        out.decomposed.reset();
      }
      MergedResult& merged = *out.merged;
      const size_t n = merged.component.alternatives.size();
      // Assert predicates run in parallel into per-world keep flags;
      // subquery plan caches mutate during evaluation, so each slot gets
      // its own. Compaction stays sequential, in world order.
      std::vector<char> keep_flags(n, 0);
      std::vector<engine::SubqueryPlanCache> assert_plans(slots);
      MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
          n, threads_, [&](size_t i, size_t slot, size_t) -> Status {
            Database local =
                BuildLocalDatabase({&merged.component.alternatives[i]});
            local.PutRelation(result_name, merged.results[i]);
            engine::SubqueryCache assert_cache(&assert_plans[slot]);
            engine::EvalContext ctx{&local,  nullptr, nullptr,
                                    nullptr, nullptr, &assert_cache};
            MAYBMS_ASSIGN_OR_RETURN(
                Trivalent keep,
                engine::EvalPredicate(*stmt.assert_condition, ctx));
            keep_flags[i] = keep == Trivalent::kTrue ? 1 : 0;
            return Status::OK();
          }));
      Component surviving;
      std::vector<Table> surviving_results;
      for (size_t i = 0; i < n; ++i) {
        if (!keep_flags[i]) continue;
        surviving.alternatives.push_back(
            std::move(merged.component.alternatives[i]));
        surviving_results.push_back(std::move(merged.results[i]));
      }
      if (surviving.alternatives.empty()) {
        return Status::EmptyWorldSet("assert eliminated every world");
      }
      MAYBMS_RETURN_NOT_OK(surviving.Normalize());
      merged.component = std::move(surviving);
      merged.results = std::move(surviving_results);
    }
  }

  // ---- Step 3: group worlds by / quantifier. ----
  if (stmt.group_worlds_by) {
    // Grouping needs per-world answers: merge if not already merged.
    if (out.decomposed.has_value()) {
      const DecomposedResult& dec = *out.decomposed;
      std::vector<const Component*> parts;
      for (const Component& c : dec.new_components) parts.push_back(&c);
      std::vector<size_t> replaced = dec.component_indices;
      if (!replaced.empty()) {
        MAYBMS_ASSIGN_OR_RETURN(Component flat, MergeRelevant(replaced));
        // Rebuild per-alternative result tables from the contributions.
        // For simplicity fall back to the general merged evaluation.
        MAYBMS_ASSIGN_OR_RETURN(
            engine::PreparedSelect core_plan,
            engine::PreparedSelect::Prepare(*core, certain_));
        MergedResult merged;
        merged.replaced = replaced;
        merged.component = std::move(flat);
        const size_t n = merged.component.alternatives.size();
        merged.results.resize(n);
        std::vector<std::optional<engine::PreparedSelect>> plans(slots);
        plans[0].emplace(std::move(core_plan));
        MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
            n, threads_, [&](size_t i, size_t slot, size_t) -> Status {
              if (!plans[slot].has_value()) {
                MAYBMS_ASSIGN_OR_RETURN(
                    plans[slot],
                    engine::PreparedSelect::Prepare(*core, certain_));
              }
              Database local =
                  BuildLocalDatabase({&merged.component.alternatives[i]});
              MAYBMS_ASSIGN_OR_RETURN(merged.results[i],
                                      plans[slot]->Execute(local));
              return Status::OK();
            }));
        out.merged = std::move(merged);
      } else {
        MAYBMS_ASSIGN_OR_RETURN(Component flat,
                                MergeComponents(parts, max_merge_));
        MergedResult merged;
        for (Alternative& alt : flat.alternatives) {
          Table result(dec.schema);
          for (const Tuple& t : dec.certain_rows) result.AppendUnchecked(t);
          auto it = alt.tuples.find(kResultKey);
          if (it != alt.tuples.end()) {
            for (const Tuple& t : it->second) result.AppendUnchecked(t);
            alt.tuples.erase(it);
          }
          merged.results.push_back(std::move(result));
        }
        merged.component = std::move(flat);
        out.merged = std::move(merged);
      }
      out.decomposed.reset();
    }
    if (out.certain_result.has_value()) {
      // Single (class of) world(s): one group.
      Database extended = certain_;
      extended.PutRelation(result_name, *out.certain_result);
      MAYBMS_ASSIGN_OR_RETURN(
          Table key, engine::ExecuteSelect(*stmt.group_worlds_by, extended));
      std::vector<std::pair<double, const Table*>> entries = {
          {1.0, &*out.certain_result}};
      MAYBMS_ASSIGN_OR_RETURN(Table combined,
                              CombineByQuantifier(stmt.quantifier, entries));
      out.groups.push_back(SelectEvaluation::GroupResult{
          1.0, CanonicalizeGroupKey(key), combined});
      out.certain_result = std::move(combined);
    } else {
      MergedResult& merged = *out.merged;
      const size_t n = merged.component.alternatives.size();
      // The grouping query is planned against a local world (it may
      // reference the result relation, which only exists there) — once
      // per slot, lazily at the slot's first world; every local world
      // shares one schema catalog, so the plans are identical.
      std::vector<std::optional<engine::PreparedSelect>> group_plans(slots);
      std::vector<Table> answers(n);
      MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
          n, threads_, [&](size_t i, size_t slot, size_t) -> Status {
            Database local =
                BuildLocalDatabase({&merged.component.alternatives[i]});
            local.PutRelation(result_name, merged.results[i]);
            if (!group_plans[slot].has_value()) {
              MAYBMS_ASSIGN_OR_RETURN(group_plans[slot],
                                      engine::PreparedSelect::Prepare(
                                          *stmt.group_worlds_by, local));
            }
            MAYBMS_ASSIGN_OR_RETURN(answers[i],
                                    group_plans[slot]->Execute(local));
            return Status::OK();
          }));
      std::map<std::vector<Tuple>, std::vector<size_t>> groups;
      std::map<std::vector<Tuple>, Table> key_tables;
      for (size_t i = 0; i < n; ++i) {
        Table canonical = CanonicalizeGroupKey(answers[i]);
        std::vector<Tuple> key = canonical.rows();
        key_tables.emplace(key, std::move(canonical));
        groups[std::move(key)].push_back(i);
      }
      for (const auto& [key, members] : groups) {
        MAYBMS_RETURN_NOT_OK(base::GovernPoll());
        double group_prob = 0;
        for (size_t i : members) {
          group_prob += merged.component.alternatives[i].probability;
        }
        std::vector<std::pair<double, const Table*>> entries;
        for (size_t i : members) {
          entries.emplace_back(
              group_prob > 0
                  ? merged.component.alternatives[i].probability / group_prob
                  : 0,
              &merged.results[i]);
        }
        MAYBMS_ASSIGN_OR_RETURN(Table combined,
                                CombineByQuantifier(stmt.quantifier, entries));
        for (size_t i : members) merged.results[i] = combined;
        out.groups.push_back(SelectEvaluation::GroupResult{
            group_prob, key_tables.at(key), std::move(combined)});
      }
    }
  } else if (stmt.quantifier != sql::WorldQuantifier::kNone) {
    if (streamed) {
      // The merged paths above already folded every local world's answer
      // into the combiner.
      MAYBMS_ASSIGN_OR_RETURN(Table combined, stream_combiner->Finish());
      out.combined = std::move(combined);
    } else if (out.certain_result.has_value()) {
      std::vector<std::pair<double, const Table*>> entries = {
          {1.0, &*out.certain_result}};
      MAYBMS_ASSIGN_OR_RETURN(out.combined,
                              CombineByQuantifier(stmt.quantifier, entries));
    } else if (out.merged.has_value()) {
      std::vector<std::pair<double, const Table*>> entries;
      const MergedResult& merged = *out.merged;
      for (size_t i = 0; i < merged.component.alternatives.size(); ++i) {
        entries.emplace_back(merged.component.alternatives[i].probability,
                             &merged.results[i]);
      }
      MAYBMS_ASSIGN_OR_RETURN(out.combined,
                              CombineByQuantifier(stmt.quantifier, entries));
    } else {
      // Decomposed result: per-component math, no enumeration.
      const DecomposedResult& dec = *out.decomposed;

      // View: per component, (probability, rows) per alternative.
      struct ContribView {
        double probability;
        const std::vector<Tuple>* rows;
      };
      std::vector<std::vector<ContribView>> views;
      for (size_t k = 0; k < dec.component_indices.size(); ++k) {
        const Component& comp = components_[dec.component_indices[k]];
        std::vector<ContribView> view;
        for (size_t j = 0; j < comp.size(); ++j) {
          view.push_back(ContribView{comp.alternatives[j].probability,
                                     &dec.contributions[k][j]});
        }
        views.push_back(std::move(view));
      }
      static const std::vector<Tuple>* const kNoRows = new std::vector<Tuple>();
      for (const Component& comp : dec.new_components) {
        std::vector<ContribView> view;
        for (const Alternative& alt : comp.alternatives) {
          const std::vector<Tuple>* rows = alt.TuplesFor(kResultKey);
          view.push_back(
              ContribView{alt.probability, rows != nullptr ? rows : kNoRows});
        }
        views.push_back(std::move(view));
      }

      if (stmt.quantifier == sql::WorldQuantifier::kPossible) {
        Table result(dec.schema);
        for (const Tuple& t : dec.certain_rows) result.AppendUnchecked(t);
        for (const auto& view : views) {
          MAYBMS_RETURN_NOT_OK(base::GovernPoll());
          for (const ContribView& cv : view) {
            for (const Tuple& t : *cv.rows) result.AppendUnchecked(t);
          }
        }
        result.DeduplicateRows();
        out.combined = std::move(result);
      } else if (stmt.quantifier == sql::WorldQuantifier::kCertain) {
        // t is certain iff it is in the certain part or some component
        // yields it in every alternative.
        Table result(dec.schema);
        std::set<Tuple> emitted;
        for (const Tuple& t : dec.certain_rows) emitted.insert(t);
        for (const auto& view : views) {
          MAYBMS_RETURN_NOT_OK(base::GovernPoll());
          if (view.empty()) continue;
          std::set<Tuple> candidates(view[0].rows->begin(),
                                     view[0].rows->end());
          for (size_t j = 1; j < view.size() && !candidates.empty(); ++j) {
            std::set<Tuple> next;
            for (const Tuple& t : *view[j].rows) {
              if (candidates.count(t)) next.insert(t);
            }
            candidates = std::move(next);
          }
          emitted.insert(candidates.begin(), candidates.end());
        }
        for (const Tuple& t : emitted) result.AppendUnchecked(t);
        out.combined = std::move(result);
      } else {  // conf — closed form 1 - prod_c (1 - p_c(t)).
        std::map<Tuple, double> not_prob;  // t -> prod (1 - p_c(t))
        std::set<Tuple> certain_set(dec.certain_rows.begin(),
                                    dec.certain_rows.end());
        for (const auto& view : views) {
          MAYBMS_RETURN_NOT_OK(base::GovernPoll());
          std::map<Tuple, double> p_c;
          for (const ContribView& cv : view) {
            std::set<Tuple> distinct(cv.rows->begin(), cv.rows->end());
            for (const Tuple& t : distinct) p_c[t] += cv.probability;
          }
          for (const auto& [t, p] : p_c) {
            auto [it, inserted] = not_prob.emplace(t, 1.0);
            it->second *= (1.0 - p);
          }
        }
        bool zero_ary = dec.schema.num_columns() == 0;
        if (zero_ary) {
          double conf = certain_set.empty()
                            ? (not_prob.empty() ? 0.0
                                                : 1.0 - not_prob.begin()->second)
                            : 1.0;
          Schema schema;
          schema.AddColumn(Column("conf", DataType::kReal));
          Table result(std::move(schema));
          result.AppendUnchecked(Tuple({Value::Real(conf)}));
          out.combined = std::move(result);
        } else {
          Schema schema = dec.schema;
          schema.AddColumn(Column("conf", DataType::kReal));
          Table result(std::move(schema));
          std::map<Tuple, double> conf;
          for (const Tuple& t : certain_set) conf[t] = 1.0;
          for (const auto& [t, np] : not_prob) {
            if (certain_set.count(t)) continue;
            conf[t] = 1.0 - np;
          }
          for (const auto& [t, p] : conf) {
            Tuple extended = t;
            extended.Append(Value::Real(p));
            result.AppendUnchecked(std::move(extended));
          }
          out.combined = std::move(result);
        }
      }
    }
  }

  return out;
}

Result<std::vector<SelectEvaluation::GroupResult>>
DecomposedWorldSet::EvaluateGroupedStreaming(
    const sql::SelectStatement& stmt) const {
  MAYBMS_RETURN_NOT_OK(ValidateWorldOps(stmt));
  if (engine::HasWorldOps(*stmt.group_worlds_by)) {
    return Status::Unsupported(
        "the GROUP WORLDS BY query must be a plain SQL query");
  }
  std::unique_ptr<sql::SelectStatement> core = StripWorldOps(stmt);
  std::set<std::string> referenced;
  CollectReferencedRelations(stmt, &referenced);
  std::vector<size_t> relevant = RelevantComponents(referenced);

  // The shared grouped accumulator (worlds/combiner.h): one combiner per
  // distinct group key, fed unnormalized probabilities, normalized per
  // group at Finish — identical semantics on both engines.
  GroupedQuantifierCombiner grouped(stmt.quantifier);

  if (relevant.empty()) {
    // Entirely certain input: every world computes the same answer and
    // the same group key — a single group of probability one.
    MAYBMS_ASSIGN_OR_RETURN(Table result,
                            engine::ExecuteSelect(*core, certain_));
    if (stmt.assert_condition) {
      engine::EvalContext ctx{&certain_, nullptr, nullptr, nullptr, nullptr,
                              nullptr};
      MAYBMS_ASSIGN_OR_RETURN(
          Trivalent keep, engine::EvalPredicate(*stmt.assert_condition, ctx));
      if (keep != Trivalent::kTrue) {
        return Status::EmptyWorldSet("assert eliminated every world");
      }
    }
    MAYBMS_ASSIGN_OR_RETURN(
        Table key, engine::ExecuteSelect(*stmt.group_worlds_by, certain_));
    MAYBMS_RETURN_NOT_OK(grouped.Feed(1.0, result, key));
    return grouped.Finish();
  }

  // Merge the relevant sub-product (the group key needs every local
  // world), then stream: each local world's answer is combined into its
  // group's accumulator and dropped — `merged.results` never exists.
  MAYBMS_ASSIGN_OR_RETURN(Component merged_src, MergeRelevant(relevant));
  MAYBMS_ASSIGN_OR_RETURN(engine::PreparedSelect core_plan,
                          engine::PreparedSelect::Prepare(*core, certain_));

  // Parallel streaming: per-chunk grouped combiners merged in chunk order
  // reproduce the sequential feed order; prepared plans and subquery
  // caches are per slot. The group plan stays lazily prepared at a slot's
  // first *surviving* world — no survivors means no preparation, exactly
  // as in the sequential path.
  base::ThreadPool& pool = base::ThreadPool::Shared();
  const size_t slots = pool.Slots(threads_);
  const size_t n = merged_src.size();
  std::vector<std::optional<engine::PreparedSelect>> core_plans(slots);
  core_plans[0].emplace(std::move(core_plan));
  std::vector<std::optional<engine::PreparedSelect>> group_plans(slots);
  std::vector<engine::SubqueryPlanCache> assert_plans(slots);
  std::vector<std::optional<GroupedQuantifierCombiner>> chunks(
      base::ThreadPool::NumChunks(n));

  MAYBMS_RETURN_NOT_OK(pool.ParallelFor(
      n, threads_, [&](size_t i, size_t slot, size_t chunk) -> Status {
        if (!core_plans[slot].has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(
              core_plans[slot], engine::PreparedSelect::Prepare(*core,
                                                                certain_));
        }
        const Alternative& alt = merged_src.alternatives[i];
        Database local = BuildLocalDatabase({&alt});
        MAYBMS_ASSIGN_OR_RETURN(Table result, core_plans[slot]->Execute(local));
        MAYBMS_RETURN_NOT_OK(
            base::GovernChargeBytes(base::EstimateTableBytes(
                result.num_rows(), result.schema().num_columns())));
        if (stmt.assert_condition) {
          engine::SubqueryCache assert_cache(&assert_plans[slot]);
          engine::EvalContext ctx{&local,  nullptr, nullptr,
                                  nullptr, nullptr, &assert_cache};
          MAYBMS_ASSIGN_OR_RETURN(
              Trivalent keep,
              engine::EvalPredicate(*stmt.assert_condition, ctx));
          if (keep != Trivalent::kTrue) return Status::OK();
        }
        if (!group_plans[slot].has_value()) {
          MAYBMS_ASSIGN_OR_RETURN(group_plans[slot],
                                  engine::PreparedSelect::Prepare(
                                      *stmt.group_worlds_by, certain_));
        }
        MAYBMS_ASSIGN_OR_RETURN(Table answer, group_plans[slot]->Execute(local));
        if (!chunks[chunk].has_value()) chunks[chunk].emplace(stmt.quantifier);
        return chunks[chunk]->Feed(alt.probability, result, answer);
      }));
  for (auto& c : chunks) {
    if (c.has_value()) MAYBMS_RETURN_NOT_OK(grouped.Merge(std::move(*c)));
  }

  if (stmt.assert_condition && grouped.worlds_fed() == 0) {
    return Status::EmptyWorldSet("assert eliminated every world");
  }
  return grouped.Finish();
}

Result<SelectEvaluation> DecomposedWorldSet::EvaluateSelect(
    const sql::SelectStatement& stmt, size_t max_worlds) const {
  if (stmt.group_worlds_by && stmt.quantifier != sql::WorldQuantifier::kNone &&
      !stmt.repair.has_value() && !stmt.choice.has_value() &&
      !ReferencesInternalResult(stmt)) {
    MAYBMS_ASSIGN_OR_RETURN(std::vector<SelectEvaluation::GroupResult> groups,
                            EvaluateGroupedStreaming(stmt));
    SelectEvaluation eval;
    eval.groups = std::move(groups);
    return eval;
  }
  MAYBMS_ASSIGN_OR_RETURN(PipelineOutput out, RunPipeline(stmt, "__result"));
  SelectEvaluation eval;
  eval.combined = std::move(out.combined);
  eval.groups = std::move(out.groups);
  if (eval.combined.has_value() || !eval.groups.empty()) {
    if (!eval.groups.empty() && !eval.combined.has_value()) {
      // Groups carry the results; leave per_world empty.
      return eval;
    }
    return eval;
  }

  if (out.certain_result.has_value()) {
    eval.per_world.emplace_back(1.0, std::move(*out.certain_result));
    return eval;
  }

  if (out.merged.has_value()) {
    const MergedResult& merged = *out.merged;
    for (size_t i = 0; i < merged.component.alternatives.size(); ++i) {
      if (eval.per_world.size() >= max_worlds) {
        eval.truncated = true;
        break;
      }
      MAYBMS_RETURN_NOT_OK(base::GovernPoll());
      eval.per_world.emplace_back(merged.component.alternatives[i].probability,
                                  merged.results[i]);
    }
    return eval;
  }

  // Decomposed result: enumerate the product of the involved components
  // only (all other components leave the answer unchanged).
  const DecomposedResult& dec = *out.decomposed;
  struct Involved {
    std::vector<double> probs;
    std::vector<const std::vector<Tuple>*> rows;
  };
  std::vector<Involved> involved;
  for (size_t k = 0; k < dec.component_indices.size(); ++k) {
    const Component& comp = components_[dec.component_indices[k]];
    Involved inv;
    for (size_t j = 0; j < comp.size(); ++j) {
      inv.probs.push_back(comp.alternatives[j].probability);
      inv.rows.push_back(&dec.contributions[k][j]);
    }
    involved.push_back(std::move(inv));
  }
  static const std::vector<Tuple>* const kNoRows = new std::vector<Tuple>();
  for (const Component& comp : dec.new_components) {
    Involved inv;
    for (const Alternative& alt : comp.alternatives) {
      inv.probs.push_back(alt.probability);
      const std::vector<Tuple>* rows = alt.TuplesFor(kResultKey);
      inv.rows.push_back(rows != nullptr ? rows : kNoRows);
    }
    involved.push_back(std::move(inv));
  }

  std::vector<size_t> pick(involved.size(), 0);
  while (true) {
    if (eval.per_world.size() >= max_worlds) {
      eval.truncated = true;
      break;
    }
    MAYBMS_RETURN_NOT_OK(base::GovernChargeWorlds(1));
    double prob = 1.0;
    Table result(dec.schema);
    for (const Tuple& t : dec.certain_rows) result.AppendUnchecked(t);
    for (size_t k = 0; k < involved.size(); ++k) {
      prob *= involved[k].probs[pick[k]];
      for (const Tuple& t : *involved[k].rows[pick[k]]) {
        result.AppendUnchecked(t);
      }
    }
    eval.per_world.emplace_back(prob, std::move(result));

    size_t k = 0;
    for (; k < involved.size(); ++k) {
      if (++pick[k] < involved[k].probs.size()) break;
      pick[k] = 0;
    }
    if (k == involved.size()) break;
  }
  return eval;
}

Status DecomposedWorldSet::MaterializeSelect(const std::string& name,
                                             const sql::SelectStatement& stmt) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  MAYBMS_ASSIGN_OR_RETURN(PipelineOutput out, RunPipeline(stmt, name));
  const std::string lower = AsciiToLower(name);
  const bool structure_dirty = stmt.assert_condition != nullptr;

  auto commit_merged = [&](MergedResult& merged, bool store_results) {
    // Replace the merged-away components.
    std::vector<size_t> replaced = merged.replaced;
    std::sort(replaced.rbegin(), replaced.rend());
    for (size_t i : replaced) {
      components_.erase(components_.begin() + static_cast<long>(i));
    }
    Schema schema = merged.results.empty() ? Schema() :
                    merged.results[0].schema();
    if (store_results) {
      for (size_t i = 0; i < merged.component.alternatives.size(); ++i) {
        merged.component.alternatives[i].tuples[lower] =
            merged.results[i].rows();
      }
    }
    certain_.PutRelation(name, Table(schema));
    components_.push_back(std::move(merged.component));
  };

  if (!out.groups.empty()) {
    // Per-group results: store per alternative (group-combined already).
    if (out.merged.has_value()) {
      commit_merged(*out.merged, /*store_results=*/true);
    } else if (out.certain_result.has_value()) {
      certain_.PutRelation(name, std::move(*out.certain_result));
    }
    return Status::OK();
  }

  if (out.combined.has_value()) {
    // Quantifier collapsed the answer to a certain relation.
    if (structure_dirty && out.merged.has_value()) {
      commit_merged(*out.merged, /*store_results=*/false);
      // Overwrite the placeholder commit_merged stored: a handle swap,
      // not a clone-and-assign.
      certain_.PutRelation(name, std::move(*out.combined));
    } else {
      certain_.PutRelation(name, std::move(*out.combined));
    }
    return Status::OK();
  }

  if (out.certain_result.has_value()) {
    certain_.PutRelation(name, std::move(*out.certain_result));
    return Status::OK();
  }

  if (out.merged.has_value()) {
    commit_merged(*out.merged, /*store_results=*/true);
    return Status::OK();
  }

  // Decomposed result: attach contributions in place (fast path) and/or
  // append the new repair/choice components.
  DecomposedResult& dec = *out.decomposed;
  certain_.PutRelation(name, Table(dec.schema, std::move(dec.certain_rows)));
  for (size_t k = 0; k < dec.component_indices.size(); ++k) {
    Component& comp = components_[dec.component_indices[k]];
    for (size_t j = 0; j < comp.size(); ++j) {
      comp.alternatives[j].tuples[lower] = std::move(dec.contributions[k][j]);
    }
  }
  for (Component& comp : dec.new_components) {
    for (Alternative& alt : comp.alternatives) {
      auto it = alt.tuples.find(kResultKey);
      if (it != alt.tuples.end()) {
        alt.tuples[lower] = std::move(it->second);
        alt.tuples.erase(kResultKey);
      } else {
        alt.tuples[lower] = {};
      }
    }
    components_.push_back(std::move(comp));
  }
  return Status::OK();
}

Result<storage::DurableSnapshot> DecomposedWorldSet::ToSnapshot() const {
  storage::DurableSnapshot snapshot;
  snapshot.engine = EngineName();
  // The certain core is the only place relation instances (and schemas)
  // live; components carry schema-less per-alternative extra tuples.
  std::map<const Table*, size_t> index;
  for (const std::string& name : certain_.RelationNames()) {
    MAYBMS_ASSIGN_OR_RETURN(Database::TableHandle handle,
                            certain_.GetRelationHandle(name));
    auto [it, inserted] = index.emplace(handle.get(), snapshot.tables.size());
    if (inserted) snapshot.tables.push_back(std::move(handle));
    snapshot.certain.push_back({name, it->second});
  }
  snapshot.components.reserve(components_.size());
  for (const Component& component : components_) {
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    storage::DurableSnapshot::ComponentRef component_ref;
    component_ref.alternatives.reserve(component.alternatives.size());
    for (const Alternative& alt : component.alternatives) {
      storage::DurableSnapshot::AlternativeRef alt_ref;
      alt_ref.probability = alt.probability;
      // std::map iteration: contributions in sorted-key order, restored
      // into the same sorted map — deterministic round trip.
      for (const auto& [relation, tuples] : alt.tuples) {
        alt_ref.contributions.emplace_back(relation, tuples);
      }
      component_ref.alternatives.push_back(std::move(alt_ref));
    }
    snapshot.components.push_back(std::move(component_ref));
  }
  return snapshot;
}

Status DecomposedWorldSet::FromSnapshot(
    const storage::DurableSnapshot& snapshot) {
  if (snapshot.engine != EngineName()) {
    return Status::InvalidArgument(
        "cannot restore a '" + snapshot.engine +
        "' snapshot into the decomposed engine");
  }
  Database certain;
  for (const auto& relation : snapshot.certain) {
    if (relation.table_index >= snapshot.tables.size()) {
      return Status::DataLoss(
          "decomposed snapshot restore: table index out of range");
    }
    certain.PutRelation(relation.name, snapshot.tables[relation.table_index]);
  }
  std::vector<Component> components;
  components.reserve(snapshot.components.size());
  for (const auto& component_ref : snapshot.components) {
    // Builds locals and swaps at the end — a poll abort here cannot tear
    // the live set. The post-commit reload runs shielded (see
    // isql::Session::PersistAndReload).
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    Component component;
    component.alternatives.reserve(component_ref.alternatives.size());
    for (const auto& alt_ref : component_ref.alternatives) {
      Alternative alt;
      // Probabilities adopted verbatim — no Normalize() — so restored
      // world probabilities are bit-identical.
      alt.probability = alt_ref.probability;
      for (const auto& [relation, tuples] : alt_ref.contributions) {
        alt.tuples[relation] = tuples;
      }
      component.alternatives.push_back(std::move(alt));
    }
    components.push_back(std::move(component));
  }
  certain_ = std::move(certain);
  components_ = std::move(components);
  return Status::OK();
}

}  // namespace maybms::worlds
