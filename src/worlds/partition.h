#ifndef MAYBMS_WORLDS_PARTITION_H_
#define MAYBMS_WORLDS_PARTITION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/result.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace maybms::worlds {

/// One weighted way of choosing rows out of a partition block.
struct WeightedChoice {
  std::vector<size_t> row_indices;  // indices into the source table
  double probability = 1.0;         // normalized within the block
};

/// A maximal set of mutually exclusive choices (one per created world).
struct PartitionBlock {
  std::vector<WeightedChoice> choices;
};

/// Computes the `repair by key` partition of `source` (paper Ex. 2.3/2.4):
/// one block per distinct key value; within a block one choice per tuple,
/// weighted by the weight column (uniform if absent). NULL keys form their
/// own group per NULL-containing tuple? No — NULL key values group
/// together like ordinary values under total-order semantics.
///
/// The repaired world-set is the product of the blocks.
Result<std::vector<PartitionBlock>> RepairPartition(
    const Table& source, const sql::RepairClause& clause);

/// Computes the `choice of` partition (paper Ex. 2.6/2.7): a single block
/// with one choice per distinct value combination of the chosen columns;
/// each choice selects all tuples with that value, weighted by the sum of
/// the weight column over the partition (uniform if absent).
Result<std::vector<PartitionBlock>> ChoicePartition(
    const Table& source, const sql::ChoiceClause& clause);

/// Resolves `names` to column indices of `schema` (unqualified lookup).
Result<std::vector<size_t>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names);

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_PARTITION_H_
