#ifndef MAYBMS_WORLDS_DECOMPOSED_WORLD_SET_H_
#define MAYBMS_WORLDS_DECOMPOSED_WORLD_SET_H_

// World-set decompositions (the paper's core data structure): the
// world-set is a product of independent components over a certain core
// database.
//
// Ownership and invariants:
//  * `certain_` owns every relation's schema and its certain tuples;
//    components only ever hold per-alternative *extra* tuples keyed by
//    (lower-cased) relation name. The schema catalog therefore lives in
//    exactly one place, identical for every world — the invariant the
//    prepared-statement layer (engine/prepared.h) relies on when it
//    plans against `certain_` and executes against local worlds.
//  * Components are independent by construction: each alternative's
//    probabilities sum to 1 within its component, and world probability
//    is the product over components. Operations that would correlate
//    components (joins of uncertain relations, aggregates over them,
//    assert, group worlds by, DML touching them) first merge the
//    RELEVANT components only — never the full product.
//  * Query plans are schema-only and never capture alternative contents;
//    per-world state (subquery materializations, hash indexes) lives in
//    per-execution caches (engine/planner.h).
//
// Trivalent logic / NULL keys follow the per-world executor everywhere:
// a local world is an ordinary database (certain core + chosen
// alternatives' tuples), so NULL semantics cannot diverge between the
// fast per-alternative path and full enumeration — the differential
// conformance suite enforces this against the explicit engine.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "worlds/component.h"
#include "worlds/world_set.h"

namespace maybms::worlds {

/// MayBMS-style world-set decomposition (WSD): the world-set is the
/// product of independent components over a certain core database.
///
///   worlds = { certain ⊎ a_1 ⊎ ... ⊎ a_m : a_i ∈ component_i }
///
/// `repair by key` over a certain relation creates one component per key
/// group; `choice of` creates a single component — so a repair with n key
/// groups of size g represents g^n worlds in O(n·g) space, the companion
/// ICDE'07 paper's "10^10^6 worlds" point.
///
/// Query processing avoids world enumeration wherever the paper's
/// operations allow:
///  * selections/projections over one uncertain relation are pushed into
///    each alternative (no component merging — the fast path);
///  * possible/certain/conf over decomposable results use per-component
///    math (conf uses the closed form 1 − ∏_c (1 − p_c(t)));
///  * only `assert`, `group worlds by`, and queries that genuinely
///    correlate components (joins of uncertain relations, aggregates over
///    them, subqueries) enumerate the *relevant* sub-product and merge
///    those components — never the full world-set.
class DecomposedWorldSet : public WorldSet {
 public:
  /// `max_merge` caps the alternatives a single merge may produce (the
  /// correlated sub-product); 0 = unlimited. `threads` caps the shared
  /// thread pool's parallelism for per-alternative loops (0 =
  /// MAYBMS_THREADS / hardware); results and errors are byte-identical at
  /// every thread count (see base/thread_pool.h).
  static constexpr size_t kDefaultMaxMerge = 1 << 20;

  explicit DecomposedWorldSet(size_t max_merge = kDefaultMaxMerge,
                              size_t threads = 0);

  std::unique_ptr<WorldSet> Clone() const override;
  std::string EngineName() const override { return "decomposed"; }

  uint64_t NumWorlds() const override;
  double Log10NumWorlds() const override;
  std::vector<std::string> RelationNames() const override;
  bool HasRelation(const std::string& name) const override;
  Result<std::vector<World>> MaterializeWorlds(
      size_t max_worlds, bool* truncated = nullptr) const override;
  Result<std::vector<World>> TopKWorlds(size_t k) const override;
  Result<World> SampleWorld(base::SplitMix64* rng) const override;

  Status CreateBaseTable(const std::string& name,
                         const Table& prototype) override;
  Status DropRelation(const std::string& name) override;
  Status ApplyDml(const sql::Statement& stmt, const Catalog& catalog) override;

  Result<SelectEvaluation> EvaluateSelect(const sql::SelectStatement& stmt,
                                          size_t max_worlds) const override;
  Status MaterializeSelect(const std::string& name,
                           const sql::SelectStatement& stmt) override;

  Result<storage::DurableSnapshot> ToSnapshot() const override;
  Status FromSnapshot(const storage::DurableSnapshot& snapshot) override;

  /// Introspection for tests and benchmarks.
  const Database& certain_part() const { return certain_; }
  const std::vector<Component>& components() const { return components_; }
  size_t num_components() const { return components_.size(); }

 private:
  /// The decomposed (non-merged) form of a query result: a certain part
  /// plus per-alternative contributions aligned with components.
  /// `components[i]`'s alternative j contributes `contributions[i][j]`.
  struct DecomposedResult {
    Schema schema;
    std::vector<Tuple> certain_rows;
    std::vector<size_t> component_indices;            // into components_
    std::vector<std::vector<std::vector<Tuple>>> contributions;
    std::vector<Component> new_components;            // repair/choice output
  };

  /// The merged form: one flattened component (replacing `replaced`
  /// components of components_) whose alternative i has full result table
  /// `results[i]`.
  struct MergedResult {
    Component component;
    std::vector<Table> results;
    std::vector<size_t> replaced;  // indices into components_
  };

  struct PipelineOutput {
    std::optional<Table> certain_result;      // result certain in all worlds
    std::optional<DecomposedResult> decomposed;
    std::optional<MergedResult> merged;
    std::optional<Table> combined;            // quantifier answer
    std::vector<SelectEvaluation::GroupResult> groups;
  };

  /// `result_name` is the relation name under which the statement's
  /// per-world result is visible to `assert` conditions and
  /// `group worlds by` queries (the CREATE TABLE target name, or
  /// "__result" for plain selects) — mirroring the explicit engine.
  Result<PipelineOutput> RunPipeline(const sql::SelectStatement& stmt,
                                     const std::string& result_name) const;

  /// Streaming grouped-quantifier evaluation: one pass over the local
  /// worlds of the relevant sub-product keeping a per-group-key
  /// QuantifierCombiner (fed unnormalized alternative probabilities,
  /// normalized per group at Finish) — per-alternative answers are never
  /// materialized as a batch. Used by EvaluateSelect for grouped
  /// statements without repair/choice whose assert/grouping queries do
  /// not reference the internal "__result" relation; everything else
  /// falls back to the materializing pipeline.
  Result<std::vector<SelectEvaluation::GroupResult>> EvaluateGroupedStreaming(
      const sql::SelectStatement& stmt) const;

  /// Indices of components contributing to any of `relations` (lower-case).
  std::vector<size_t> RelevantComponents(
      const std::set<std::string>& relations) const;

  /// Builds the database of one local world: the certain core plus the
  /// contributions of the given alternatives.
  Database BuildLocalDatabase(const std::vector<const Alternative*>& chosen)
      const;

  /// Merges the given components into a single flattened component
  /// (enumerating their sub-product, capped by max_merge_).
  Result<Component> MergeRelevant(const std::vector<size_t>& indices) const;

  /// True if the statement qualifies for the per-alternative push-down
  /// fast path (single uncertain relation scan, per-tuple predicate, plain
  /// projection).
  bool QualifiesForFastPath(const sql::SelectStatement& stmt,
                            const std::set<std::string>& referenced) const;

  Database certain_;
  std::vector<Component> components_;
  size_t max_merge_;
  size_t threads_;  // per-call parallelism cap; 0 = default
};

}  // namespace maybms::worlds

#endif  // MAYBMS_WORLDS_DECOMPOSED_WORLD_SET_H_
