#ifndef MAYBMS_STORAGE_CATALOG_H_
#define MAYBMS_STORAGE_CATALOG_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "storage/table.h"

namespace maybms {

/// The relation contents of one possible world: relation name -> instance.
/// Names are case-insensitive (stored lower-cased, original case kept in
/// the table's display name map).
///
/// Storage invariant — copy-on-write structural sharing:
///  * Entries hold `std::shared_ptr<const Table>`. Copying a Database
///    copies handles, never rows: a World/Database copy is O(#relations)
///    pointer bumps, so the explicit engine's repair/choice fan-out and
///    snapshot-style writers share every untouched relation between
///    parent and derived worlds.
///  * Tables are IMMUTABLE once shared; mutate only through
///    MutableRelation(), which clones the instance first iff any other
///    Database (or handle holder) still references it. Writers that
///    rebuild a relation wholesale use PutRelation(), which swaps the
///    handle without touching the old instance.
///  * GetRelation() borrows a raw `const Table*` through the handle — no
///    refcount churn in per-world read loops (the prepared-statement View
///    fast path depends on this).
///
/// Concurrency invariant (parallel per-world execution,
/// base/thread_pool.h): a Database that is visible to more than one
/// thread is READ-ONLY for the duration of the parallel region — workers
/// only ever copy it (handle bumps; shared_ptr refcounts are atomic) and
/// mutate their private copies. GetRelation's borrowed pointer is safe
/// precisely because no concurrent PutRelation/MutableRelation/
/// DropRelation may swap the handle out from under it: all writes to a
/// shared Database (world commit, catalog swap) happen single-threaded,
/// after the parallel loop has joined. A worker's MutableRelation on its
/// private copy always clones, never mutates in place, because the
/// parent's handle keeps the use count above one. The TSan CI job runs
/// the world-storage and parallel-execution suites against this contract.
class Database {
 public:
  /// Shared, immutable relation instance. The same handle may be stored
  /// in any number of Databases (worlds).
  using TableHandle = std::shared_ptr<const Table>;

  Database() = default;

  bool HasRelation(const std::string& name) const;

  /// Returns the relation or NotFound. Borrows through the shared handle;
  /// the pointer is invalidated by PutRelation/MutableRelation/
  /// DropRelation on the same name.
  Result<const Table*> GetRelation(const std::string& name) const;

  /// Returns the owning handle (shares the instance); used to store one
  /// result relation into many worlds without copying rows.
  Result<TableHandle> GetRelationHandle(const std::string& name) const;

  /// Copy-on-unshared-write accessor: returns a mutable pointer to this
  /// Database's private instance of the relation, cloning the rows first
  /// iff the instance is shared with anyone else. The only sanctioned way
  /// to mutate a stored table in place.
  Result<Table*> MutableRelation(const std::string& name);

  /// Adds or replaces a relation (wraps the value in a fresh handle).
  void PutRelation(const std::string& name, Table table);

  /// Adds or replaces a relation, sharing an existing instance.
  void PutRelation(const std::string& name, TableHandle table);

  Status DropRelation(const std::string& name);

  /// Relation names in deterministic (sorted) order, original case.
  std::vector<std::string> RelationNames() const;

  size_t num_relations() const { return relations_.size(); }

  /// Two worlds are equal iff they have the same relations with set-equal
  /// contents. Used by group-worlds-by and tests.
  bool ContentEquals(const Database& other) const;

 private:
  struct Entry {
    std::string display_name;
    TableHandle table;
  };
  std::map<std::string, Entry> relations_;  // key: lower-cased name
};

/// Kinds of integrity constraints enforced on insert/update.
enum class ConstraintKind {
  kPrimaryKey,  // uniqueness + NOT NULL on the key columns
  kUnique,
  kNotNull,
};

/// A declared constraint over named columns of one table.
struct Constraint {
  ConstraintKind kind = ConstraintKind::kUnique;
  std::vector<std::string> columns;
};

/// World-set-level metadata shared by all worlds: which constraints each
/// relation carries. (Relation *schemas* travel with the Table instances;
/// view definitions live in the isql layer because views may contain
/// world-set operations.)
class Catalog {
 public:
  void AddConstraint(const std::string& table_name, Constraint constraint);

  const std::vector<Constraint>& ConstraintsFor(
      const std::string& table_name) const;

  void DropConstraints(const std::string& table_name);

 private:
  std::map<std::string, std::vector<Constraint>> constraints_;  // lower-case
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_CATALOG_H_
