#ifndef MAYBMS_STORAGE_CATALOG_H_
#define MAYBMS_STORAGE_CATALOG_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "storage/table.h"

namespace maybms {

/// The relation contents of one possible world: relation name -> instance.
/// Names are case-insensitive (stored lower-cased, original case kept in
/// the table's display name map).
class Database {
 public:
  Database() = default;

  bool HasRelation(const std::string& name) const;

  /// Returns the relation or NotFound.
  Result<const Table*> GetRelation(const std::string& name) const;
  Result<Table*> GetMutableRelation(const std::string& name);

  /// Adds or replaces a relation.
  void PutRelation(const std::string& name, Table table);

  Status DropRelation(const std::string& name);

  /// Relation names in deterministic (sorted) order, original case.
  std::vector<std::string> RelationNames() const;

  size_t num_relations() const { return relations_.size(); }

  /// Two worlds are equal iff they have the same relations with set-equal
  /// contents. Used by group-worlds-by and tests.
  bool ContentEquals(const Database& other) const;

 private:
  struct Entry {
    std::string display_name;
    Table table;
  };
  std::map<std::string, Entry> relations_;  // key: lower-cased name
};

/// Kinds of integrity constraints enforced on insert/update.
enum class ConstraintKind {
  kPrimaryKey,  // uniqueness + NOT NULL on the key columns
  kUnique,
  kNotNull,
};

/// A declared constraint over named columns of one table.
struct Constraint {
  ConstraintKind kind = ConstraintKind::kUnique;
  std::vector<std::string> columns;
};

/// World-set-level metadata shared by all worlds: which constraints each
/// relation carries. (Relation *schemas* travel with the Table instances;
/// view definitions live in the isql layer because views may contain
/// world-set operations.)
class Catalog {
 public:
  void AddConstraint(const std::string& table_name, Constraint constraint);

  const std::vector<Constraint>& ConstraintsFor(
      const std::string& table_name) const;

  void DropConstraints(const std::string& table_name);

 private:
  std::map<std::string, std::vector<Constraint>> constraints_;  // lower-case
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_CATALOG_H_
