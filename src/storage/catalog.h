#ifndef MAYBMS_STORAGE_CATALOG_H_
#define MAYBMS_STORAGE_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/dcheck.h"
#include "base/parallel_region.h"
#include "base/result.h"
#include "storage/table.h"

namespace maybms {

/// The relation contents of one possible world: relation name -> instance.
/// Names are case-insensitive (stored lower-cased, original case kept in
/// the table's display name map).
///
/// Storage invariant — copy-on-write structural sharing:
///  * Entries hold `std::shared_ptr<const Table>`. Copying a Database
///    copies handles, never rows: a World/Database copy is O(#relations)
///    pointer bumps, so the explicit engine's repair/choice fan-out and
///    snapshot-style writers share every untouched relation between
///    parent and derived worlds.
///  * Tables are IMMUTABLE once shared; mutate only through
///    MutableRelation(), which clones the instance first iff any other
///    Database (or handle holder) still references it. Writers that
///    rebuild a relation wholesale use PutRelation(), which swaps the
///    handle without touching the old instance.
///  * GetRelation() borrows a raw `const Table*` through the handle — no
///    refcount churn in per-world read loops (the prepared-statement View
///    fast path depends on this).
///
/// Concurrency invariant (parallel per-world execution,
/// base/thread_pool.h): a Database that is visible to more than one
/// thread is READ-ONLY for the duration of the parallel region — workers
/// only ever copy it (handle bumps; shared_ptr refcounts are atomic) and
/// mutate their private copies. GetRelation's borrowed pointer is safe
/// precisely because no concurrent PutRelation/MutableRelation/
/// DropRelation may swap the handle out from under it: all writes to a
/// shared Database (world commit, catalog swap) happen single-threaded,
/// after the parallel loop has joined. A worker's MutableRelation on its
/// private copy always clones, never mutates in place, because the
/// parent's handle keeps the use count above one. The TSan CI job runs
/// the world-storage and parallel-execution suites against this contract.
///
/// Debug enforcement (compiled out in Release):
///  * Parallel-region trap: every Database is stamped with the region
///    token (base/parallel_region.h) under which it was constructed or
///    assigned. MutableRelation/PutRelation/DropRelation trap when called
///    inside a parallel region on a Database the executing thread did not
///    itself create within that region — i.e. on anything shared across
///    the region, such as the live world vector a commit path must only
///    touch after the join. Whole-object assignment re-stamps and does
///    not trap (scattering results into a pre-sized commit log, each slot
///    touched by exactly one thread, is the sanctioned writer pattern).
///  * COW trap: Table's debug shared-marker (storage/table.h) is set by
///    Database copies and shared-handle stores, and cleared only by
///    MutableRelation once unique ownership is established, so in-place
///    mutation of an instance other worlds still see aborts immediately.
/// tests/invariant_traps_test.cc proves both traps fire.
class Database {
 public:
  /// Shared, immutable relation instance. The same handle may be stored
  /// in any number of Databases (worlds).
  using TableHandle = std::shared_ptr<const Table>;

  Database() = default;

#ifndef NDEBUG
  // Hand-written only in Debug: stamp with the CURRENT region token
  // (never the source's) and maintain the tables' shared-markers. Release
  // keeps the implicit members.
  Database(const Database& other) : relations_(other.relations_) {
    DebugMarkTablesShared();
  }
  Database& operator=(const Database& other) {
    relations_ = other.relations_;
    debug_region_token_ = base::CurrentRegionToken();
    DebugMarkTablesShared();
    return *this;
  }
  Database(Database&& other) noexcept : relations_(std::move(other.relations_)) {}
  Database& operator=(Database&& other) noexcept {
    relations_ = std::move(other.relations_);
    debug_region_token_ = base::CurrentRegionToken();
    return *this;
  }
#endif

  bool HasRelation(const std::string& name) const;

  /// Returns the relation or NotFound. Borrows through the shared handle;
  /// the pointer is invalidated by PutRelation/MutableRelation/
  /// DropRelation on the same name.
  Result<const Table*> GetRelation(const std::string& name) const;

  /// Returns the owning handle (shares the instance); used to store one
  /// result relation into many worlds without copying rows.
  Result<TableHandle> GetRelationHandle(const std::string& name) const;

  /// Copy-on-unshared-write accessor: returns a mutable pointer to this
  /// Database's private instance of the relation, cloning the rows first
  /// iff the instance is shared with anyone else. The only sanctioned way
  /// to mutate a stored table in place.
  Result<Table*> MutableRelation(const std::string& name);

  /// Adds or replaces a relation (wraps the value in a fresh handle).
  void PutRelation(const std::string& name, Table table);

  /// Adds or replaces a relation, sharing an existing instance.
  void PutRelation(const std::string& name, TableHandle table);

  Status DropRelation(const std::string& name);

  /// Relation names in deterministic (sorted) order, original case.
  std::vector<std::string> RelationNames() const;

  size_t num_relations() const { return relations_.size(); }

  /// Two worlds are equal iff they have the same relations with set-equal
  /// contents. Used by group-worlds-by and tests.
  bool ContentEquals(const Database& other) const;

 private:
  struct Entry {
    std::string display_name;
    TableHandle table;
  };

#ifndef NDEBUG
  /// Traps when a mutating entry point runs inside a parallel region on a
  /// Database this thread did not create within that region.
  void AssertMutableInRegion() const {
    MAYBMS_DCHECK(base::CurrentRegionToken() == 0 ||
                      debug_region_token_ == base::CurrentRegionToken(),
                  "Database mutated during a parallel region — shared "
                  "Databases are READ-ONLY while a ParallelFor runs; "
                  "workers may only mutate copies they created inside the "
                  "region, and commits must happen after the join "
                  "(storage/catalog.h concurrency invariant)");
  }
  /// After a Database copy, every instance is reachable from both sides.
  void DebugMarkTablesShared() const {
    for (const auto& [key, entry] : relations_) entry.table->DebugMarkShared();
  }
#else
  void AssertMutableInRegion() const {}
  void DebugMarkTablesShared() const {}
#endif

  std::map<std::string, Entry> relations_;  // key: lower-cased name
#ifndef NDEBUG
  // Region token (base/parallel_region.h) current when this Database was
  // constructed/assigned; 0 when created outside any parallel region.
  uint64_t debug_region_token_ = base::CurrentRegionToken();
#endif
};

/// Kinds of integrity constraints enforced on insert/update.
enum class ConstraintKind {
  kPrimaryKey,  // uniqueness + NOT NULL on the key columns
  kUnique,
  kNotNull,
};

/// A declared constraint over named columns of one table.
struct Constraint {
  ConstraintKind kind = ConstraintKind::kUnique;
  std::vector<std::string> columns;
};

/// World-set-level metadata shared by all worlds: which constraints each
/// relation carries. (Relation *schemas* travel with the Table instances;
/// view definitions live in the isql layer because views may contain
/// world-set operations.)
class Catalog {
 public:
  void AddConstraint(const std::string& table_name, Constraint constraint);

  const std::vector<Constraint>& ConstraintsFor(
      const std::string& table_name) const;

  void DropConstraints(const std::string& table_name);

  /// Full constraint map (lower-cased table name -> constraints), in
  /// deterministic order; used by the durable-storage metadata round trip.
  const std::map<std::string, std::vector<Constraint>>& AllConstraints() const;

  /// Drops every constraint (snapshot restore replaces them wholesale).
  void Clear();

 private:
  std::map<std::string, std::vector<Constraint>> constraints_;  // lower-case
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_CATALOG_H_
