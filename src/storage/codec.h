#ifndef MAYBMS_STORAGE_CODEC_H_
#define MAYBMS_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace maybms::storage::codec {

/// Little-endian byte codec shared by the tuple/schema records
/// (storage/paged_table.cc) and the commit manifest (storage/store.cc).
/// Doubles travel as raw bit patterns — a restored probability is
/// bit-identical to what was written, never re-parsed text.

void PutU8(std::vector<std::byte>* out, uint8_t v);
void PutU16(std::vector<std::byte>* out, uint16_t v);
void PutU32(std::vector<std::byte>* out, uint32_t v);
void PutU64(std::vector<std::byte>* out, uint64_t v);
void PutDouble(std::vector<std::byte>* out, double v);
void PutString(std::vector<std::byte>* out, const std::string& s);

/// Bounds-checked cursor over encoded bytes. Every failure is kDataLoss:
/// the bytes came off a checksum-valid page, so a malformed encoding
/// means corruption beyond the checksum or an encoder bug — either way,
/// never silently misread.
class Reader {
 public:
  Reader(const std::byte* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<double> Double();
  Result<std::string> String();

  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n);

  const std::byte* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Self-describing tuple record: u16 arity, then per value a u8 type tag
/// and payload. These bytes are durable on disk; tags never change
/// meaning.
std::vector<std::byte> EncodeTuple(const Tuple& t);
Result<Tuple> DecodeTuple(const std::byte* data, size_t size);

/// Schema record: u16 column count, then per column
/// {u8 type tag, name, qualifier}.
std::vector<std::byte> EncodeSchema(const Schema& schema);
Result<Schema> DecodeSchema(const std::byte* data, size_t size);

}  // namespace maybms::storage::codec

#endif  // MAYBMS_STORAGE_CODEC_H_
