#include "storage/page.h"

#include <cstring>

namespace maybms::storage {

namespace {

// FNV-1a 64: tiny, dependency-free, and plenty for torn-write detection
// (this is an integrity check against partial writes and bit rot, not an
// adversarial MAC).
uint64_t Fnv1a64(const std::byte* data, size_t size, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint64_t>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr size_t kChecksumOffset = 8;

}  // namespace

uint16_t Page::ReadU16(size_t offset) const {
  uint16_t v;
  std::memcpy(&v, bytes_ + offset, sizeof(v));
  return v;
}
uint32_t Page::ReadU32(size_t offset) const {
  uint32_t v;
  std::memcpy(&v, bytes_ + offset, sizeof(v));
  return v;
}
uint64_t Page::ReadU64(size_t offset) const {
  uint64_t v;
  std::memcpy(&v, bytes_ + offset, sizeof(v));
  return v;
}
void Page::WriteU16(size_t offset, uint16_t v) {
  std::memcpy(bytes_ + offset, &v, sizeof(v));
}
void Page::WriteU32(size_t offset, uint32_t v) {
  std::memcpy(bytes_ + offset, &v, sizeof(v));
}
void Page::WriteU64(size_t offset, uint64_t v) {
  std::memcpy(bytes_ + offset, &v, sizeof(v));
}

void Page::Format(uint64_t page_id) {
  std::memset(bytes_, 0, kPageSize);
  WriteU32(0, kMagic);
  WriteU32(4, 1);  // layout version
  WriteU64(16, page_id);
  WriteU16(24, 0);                                   // num_slots
  WriteU16(26, static_cast<uint16_t>(kPageSize));    // free_end
}

size_t Page::FreeSpace() const {
  const size_t slots_end = kHeaderSize + kSlotSize * num_records();
  const size_t heap_start = free_end();
  if (heap_start < slots_end || heap_start > kPageSize) return 0;
  return heap_start - slots_end;
}

bool Page::AppendRecord(const void* data, size_t size) {
  if (!CanFit(size)) return false;
  const uint16_t slot = num_records();
  const uint16_t offset = static_cast<uint16_t>(free_end() - size);
  std::memcpy(bytes_ + offset, data, size);
  const size_t slot_pos = kHeaderSize + kSlotSize * slot;
  WriteU16(slot_pos, offset);
  WriteU16(slot_pos + 2, static_cast<uint16_t>(size));
  WriteU16(24, static_cast<uint16_t>(slot + 1));
  WriteU16(26, offset);
  return true;
}

Result<std::pair<const std::byte*, size_t>> Page::Record(uint16_t slot) const {
  if (slot >= num_records()) {
    return Status::DataLoss("page " + std::to_string(page_id()) +
                            ": record slot " + std::to_string(slot) +
                            " out of range");
  }
  const size_t slot_pos = kHeaderSize + kSlotSize * slot;
  const uint16_t offset = ReadU16(slot_pos);
  const uint16_t length = ReadU16(slot_pos + 2);
  if (offset < kHeaderSize || static_cast<size_t>(offset) + length > kPageSize) {
    return Status::DataLoss("page " + std::to_string(page_id()) +
                            ": record slot " + std::to_string(slot) +
                            " has out-of-bounds extent");
  }
  return std::make_pair(bytes_ + offset, static_cast<size_t>(length));
}

uint64_t Page::ComputeChecksum() const {
  // Checksum the page with the checksum field itself zeroed: hash the
  // bytes before and after the field in one chained pass.
  uint64_t h = Fnv1a64(bytes_, kChecksumOffset, kFnvOffsetBasis);
  const uint64_t zero = 0;
  h = Fnv1a64(reinterpret_cast<const std::byte*>(&zero), sizeof(zero), h);
  return Fnv1a64(bytes_ + kChecksumOffset + 8,
                 kPageSize - kChecksumOffset - 8, h);
}

void Page::SealChecksum() { WriteU64(kChecksumOffset, ComputeChecksum()); }

Status Page::VerifyChecksum(uint64_t expected_page_id) const {
  if (magic() != kMagic) {
    return Status::DataLoss("page " + std::to_string(expected_page_id) +
                            ": bad magic (torn or unformatted page)");
  }
  if (ReadU64(kChecksumOffset) != ComputeChecksum()) {
    return Status::DataLoss("page " + std::to_string(expected_page_id) +
                            ": checksum mismatch (torn write or bit rot)");
  }
  if (page_id() != expected_page_id) {
    return Status::DataLoss("page " + std::to_string(expected_page_id) +
                            ": stored id " + std::to_string(page_id()) +
                            " (misdirected write)");
  }
  return Status::OK();
}

}  // namespace maybms::storage
