#ifndef MAYBMS_STORAGE_PAGE_H_
#define MAYBMS_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

#include "base/result.h"

namespace maybms::storage {

/// Fixed page size of the durable storage layer. A multiple of 4096 so
/// page-aligned I/O stays O_DIRECT-friendly (every read/write the layer
/// issues is at a page_id * kPageSize offset with a 4096-aligned buffer).
inline constexpr size_t kPageSize = 8192;

/// A slotted page: fixed-size, self-validating unit of durable storage.
///
/// Layout (little-endian, offsets in bytes):
///
///   [0, 32)                header: magic, page id, checksum, slot count,
///                          free-space bounds
///   [32, 32 + 4*num_slots) slot directory, growing UP: each slot is
///                          {uint16 offset, uint16 length} of one record
///   [free_end, kPageSize)  record heap, growing DOWN from the page end
///
/// The checksum (FNV-1a 64 over the whole page with the checksum field
/// zeroed) is sealed by the buffer pool right before a frame is written
/// and verified on every read, so a torn or bit-flipped page is DETECTED
/// (Status kDataLoss) and never silently decoded. Records are opaque byte
/// strings; the tuple codec lives in storage/paged_table.h.
///
/// Pages are plain trivially-copyable buffers — memcpy in, memcpy out —
/// aligned to 4096 for direct-I/O friendliness.
class alignas(4096) Page {
 public:
  static constexpr uint32_t kMagic = 0x4D425047;  // "MBPG"
  static constexpr size_t kHeaderSize = 32;
  static constexpr size_t kSlotSize = 4;

  /// Largest record AppendRecord can ever accept (one slot + the bytes).
  static constexpr size_t kMaxRecordSize =
      kPageSize - kHeaderSize - kSlotSize;

  /// Zeroes the page and writes a fresh header for `page_id`.
  void Format(uint64_t page_id);

  uint64_t page_id() const { return ReadU64(16); }
  uint32_t magic() const { return ReadU32(0); }
  uint16_t num_records() const { return ReadU16(24); }

  /// The raw gap between the slot directory and the record heap.
  size_t FreeSpace() const;

  /// True if a record of `record_size` bytes (plus its slot) fits.
  bool CanFit(size_t record_size) const {
    return record_size + kSlotSize <= FreeSpace();
  }

  /// Appends a record; returns false when it does not fit (callers move
  /// on to a fresh page — a full page is normal control flow, not an
  /// error). Records larger than kMaxRecordSize never fit.
  bool AppendRecord(const void* data, size_t size);

  /// Bounds-checked access to record `slot`; kDataLoss on a structurally
  /// malformed page (only reachable if corruption slipped past the
  /// checksum, e.g. on a page that was never sealed).
  Result<std::pair<const std::byte*, size_t>> Record(uint16_t slot) const;

  /// Computes and stores the page checksum. Called by the buffer pool
  /// right before the frame bytes go to disk.
  void SealChecksum();

  /// Validates magic, stored-vs-computed checksum, and the stored page id
  /// against the id the caller read the page from. kDataLoss on any
  /// mismatch — the torn-write / bit-flip / misdirected-read detector.
  Status VerifyChecksum(uint64_t expected_page_id) const;

  std::byte* data() { return bytes_; }
  const std::byte* data() const { return bytes_; }

 private:
  uint64_t ComputeChecksum() const;

  uint16_t ReadU16(size_t offset) const;
  uint32_t ReadU32(size_t offset) const;
  uint64_t ReadU64(size_t offset) const;
  void WriteU16(size_t offset, uint16_t v);
  void WriteU32(size_t offset, uint32_t v);
  void WriteU64(size_t offset, uint64_t v);

  // Header field offsets.
  //   0: uint32 magic          4: uint32 version/reserved
  //   8: uint64 checksum      16: uint64 page_id
  //  24: uint16 num_slots     26: uint16 free_end
  //  28: uint32 reserved
  uint16_t free_end() const { return ReadU16(26); }

  std::byte bytes_[kPageSize];
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace maybms::storage

#endif  // MAYBMS_STORAGE_PAGE_H_
