#include "storage/catalog.h"

#include <utility>

#include "base/string_util.h"

namespace maybms {

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(AsciiToLower(name)) > 0;
}

Result<const Table*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return it->second.table.get();
}

Result<Database::TableHandle> Database::GetRelationHandle(
    const std::string& name) const {
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  // The borrowed handle may be stored anywhere (typically into sibling
  // worlds); conservatively mark the instance shared until a
  // MutableRelation re-establishes unique ownership.
  it->second.table->DebugMarkShared();
  return it->second.table;
}

Result<Table*> Database::MutableRelation(const std::string& name) {
  AssertMutableInRegion();
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  // Clone-on-unshared-write: a use count of one means this Database is
  // the sole owner and may mutate in place; otherwise the instance is
  // visible to other worlds (or a borrowed handle) and must be cloned.
  if (it->second.table.use_count() > 1) {
    it->second.table = std::make_shared<Table>(*it->second.table);
  } else {
    // Sole owner again (any borrowed handles are gone): in-place mutation
    // is sanctioned, clear the debug COW marker.
    it->second.table->DebugMarkUnshared();
  }
  // The instance is uniquely owned here, and every stored instance is
  // created as a non-const Table (PutRelation / the clone above), so
  // casting the const handle back for mutation is well-defined and
  // cannot affect any other world.
  // maybms-lint: allow(forbidden-api) — the one sanctioned const_cast:
  // unique ownership was just established above.
  return const_cast<Table*>(it->second.table.get());
}

void Database::PutRelation(const std::string& name, Table table) {
  AssertMutableInRegion();
  // make_shared<Table>, not <const Table>: the handle type is
  // const-qualified, but the *object* must stay non-const so
  // MutableRelation's sole-owner cast is defined behavior.
  relations_[AsciiToLower(name)] =
      Entry{name, std::make_shared<Table>(std::move(table))};
}

void Database::PutRelation(const std::string& name, TableHandle table) {
  AssertMutableInRegion();
  // Storing a handle someone else still holds shares the instance.
  if (table.use_count() > 1) table->DebugMarkShared();
  relations_[AsciiToLower(name)] = Entry{name, std::move(table)};
}

Status Database::DropRelation(const std::string& name) {
  AssertMutableInRegion();
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  relations_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [key, entry] : relations_) names.push_back(entry.display_name);
  return names;
}

bool Database::ContentEquals(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  auto it = relations_.begin();
  auto jt = other.relations_.begin();
  for (; it != relations_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    // Shared instance: trivially equal without comparing rows.
    if (it->second.table == jt->second.table) continue;
    if (!it->second.table->SetEquals(*jt->second.table)) return false;
  }
  return true;
}

void Catalog::AddConstraint(const std::string& table_name,
                            Constraint constraint) {
  constraints_[AsciiToLower(table_name)].push_back(std::move(constraint));
}

const std::vector<Constraint>& Catalog::ConstraintsFor(
    const std::string& table_name) const {
  static const std::vector<Constraint>* const kEmpty =
      new std::vector<Constraint>();
  auto it = constraints_.find(AsciiToLower(table_name));
  return it == constraints_.end() ? *kEmpty : it->second;
}

void Catalog::DropConstraints(const std::string& table_name) {
  constraints_.erase(AsciiToLower(table_name));
}

const std::map<std::string, std::vector<Constraint>>& Catalog::AllConstraints()
    const {
  return constraints_;
}

void Catalog::Clear() { constraints_.clear(); }

}  // namespace maybms
