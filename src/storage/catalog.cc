#include "storage/catalog.h"

#include "base/string_util.h"

namespace maybms {

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(AsciiToLower(name)) > 0;
}

Result<const Table*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return &it->second.table;
}

Result<Table*> Database::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return &it->second.table;
}

void Database::PutRelation(const std::string& name, Table table) {
  relations_[AsciiToLower(name)] = Entry{name, std::move(table)};
}

Status Database::DropRelation(const std::string& name) {
  auto it = relations_.find(AsciiToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  relations_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [key, entry] : relations_) names.push_back(entry.display_name);
  return names;
}

bool Database::ContentEquals(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  auto it = relations_.begin();
  auto jt = other.relations_.begin();
  for (; it != relations_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    if (!it->second.table.SetEquals(jt->second.table)) return false;
  }
  return true;
}

void Catalog::AddConstraint(const std::string& table_name,
                            Constraint constraint) {
  constraints_[AsciiToLower(table_name)].push_back(std::move(constraint));
}

const std::vector<Constraint>& Catalog::ConstraintsFor(
    const std::string& table_name) const {
  static const std::vector<Constraint>* const kEmpty =
      new std::vector<Constraint>();
  auto it = constraints_.find(AsciiToLower(table_name));
  return it == constraints_.end() ? *kEmpty : it->second;
}

void Catalog::DropConstraints(const std::string& table_name) {
  constraints_.erase(AsciiToLower(table_name));
}

}  // namespace maybms
