#ifndef MAYBMS_STORAGE_STORE_H_
#define MAYBMS_STORAGE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/paged_table.h"
#include "storage/snapshot.h"

namespace maybms::storage {

/// Durable world-set store: one append-only paged file holding shared
/// table page runs, plus a commit manifest, behind a ping-pong pair of
/// root slots (shadow paging).
///
/// File layout:
///   page 0, 1        root slots. Each is a slotted page whose single
///                    record is {root magic, generation, manifest start,
///                    manifest page count, next free page}. A commit of
///                    generation g writes slot g % 2 — the OTHER slot
///                    (the previous commit) is never touched.
///   pages 2..        data: table runs, tuple runs, manifest runs,
///                    append-only in commit order.
///
/// Commit protocol (all-or-nothing; fault-injection-proven by
/// tests/storage_recovery_test.cc at every kill point):
///   1. append page runs for every table instance not already persisted
///      (pointer-deduped against the last committed generation, so an
///      unchanged relation shared by many worlds is neither rewritten nor
///      duplicated — the copy-on-write sharing structure maps 1:1 onto
///      shared page runs);
///   2. append the manifest (the DurableSnapshot skeleton: world/
///      component structure, run locations, metadata);
///   3. FlushAll + fsync            — every new page durable;
///   4. write root slot (g+1) % 2 + fsync — the atomic switch.
/// A crash anywhere before step 4's fsync completes leaves the previous
/// root slot intact and pointing at fully-durable pages: reopen recovers
/// the exact pre-commit state. Nothing referenced by a durable root is
/// ever overwritten; dead pages from failed or superseded commits are
/// simply unreferenced (no compaction yet — see docs/architecture.md).
///
/// Recovery (Open): read both root slots; the valid-checksum slot with
/// the highest generation wins. Both invalid means no commit ever
/// completed — an empty store (the pre-first-commit state), which is the
/// correct recovery for a crash during the very first commit. Any
/// corruption BELOW a valid root (manifest or data pages) is detected by
/// the page checksums at Load and reported as kDataLoss — never silently
/// read.
class PagedStore {
 public:
  /// Opens (creating if absent) the store file and recovers the latest
  /// committed root.
  static Result<std::unique_ptr<PagedStore>> Open(const std::string& path,
                                                  size_t pool_pages);

  /// True once some generation has committed (now or in a past process).
  bool has_data() const { return has_data_; }
  uint64_t generation() const { return generation_; }

  /// Durably commits the snapshot as the next generation. On failure the
  /// store (in memory and on disk) still presents the previous
  /// generation, and Commit may simply be retried.
  Status Commit(const DurableSnapshot& snapshot);

  /// Materializes the committed generation. Also primes the pointer-dedup
  /// map with the returned handles, so a following Commit only writes
  /// tables that changed since the load.
  Result<DurableSnapshot> Load();

  BufferPool* pool() { return &pool_; }
  File* file() { return file_.get(); }

  /// Introspection for tests: the page run each live table instance
  /// persists to (incremental commits reuse these).
  std::vector<std::pair<const Table*, PageRun>> PersistedRuns() const;

 private:
  PagedStore(std::unique_ptr<File> file, size_t pool_pages)
      : file_(std::move(file)), pool_(file_.get(), pool_pages) {}

  struct RootRecord {
    uint64_t generation = 0;
    uint64_t manifest_start = 0;
    uint64_t manifest_pages = 0;
    uint64_t next_free_page = 0;
  };

  /// Reads root slot 0 or 1 directly (not via the pool — root pages are
  /// the only pages ever overwritten, so they must not be cached).
  Result<RootRecord> ReadRootSlot(uint64_t slot) const;
  Status WriteRootSlot(const RootRecord& root);

  struct RunInfo {
    PageRun run;
    // Keeps the instance alive so the const Table* key stays unique.
    Database::TableHandle keepalive;
  };

  std::unique_ptr<File> file_;
  BufferPool pool_;

  bool has_data_ = false;
  RootRecord root_;
  uint64_t generation_ = 0;
  uint64_t next_free_page_ = 2;  // pages 0,1 are the root slots

  /// Pointer-dedup across commits: table instances already durable under
  /// the committed root.
  std::map<const Table*, RunInfo> persisted_;
};

}  // namespace maybms::storage

#endif  // MAYBMS_STORAGE_STORE_H_
