#ifndef MAYBMS_STORAGE_TABLE_H_
#define MAYBMS_STORAGE_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace maybms {

/// An in-memory relation instance: a schema plus a bag of tuples.
///
/// SQL evaluation uses bag semantics; the world-set operations of I-SQL
/// (possible/certain/conf and world comparison) use the set view obtained
/// via SortedDistinct()/ContainsTuple(). Tables are value types — copying
/// a Table copies its rows, which is exactly what per-world semantics
/// require.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>* mutable_rows() { return &rows_; }

  /// Appends a row; validates arity (types are checked by the caller that
  /// produced the tuple).
  Status Append(Tuple row);

  /// Appends without arity checks (internal fast path).
  void AppendUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  void Clear() { rows_.clear(); }

  /// Returns a copy with rows sorted and duplicates removed.
  Table SortedDistinct() const;

  /// Sorts rows in place (total order); used for canonical comparison.
  void SortRows();

  /// In-place duplicate elimination (sorts first).
  void DeduplicateRows();

  bool ContainsTuple(const Tuple& t) const;

  /// Set-equality of the two tables' rows (ignores duplicates and order);
  /// schemas must have equal arity.
  bool SetEquals(const Table& other) const;

  /// Bag-equality after canonical sorting.
  bool BagEquals(const Table& other) const;

  /// Multi-line textual rendering with a header; used by the formatter.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_TABLE_H_
