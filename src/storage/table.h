#ifndef MAYBMS_STORAGE_TABLE_H_
#define MAYBMS_STORAGE_TABLE_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "base/dcheck.h"
#include "base/result.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace maybms {

/// An in-memory relation instance: a schema plus a bag of tuples.
///
/// SQL evaluation uses bag semantics; the world-set operations of I-SQL
/// (possible/certain/conf and world comparison) use the set view obtained
/// via SortedDistinct()/ContainsTuple(). Tables are value types — copying
/// a Table copies its rows, which is exactly what per-world semantics
/// require.
///
/// Debug shared-marker (copy-on-write enforcement): in Debug builds every
/// Table carries a marker that Database sets whenever the instance becomes
/// reachable from more than one handle (a Database copy, a stored shared
/// handle, a borrowed GetRelationHandle). Every mutating entry point traps
/// via MAYBMS_DCHECK while the marker is set, so a clone-on-unshared-write
/// violation — mutating an instance other worlds still see — aborts with a
/// message instead of silently corrupting sibling worlds.
/// Database::MutableRelation clears the marker once it has established
/// unique ownership; copying a Table yields a fresh, unmarked instance.
/// Release builds compile all of this out.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

#ifndef NDEBUG
  // A copy is a brand-new unshared instance regardless of the source's
  // marker; moving FROM a shared instance is itself a mutation and traps.
  // (Hand-written only in Debug so Release keeps the implicit members.)
  Table(const Table& other) : schema_(other.schema_), rows_(other.rows_) {}
  Table& operator=(const Table& other) {
    AssertUnshared();
    schema_ = other.schema_;
    rows_ = other.rows_;
    return *this;
  }
  Table(Table&& other) noexcept
      : schema_((other.AssertUnshared(), std::move(other.schema_))),
        rows_(std::move(other.rows_)) {}
  Table& operator=(Table&& other) noexcept {
    AssertUnshared();
    other.AssertUnshared();
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    return *this;
  }
#endif

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() {
    AssertUnshared();
    return &schema_;
  }

  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>* mutable_rows() {
    AssertUnshared();
    return &rows_;
  }

  /// Appends a row; validates arity (types are checked by the caller that
  /// produced the tuple).
  [[nodiscard]] Status Append(Tuple row);

  /// Appends without arity checks (internal fast path).
  void AppendUnchecked(Tuple row) {
    AssertUnshared();
    rows_.push_back(std::move(row));
  }

  void Clear() {
    AssertUnshared();
    rows_.clear();
  }

  /// Returns a copy with rows sorted and duplicates removed.
  Table SortedDistinct() const;

  /// Sorts rows in place (total order); used for canonical comparison.
  void SortRows();

  /// In-place duplicate elimination (sorts first).
  void DeduplicateRows();

  bool ContainsTuple(const Tuple& t) const;

  /// Set-equality of the two tables' rows (ignores duplicates and order);
  /// schemas must have equal arity.
  bool SetEquals(const Table& other) const;

  /// Bag-equality after canonical sorting.
  bool BagEquals(const Table& other) const;

  /// Multi-line textual rendering with a header; used by the formatter.
  std::string ToString() const;

  /// Debug-only COW markers (no-ops in Release); maintained by Database.
  /// Marking is idempotent and thread-safe: parallel workers copying the
  /// same parent Database mark its instances concurrently.
  void DebugMarkShared() const {
#ifndef NDEBUG
    debug_shared_.store(true, std::memory_order_relaxed);
#endif
  }
  void DebugMarkUnshared() const {
#ifndef NDEBUG
    debug_shared_.store(false, std::memory_order_relaxed);
#endif
  }

 private:
  void AssertUnshared() const {
#ifndef NDEBUG
    MAYBMS_DCHECK(!debug_shared_.load(std::memory_order_relaxed),
                  "Table mutated while shared between worlds — the "
                  "copy-on-write invariant (storage/catalog.h) requires "
                  "cloning via Database::MutableRelation first");
#endif
  }

  Schema schema_;
  std::vector<Tuple> rows_;
#ifndef NDEBUG
  // Set while this instance is (potentially) reachable from more than one
  // TableHandle; mutable so const Databases can mark on copy.
  mutable std::atomic<bool> debug_shared_{false};
#endif
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_TABLE_H_
