#ifndef MAYBMS_STORAGE_FILE_H_
#define MAYBMS_STORAGE_FILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"

namespace maybms::storage {

/// Crash-fault injection hook for the storage recovery property test
/// (tests/storage_recovery_test.cc). Process-global by design: a real
/// crash kills every file at once.
///
/// Armed with a countdown N, the (N+1)-th durability operation — a
/// File::WriteAt or File::Sync — fails with kIOError, and EVERY
/// subsequent operation fails too (the process is "dead"; nothing after
/// the kill point reaches the disk). The tear flag makes the killing
/// write a TORN write: a prefix of the buffer lands on disk before the
/// failure, which is exactly the partial-page state the page checksums
/// must detect on recovery.
///
/// Not armed (the default) the hook is two relaxed atomic loads — cheap
/// enough to stay compiled into release builds.
class FaultInjector {
 public:
  /// Fail the (fail_after + 1)-th durability op and everything after it.
  static void Arm(uint64_t fail_after, bool tear_killing_write);
  static void Disarm();

  /// Durability ops intercepted since the last Arm (armed or tripped);
  /// used by the recovery test to count a commit's kill points.
  static uint64_t OpsSinceArm();

  /// Internal: called by File before each durability op. Returns kProceed,
  /// kFail (op must fail without touching the disk), or kTear (WriteAt
  /// writes a prefix, then fails; Sync treats it as kFail).
  enum class Decision { kProceed, kFail, kTear };
  static Decision NextOp();

  // ---- Read-path faults (independent of the write/crash hook) ----

  /// What the (fail_after + 1)-th File::ReadAt does.
  enum class ReadFault {
    kError,       // pread fails with EIO; this and every later read —
                  // the device is gone. ReadAt surfaces kIOError.
    kShort,       // pread hits EOF mid-range (sticky, like kError): the
                  // file is shorter than the metadata promised. ReadAt
                  // surfaces kDataLoss, never a silent partial buffer.
    kEintrStorm,  // a bounded burst of EINTRs on ONE read, then normal
                  // operation: ReadAt must retry through the storm and
                  // succeed — a liveness check, not an error path.
  };

  /// Arms the read hook: the (fail_after + 1)-th ReadAt sees `fault`.
  /// Disarm() clears both hooks.
  static void ArmRead(uint64_t fail_after, ReadFault fault);

  /// ReadAt calls intercepted since the last ArmRead.
  static uint64_t ReadOpsSinceArm();

  /// Simulated-EINTR retries ReadAt performed (the liveness assertion
  /// of the kEintrStorm tests).
  static uint64_t EintrRetries();

  /// Length of an injected EINTR storm (per tripped read).
  static constexpr int kEintrStormLength = 8;

  /// Internal: called by File::ReadAt once per call.
  enum class ReadDecision { kProceed, kError, kShort, kEintrStorm };
  static ReadDecision NextReadOp();

  /// Internal: ReadAt reports each simulated-EINTR retry it absorbed.
  static void CountEintrRetry();

 private:
  static std::atomic<bool> armed_;
  static std::atomic<bool> tear_;
  static std::atomic<bool> tripped_;
  static std::atomic<uint64_t> remaining_;
  static std::atomic<uint64_t> ops_;

  static std::atomic<bool> read_armed_;
  static std::atomic<bool> read_tripped_;
  static std::atomic<int> read_fault_;
  static std::atomic<uint64_t> read_remaining_;
  static std::atomic<uint64_t> read_ops_;
  static std::atomic<uint64_t> eintr_retries_;
};

/// Thin POSIX file wrapper: positional read/write (pread/pwrite) with
/// full-length enforcement, fsync, truncate. All storage-layer I/O goes
/// through this class so the fault injector sees every byte headed to
/// disk, and so raw file APIs stay confined to src/storage/ (enforced by
/// the repo lint's forbidden-api rule).
///
/// The paged layer always does page-aligned I/O (offset and size are
/// multiples of storage::kPageSize, buffers 4096-aligned), keeping the
/// access pattern O_DIRECT-friendly; the flag itself is not set for
/// portability across filesystems.
class File {
 public:
  /// Opens (and with `create`, creates) the file for read/write.
  static Result<std::unique_ptr<File>> Open(const std::string& path,
                                            bool create);

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Reads exactly `size` bytes at `offset`; a short read (EOF inside the
  /// range) is kDataLoss — a truncated file is corruption, not a result.
  Status ReadAt(uint64_t offset, void* buf, size_t size) const;

  /// Writes exactly `size` bytes at `offset` (fault-injection aware).
  Status WriteAt(uint64_t offset, const void* buf, size_t size);

  /// fsync (fault-injection aware): the commit barrier.
  Status Sync();

  Result<uint64_t> Size() const;
  Status Truncate(uint64_t size);

  const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace maybms::storage

#endif  // MAYBMS_STORAGE_FILE_H_
