#ifndef MAYBMS_STORAGE_SNAPSHOT_H_
#define MAYBMS_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "storage/catalog.h"
#include "types/tuple.h"

namespace maybms::storage {

/// Engine-neutral durable form of a world-set: what PagedStore writes at
/// commit and what WorldSet::FromSnapshot restores after reopen.
///
/// Table instances are POINTER-DEDUPED: each distinct `const Table*`
/// reachable from the world-set appears exactly once in `tables`, and
/// worlds/certain refer to it by index. Restoring rebuilds one shared
/// instance per index, so the exact copy-on-write sharing structure —
/// which worlds share which relation instances — survives a restart, and
/// so a relation shared by 1000 worlds is stored once, not 1000 times.
///
/// Decomposed alternatives' contributions are schema-less tuple vectors
/// (the relation's schema lives with the certain-core instance), stored
/// as dedicated page runs.
///
/// Probabilities are doubles carried verbatim (bit patterns on disk);
/// restore assigns them directly WITHOUT renormalizing, so restored
/// results are byte-identical to pre-restart ones.
struct DurableSnapshot {
  /// EngineName() of the world-set this snapshot came from; FromSnapshot
  /// rejects a snapshot taken from the other engine.
  std::string engine;

  /// Deduped shared relation instances.
  std::vector<Database::TableHandle> tables;

  /// One named relation of one database: original-case name + index into
  /// `tables`.
  struct RelationRef {
    std::string name;
    size_t table_index = 0;
  };

  /// Explicit engine: one entry per world, in world order.
  struct WorldRef {
    double probability = 1.0;
    std::vector<RelationRef> relations;
  };
  std::vector<WorldRef> worlds;

  /// Decomposed engine: the certain core...
  std::vector<RelationRef> certain;

  /// ...and the components, in order. Contribution keys are the
  /// lower-cased relation names (worlds/component.h).
  struct AlternativeRef {
    double probability = 1.0;
    std::vector<std::pair<std::string, std::vector<Tuple>>> contributions;
  };
  struct ComponentRef {
    std::vector<AlternativeRef> alternatives;
  };
  std::vector<ComponentRef> components;

  /// Session-level metadata (e.g. constraint declarations), ordered KV.
  /// Opaque to the store; the session layer owns the encoding.
  std::vector<std::pair<std::string, std::string>> metadata;
};

}  // namespace maybms::storage

#endif  // MAYBMS_STORAGE_SNAPSHOT_H_
