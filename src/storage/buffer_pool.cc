#include "storage/buffer_pool.h"

#include <utility>

namespace maybms::storage {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    frame_ = other.frame_;
    page_ = std::exchange(other.page_, nullptr);
    page_id_ = other.page_id_;
    dirty_ = std::exchange(other.dirty_, false);
  }
  return *this;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(File* file, size_t pool_pages)
    : file_(file), budget_(pool_pages == 0 ? 1 : pool_pages) {
  frames_.reserve(budget_ < 1024 ? budget_ : 1024);
}

Result<size_t> BufferPool::GrabFrame() {
  // Lazy growth: allocate a new frame while under budget.
  if (frames_.size() < budget_) {
    frames_.push_back(std::make_unique<Frame>());
    return frames_.size() - 1;
  }
  // Evict the least recently used unpinned frame.
  size_t victim = frames_.size();
  uint64_t oldest = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = *frames_[i];
    if (f.pins > 0) continue;
    if (victim == frames_.size() || f.last_used < oldest) {
      victim = i;
      oldest = f.last_used;
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted(
        "buffer pool: all " + std::to_string(budget_) +
        " pages pinned; release a PageRef before pinning more");
  }
  Frame* f = frames_[victim].get();
  if (f->valid) {
    MAYBMS_RETURN_NOT_OK(FlushFrameLocked(f));
    page_to_frame_.erase(f->page_id);
    f->valid = false;
    ++stats_.evictions;
  }
  return victim;
}

Status BufferPool::FlushFrameLocked(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  frame->page.SealChecksum();
  MAYBMS_RETURN_NOT_OK(file_->WriteAt(frame->page_id * kPageSize,
                                      frame->page.data(), kPageSize));
  frame->dirty = false;
  ++stats_.flushes;
  return Status::OK();
}

Result<PageRef> BufferPool::Pin(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    Frame* f = frames_[it->second].get();
    ++f->pins;
    f->last_used = ++tick_;
    ++stats_.hits;
    return PageRef(this, it->second, &f->page, page_id);
  }
  MAYBMS_ASSIGN_OR_RETURN(size_t frame_index, GrabFrame());
  Frame* f = frames_[frame_index].get();
  Status read =
      file_->ReadAt(page_id * kPageSize, f->page.data(), kPageSize);
  if (read.ok()) read = f->page.VerifyChecksum(page_id);
  if (!read.ok()) {
    // The frame holds garbage; leave it invalid and unpinned.
    return read;
  }
  f->page_id = page_id;
  f->pins = 1;
  f->dirty = false;
  f->valid = true;
  f->last_used = ++tick_;
  page_to_frame_[page_id] = frame_index;
  ++stats_.misses;
  return PageRef(this, frame_index, &f->page, page_id);
}

Result<PageRef> BufferPool::NewPage(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_to_frame_.count(page_id) != 0) {
    return Status::RuntimeError("buffer pool: NewPage(" +
                                std::to_string(page_id) +
                                ") but the page is already cached");
  }
  MAYBMS_ASSIGN_OR_RETURN(size_t frame_index, GrabFrame());
  Frame* f = frames_[frame_index].get();
  f->page.Format(page_id);
  f->page_id = page_id;
  f->pins = 1;
  f->dirty = true;
  f->valid = true;
  f->last_used = ++tick_;
  page_to_frame_[page_id] = frame_index;
  ++stats_.misses;
  return PageRef(this, frame_index, &f->page, page_id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& frame : frames_) {
    if (frame->valid) {
      MAYBMS_RETURN_NOT_OK(FlushFrameLocked(frame.get()));
    }
  }
  return Status::OK();
}

void BufferPool::InvalidateUnpinned() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& frame : frames_) {
    if (frame->valid && frame->pins == 0) {
      page_to_frame_.erase(frame->page_id);
      frame->valid = false;
      frame->dirty = false;
    }
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t BufferPool::PinnedFrames() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pinned = 0;
  for (const auto& frame : frames_) {
    if (frame->pins > 0) ++pinned;
  }
  return pinned;
}

void BufferPool::Unpin(size_t frame_index, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* f = frames_[frame_index].get();
  if (dirty) f->dirty = true;
  if (f->pins > 0) --f->pins;
}

}  // namespace maybms::storage
