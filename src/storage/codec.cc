#include "storage/codec.h"

#include <cstring>
#include <utility>

namespace maybms::storage::codec {

namespace {

// Value type tags in the record encoding. Explicit values: these bytes
// are durable on disk and must never change meaning.
enum class Tag : uint8_t {
  kNull = 0,
  kInteger = 1,
  kReal = 2,
  kText = 3,
  kBoolean = 4,
};

void PutRaw(std::vector<std::byte>* out, const void* data, size_t size) {
  const size_t at = out->size();
  out->resize(at + size);
  std::memcpy(out->data() + at, data, size);
}

}  // namespace

void PutU8(std::vector<std::byte>* out, uint8_t v) {
  out->push_back(static_cast<std::byte>(v));
}
void PutU16(std::vector<std::byte>* out, uint16_t v) {
  PutRaw(out, &v, sizeof(v));
}
void PutU32(std::vector<std::byte>* out, uint32_t v) {
  PutRaw(out, &v, sizeof(v));
}
void PutU64(std::vector<std::byte>* out, uint64_t v) {
  PutRaw(out, &v, sizeof(v));
}
void PutDouble(std::vector<std::byte>* out, double v) {
  PutRaw(out, &v, sizeof(v));
}
void PutString(std::vector<std::byte>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  PutRaw(out, s.data(), s.size());
}

Status Reader::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::DataLoss("record decode: truncated record body");
  }
  return Status::OK();
}

Result<uint8_t> Reader::U8() {
  MAYBMS_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}
Result<uint16_t> Reader::U16() {
  MAYBMS_RETURN_NOT_OK(Need(2));
  uint16_t v;
  std::memcpy(&v, data_ + pos_, 2);
  pos_ += 2;
  return v;
}
Result<uint32_t> Reader::U32() {
  MAYBMS_RETURN_NOT_OK(Need(4));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}
Result<uint64_t> Reader::U64() {
  MAYBMS_RETURN_NOT_OK(Need(8));
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}
Result<double> Reader::Double() {
  MAYBMS_RETURN_NOT_OK(Need(8));
  double v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}
Result<std::string> Reader::String() {
  MAYBMS_ASSIGN_OR_RETURN(uint32_t len, U32());
  MAYBMS_RETURN_NOT_OK(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

namespace {

void EncodeValue(const Value& v, std::vector<std::byte>* out) {
  switch (v.type()) {
    case DataType::kNull:
      PutU8(out, static_cast<uint8_t>(Tag::kNull));
      break;
    case DataType::kInteger:
      PutU8(out, static_cast<uint8_t>(Tag::kInteger));
      PutU64(out, static_cast<uint64_t>(v.AsInteger()));
      break;
    case DataType::kReal:
      PutU8(out, static_cast<uint8_t>(Tag::kReal));
      PutDouble(out, v.AsReal());
      break;
    case DataType::kText:
      PutU8(out, static_cast<uint8_t>(Tag::kText));
      PutString(out, v.AsText());
      break;
    case DataType::kBoolean:
      PutU8(out, static_cast<uint8_t>(Tag::kBoolean));
      PutU8(out, v.AsBoolean() ? 1 : 0);
      break;
  }
}

Result<Value> DecodeValue(Reader* r) {
  MAYBMS_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (static_cast<Tag>(tag)) {
    case Tag::kNull:
      return Value::Null();
    case Tag::kInteger: {
      MAYBMS_ASSIGN_OR_RETURN(uint64_t bits, r->U64());
      return Value::Integer(static_cast<int64_t>(bits));
    }
    case Tag::kReal: {
      MAYBMS_ASSIGN_OR_RETURN(double d, r->Double());
      return Value::Real(d);
    }
    case Tag::kText: {
      MAYBMS_ASSIGN_OR_RETURN(std::string s, r->String());
      return Value::Text(std::move(s));
    }
    case Tag::kBoolean: {
      MAYBMS_ASSIGN_OR_RETURN(uint8_t b, r->U8());
      return Value::Boolean(b != 0);
    }
  }
  return Status::DataLoss("record decode: unknown value tag " +
                          std::to_string(tag));
}

}  // namespace

std::vector<std::byte> EncodeTuple(const Tuple& t) {
  std::vector<std::byte> out;
  PutU16(&out, static_cast<uint16_t>(t.size()));
  for (const Value& v : t.values()) EncodeValue(v, &out);
  return out;
}

Result<Tuple> DecodeTuple(const std::byte* data, size_t size) {
  Reader r(data, size);
  MAYBMS_ASSIGN_OR_RETURN(uint16_t n, r.U16());
  std::vector<Value> values;
  values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, DecodeValue(&r));
    values.push_back(std::move(v));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("record decode: trailing bytes after tuple");
  }
  return Tuple(std::move(values));
}

std::vector<std::byte> EncodeSchema(const Schema& schema) {
  std::vector<std::byte> out;
  PutU16(&out, static_cast<uint16_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    PutU8(&out, static_cast<uint8_t>(c.type));
    PutString(&out, c.name);
    PutString(&out, c.qualifier);
  }
  return out;
}

Result<Schema> DecodeSchema(const std::byte* data, size_t size) {
  Reader r(data, size);
  MAYBMS_ASSIGN_OR_RETURN(uint16_t n, r.U16());
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    MAYBMS_ASSIGN_OR_RETURN(std::string name, r.String());
    MAYBMS_ASSIGN_OR_RETURN(std::string qualifier, r.String());
    columns.emplace_back(std::move(name), static_cast<DataType>(type),
                         std::move(qualifier));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("record decode: trailing bytes after schema");
  }
  return Schema(std::move(columns));
}

}  // namespace maybms::storage::codec
