#include "storage/store.h"

#include <algorithm>
#include <utility>

#include "base/query_context.h"
#include "storage/codec.h"
#include "storage/page.h"

namespace maybms::storage {

namespace {

constexpr uint32_t kRootMagic = 0x4D42524F;      // "MBRO"
constexpr uint32_t kManifestMagic = 0x4D424D46;  // "MBMF"

std::vector<std::byte> EncodeRoot(uint64_t generation,
                                  uint64_t manifest_start,
                                  uint64_t manifest_pages,
                                  uint64_t next_free_page) {
  std::vector<std::byte> out;
  codec::PutU32(&out, kRootMagic);
  codec::PutU64(&out, generation);
  codec::PutU64(&out, manifest_start);
  codec::PutU64(&out, manifest_pages);
  codec::PutU64(&out, next_free_page);
  return out;
}

void EncodeRun(std::vector<std::byte>* out, const PageRun& run) {
  codec::PutU64(out, run.first_page);
  codec::PutU64(out, run.page_count);
  codec::PutU64(out, run.num_rows);
}

Result<PageRun> DecodeRun(codec::Reader* r) {
  PageRun run;
  MAYBMS_ASSIGN_OR_RETURN(run.first_page, r->U64());
  MAYBMS_ASSIGN_OR_RETURN(run.page_count, r->U64());
  MAYBMS_ASSIGN_OR_RETURN(run.num_rows, r->U64());
  return run;
}

/// The manifest skeleton before table runs are materialized into handles.
struct ManifestData {
  std::string engine;
  std::vector<PageRun> table_runs;
  std::vector<DurableSnapshot::WorldRef> worlds;
  std::vector<DurableSnapshot::RelationRef> certain;
  struct AlternativeRuns {
    double probability = 1.0;
    std::vector<std::pair<std::string, PageRun>> contributions;
  };
  struct ComponentRuns {
    std::vector<AlternativeRuns> alternatives;
  };
  std::vector<ComponentRuns> components;
  std::vector<std::pair<std::string, std::string>> metadata;
};

void EncodeRelationRefs(std::vector<std::byte>* out,
                        const std::vector<DurableSnapshot::RelationRef>& refs) {
  codec::PutU64(out, refs.size());
  for (const auto& ref : refs) {
    codec::PutString(out, ref.name);
    codec::PutU64(out, ref.table_index);
  }
}

Result<std::vector<DurableSnapshot::RelationRef>> DecodeRelationRefs(
    codec::Reader* r) {
  MAYBMS_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  std::vector<DurableSnapshot::RelationRef> refs;
  refs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DurableSnapshot::RelationRef ref;
    MAYBMS_ASSIGN_OR_RETURN(ref.name, r->String());
    MAYBMS_ASSIGN_OR_RETURN(uint64_t index, r->U64());
    ref.table_index = static_cast<size_t>(index);
    refs.push_back(std::move(ref));
  }
  return refs;
}

std::vector<std::byte> EncodeManifest(const ManifestData& m) {
  std::vector<std::byte> out;
  codec::PutU32(&out, kManifestMagic);
  codec::PutString(&out, m.engine);

  codec::PutU64(&out, m.table_runs.size());
  for (const PageRun& run : m.table_runs) EncodeRun(&out, run);

  codec::PutU64(&out, m.worlds.size());
  for (const auto& world : m.worlds) {
    codec::PutDouble(&out, world.probability);
    EncodeRelationRefs(&out, world.relations);
  }

  EncodeRelationRefs(&out, m.certain);

  codec::PutU64(&out, m.components.size());
  for (const auto& component : m.components) {
    codec::PutU64(&out, component.alternatives.size());
    for (const auto& alt : component.alternatives) {
      codec::PutDouble(&out, alt.probability);
      codec::PutU64(&out, alt.contributions.size());
      for (const auto& [relation, run] : alt.contributions) {
        codec::PutString(&out, relation);
        EncodeRun(&out, run);
      }
    }
  }

  codec::PutU64(&out, m.metadata.size());
  for (const auto& [key, value] : m.metadata) {
    codec::PutString(&out, key);
    codec::PutString(&out, value);
  }
  return out;
}

Result<ManifestData> DecodeManifest(const std::vector<std::byte>& bytes) {
  codec::Reader r(bytes.data(), bytes.size());
  ManifestData m;
  MAYBMS_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kManifestMagic) {
    return Status::DataLoss("store manifest: bad magic");
  }
  MAYBMS_ASSIGN_OR_RETURN(m.engine, r.String());

  MAYBMS_ASSIGN_OR_RETURN(uint64_t num_tables, r.U64());
  m.table_runs.reserve(num_tables);
  for (uint64_t i = 0; i < num_tables; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(PageRun run, DecodeRun(&r));
    m.table_runs.push_back(run);
  }

  MAYBMS_ASSIGN_OR_RETURN(uint64_t num_worlds, r.U64());
  m.worlds.reserve(num_worlds);
  for (uint64_t i = 0; i < num_worlds; ++i) {
    DurableSnapshot::WorldRef world;
    MAYBMS_ASSIGN_OR_RETURN(world.probability, r.Double());
    MAYBMS_ASSIGN_OR_RETURN(world.relations, DecodeRelationRefs(&r));
    m.worlds.push_back(std::move(world));
  }

  MAYBMS_ASSIGN_OR_RETURN(m.certain, DecodeRelationRefs(&r));

  MAYBMS_ASSIGN_OR_RETURN(uint64_t num_components, r.U64());
  m.components.reserve(num_components);
  for (uint64_t i = 0; i < num_components; ++i) {
    ManifestData::ComponentRuns component;
    MAYBMS_ASSIGN_OR_RETURN(uint64_t num_alts, r.U64());
    component.alternatives.reserve(num_alts);
    for (uint64_t a = 0; a < num_alts; ++a) {
      ManifestData::AlternativeRuns alt;
      MAYBMS_ASSIGN_OR_RETURN(alt.probability, r.Double());
      MAYBMS_ASSIGN_OR_RETURN(uint64_t num_contribs, r.U64());
      alt.contributions.reserve(num_contribs);
      for (uint64_t c = 0; c < num_contribs; ++c) {
        MAYBMS_ASSIGN_OR_RETURN(std::string relation, r.String());
        MAYBMS_ASSIGN_OR_RETURN(PageRun run, DecodeRun(&r));
        alt.contributions.emplace_back(std::move(relation), run);
      }
      component.alternatives.push_back(std::move(alt));
    }
    m.components.push_back(std::move(component));
  }

  MAYBMS_ASSIGN_OR_RETURN(uint64_t num_metadata, r.U64());
  m.metadata.reserve(num_metadata);
  for (uint64_t i = 0; i < num_metadata; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(std::string key, r.String());
    MAYBMS_ASSIGN_OR_RETURN(std::string value, r.String());
    m.metadata.emplace_back(std::move(key), std::move(value));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("store manifest: trailing bytes");
  }
  return m;
}

}  // namespace

Result<std::unique_ptr<PagedStore>> PagedStore::Open(const std::string& path,
                                                     size_t pool_pages) {
  MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                          File::Open(path, /*create=*/true));
  std::unique_ptr<PagedStore> store(
      new PagedStore(std::move(file), pool_pages));

  // Recovery: the valid root slot with the highest generation wins. An
  // INVALID slot (bad checksum, bad magic, truncated) is not an error —
  // it is a slot no commit ever completed into (or the slot torn by the
  // crash this reopen is recovering from). An UNREADABLE slot is: a
  // device-level kIOError must propagate, because "recovering" an empty
  // store from a disk that merely failed to answer would let the next
  // commit overwrite data that is still there.
  bool found = false;
  RootRecord best;
  for (uint64_t slot = 0; slot < 2; ++slot) {
    Result<RootRecord> root = store->ReadRootSlot(slot);
    if (!root.ok() && root.status().code() == StatusCode::kIOError) {
      return root.status();
    }
    if (root.ok() && (!found || root.value().generation > best.generation)) {
      best = root.value();
      found = true;
    }
  }
  if (found) {
    store->has_data_ = true;
    store->root_ = best;
    store->generation_ = best.generation;
    store->next_free_page_ = best.next_free_page;
  }
  return store;
}

Result<PagedStore::RootRecord> PagedStore::ReadRootSlot(uint64_t slot) const {
  MAYBMS_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  if (size < (slot + 1) * kPageSize) {
    return Status::DataLoss("store root slot " + std::to_string(slot) +
                            ": beyond end of file");
  }
  auto page = std::make_unique<Page>();
  MAYBMS_RETURN_NOT_OK(
      file_->ReadAt(slot * kPageSize, page->data(), kPageSize));
  MAYBMS_RETURN_NOT_OK(page->VerifyChecksum(slot));
  MAYBMS_ASSIGN_OR_RETURN(auto record, page->Record(0));

  codec::Reader r(record.first, record.second);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kRootMagic) {
    return Status::DataLoss("store root slot " + std::to_string(slot) +
                            ": bad root magic");
  }
  RootRecord root;
  MAYBMS_ASSIGN_OR_RETURN(root.generation, r.U64());
  MAYBMS_ASSIGN_OR_RETURN(root.manifest_start, r.U64());
  MAYBMS_ASSIGN_OR_RETURN(root.manifest_pages, r.U64());
  MAYBMS_ASSIGN_OR_RETURN(root.next_free_page, r.U64());
  return root;
}

Status PagedStore::WriteRootSlot(const RootRecord& root) {
  const uint64_t slot = root.generation % 2;
  auto page = std::make_unique<Page>();
  page->Format(slot);
  const std::vector<std::byte> record =
      EncodeRoot(root.generation, root.manifest_start, root.manifest_pages,
                 root.next_free_page);
  if (!page->AppendRecord(record.data(), record.size())) {
    return Status::RuntimeError("store: root record does not fit a page");
  }
  page->SealChecksum();
  return file_->WriteAt(slot * kPageSize, page->data(), kPageSize);
}

Status PagedStore::Commit(const DurableSnapshot& snapshot) {
  // All page allocation is speculative until the root swap: work on a
  // local cursor and a fresh dedup map, and install them only on success.
  uint64_t next = next_free_page_;
  std::map<const Table*, RunInfo> persisted;

  Status status = [&]() -> Status {
    ManifestData manifest;
    manifest.engine = snapshot.engine;
    manifest.worlds = snapshot.worlds;
    manifest.certain = snapshot.certain;
    manifest.metadata = snapshot.metadata;

    // 1. Table runs, pointer-deduped against the committed generation:
    // only instances not already durable are written.
    manifest.table_runs.reserve(snapshot.tables.size());
    for (const Database::TableHandle& handle : snapshot.tables) {
      auto it = persisted_.find(handle.get());
      if (it != persisted_.end()) {
        manifest.table_runs.push_back(it->second.run);
        persisted[handle.get()] = it->second;
        continue;
      }
      MAYBMS_ASSIGN_OR_RETURN(PagedTable paged,
                              PagedTable::Write(*handle, &pool_, &next));
      manifest.table_runs.push_back(paged.run());
      persisted[handle.get()] = RunInfo{paged.run(), handle};
    }

    // 2. Component contributions as schema-less tuple runs.
    manifest.components.reserve(snapshot.components.size());
    for (const auto& component : snapshot.components) {
      ManifestData::ComponentRuns component_runs;
      component_runs.alternatives.reserve(component.alternatives.size());
      for (const auto& alt : component.alternatives) {
        ManifestData::AlternativeRuns alt_runs;
        alt_runs.probability = alt.probability;
        alt_runs.contributions.reserve(alt.contributions.size());
        for (const auto& [relation, tuples] : alt.contributions) {
          MAYBMS_ASSIGN_OR_RETURN(
              PagedTable run, PagedTable::WriteTuples(tuples, &pool_, &next));
          alt_runs.contributions.emplace_back(relation, run.run());
        }
        component_runs.alternatives.push_back(std::move(alt_runs));
      }
      manifest.components.push_back(std::move(component_runs));
    }

    // 3. The manifest itself, chunked into records across fresh pages.
    const std::vector<std::byte> bytes = EncodeManifest(manifest);
    const uint64_t manifest_start = next;
    {
      size_t pos = 0;
      PageRef current;
      // A zero-length manifest chunk is still one record on one page, so
      // manifest_pages >= 1 and Load always has something to decode.
      do {
        const size_t chunk =
            std::min(bytes.size() - pos, Page::kMaxRecordSize);
        if (!current.valid() ||
            !current.mutable_page()->CanFit(chunk)) {
          current.Release();
          MAYBMS_ASSIGN_OR_RETURN(current, pool_.NewPage(next++));
        }
        if (!current.mutable_page()->AppendRecord(bytes.data() + pos,
                                                  chunk)) {
          return Status::RuntimeError(
              "store: manifest chunk rejected by a fresh page");
        }
        pos += chunk;
      } while (pos < bytes.size());
    }
    const uint64_t manifest_pages = next - manifest_start;

    // LAST cancellation point of the commit. Everything before this —
    // run writing, manifest chunking — only touched speculative pages
    // the durable root does not reference, so an abort rolls back for
    // free (InvalidateUnpinned below). From here on the commit NEVER
    // polls: once the root slot flips, disk state has advanced and the
    // in-memory install must follow unconditionally.
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());

    // 4. Durability barrier: every speculative page on disk before the
    // root can point at it.
    MAYBMS_RETURN_NOT_OK(pool_.FlushAll());
    MAYBMS_RETURN_NOT_OK(file_->Sync());

    // 5. The atomic switch: write the NEXT generation's root slot (the
    // previous generation's slot is untouched), then make it durable.
    RootRecord root;
    root.generation = generation_ + 1;
    root.manifest_start = manifest_start;
    root.manifest_pages = manifest_pages;
    root.next_free_page = next;
    MAYBMS_RETURN_NOT_OK(WriteRootSlot(root));
    MAYBMS_RETURN_NOT_OK(file_->Sync());

    root_ = root;
    return Status::OK();
  }();

  if (!status.ok()) {
    // Drop speculative cached pages; their ids will be reused by the next
    // attempt, and on-disk they are unreferenced by the durable root.
    pool_.InvalidateUnpinned();
    return status;
  }

  generation_ += 1;
  next_free_page_ = next;
  persisted_ = std::move(persisted);
  has_data_ = true;
  return Status::OK();
}

Result<DurableSnapshot> PagedStore::Load() {
  if (!has_data_) {
    return Status::NotFound("store: no committed generation to load");
  }

  // Reassemble the manifest bytes from its chunk records.
  std::vector<std::byte> bytes;
  for (uint64_t p = 0; p < root_.manifest_pages; ++p) {
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool_.Pin(root_.manifest_start + p));
    const Page& page = ref.page();
    for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
      MAYBMS_ASSIGN_OR_RETURN(auto record, page.Record(slot));
      bytes.insert(bytes.end(), record.first, record.first + record.second);
    }
  }
  MAYBMS_ASSIGN_OR_RETURN(ManifestData manifest, DecodeManifest(bytes));

  DurableSnapshot snapshot;
  snapshot.engine = std::move(manifest.engine);
  snapshot.worlds = std::move(manifest.worlds);
  snapshot.certain = std::move(manifest.certain);
  snapshot.metadata = std::move(manifest.metadata);

  // Materialize each deduped table instance ONCE and prime the dedup map
  // with the fresh handles: worlds sharing a table index share the
  // restored instance, and the next Commit rewrites none of them.
  std::map<const Table*, RunInfo> persisted;
  snapshot.tables.reserve(manifest.table_runs.size());
  for (const PageRun& run : manifest.table_runs) {
    PagedTable paged(&pool_, run);
    MAYBMS_ASSIGN_OR_RETURN(Database::TableHandle handle, paged.Materialize());
    persisted[handle.get()] = RunInfo{run, handle};
    snapshot.tables.push_back(std::move(handle));
  }

  snapshot.components.reserve(manifest.components.size());
  for (const auto& component_runs : manifest.components) {
    DurableSnapshot::ComponentRef component;
    component.alternatives.reserve(component_runs.alternatives.size());
    for (const auto& alt_runs : component_runs.alternatives) {
      DurableSnapshot::AlternativeRef alt;
      alt.probability = alt_runs.probability;
      alt.contributions.reserve(alt_runs.contributions.size());
      for (const auto& [relation, run] : alt_runs.contributions) {
        PagedTable paged(&pool_, run);
        MAYBMS_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                                paged.MaterializeTuples());
        alt.contributions.emplace_back(relation, std::move(tuples));
      }
      component.alternatives.push_back(std::move(alt));
    }
    snapshot.components.push_back(std::move(component));
  }

  persisted_ = std::move(persisted);
  return snapshot;
}

std::vector<std::pair<const Table*, PageRun>> PagedStore::PersistedRuns()
    const {
  std::vector<std::pair<const Table*, PageRun>> runs;
  runs.reserve(persisted_.size());
  for (const auto& [table, info] : persisted_) {
    runs.emplace_back(table, info.run);
  }
  return runs;
}

}  // namespace maybms::storage
