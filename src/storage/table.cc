#include "storage/table.h"

#include <algorithm>

namespace maybms {

Status Table::Append(Tuple row) {
  AssertUnshared();
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " +
        std::to_string(schema_.num_columns()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Table Table::SortedDistinct() const {
  Table out = *this;
  out.DeduplicateRows();
  return out;
}

void Table::SortRows() {
  AssertUnshared();
  std::sort(rows_.begin(), rows_.end());
}

void Table::DeduplicateRows() {
  SortRows();
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool Table::ContainsTuple(const Tuple& t) const {
  for (const Tuple& row : rows_) {
    if (row == t) return true;
  }
  return false;
}

bool Table::SetEquals(const Table& other) const {
  Table a = SortedDistinct();
  Table b = other.SortedDistinct();
  return a.rows_ == b.rows_;
}

bool Table::BagEquals(const Table& other) const {
  Table a = *this;
  Table b = other;
  a.SortRows();
  b.SortRows();
  return a.rows_ == b.rows_;
}

std::string Table::ToString() const {
  std::string out;
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    if (i > 0) out += " | ";
    out += schema_.column(i).name;
  }
  out += "\n";
  for (const Tuple& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row.value(i).ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace maybms
