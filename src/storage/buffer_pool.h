#ifndef MAYBMS_STORAGE_BUFFER_POOL_H_
#define MAYBMS_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "storage/file.h"
#include "storage/page.h"

namespace maybms::storage {

class BufferPool;

/// RAII pin on one buffer-pool frame. While a PageRef is alive its frame
/// cannot be evicted and its Page pointer stays valid; destruction (or
/// Release) unpins. Move-only — a pin has exactly one owner.
///
/// Reads go through page(); writers use mutable_page(), which marks the
/// frame dirty so eviction/FlushAll write it back (sealing the checksum).
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  const Page& page() const { return *page_; }
  Page* mutable_page() {
    dirty_ = true;
    return page_;
  }
  uint64_t page_id() const { return page_id_; }

  /// Unpins now (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, Page* page, uint64_t page_id)
      : pool_(pool), frame_(frame), page_(page), page_id_(page_id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  Page* page_ = nullptr;
  uint64_t page_id_ = 0;
  bool dirty_ = false;
};

/// A pinned LRU buffer pool with a HARD page budget over one paged file.
///
/// Contract (stress-tested in tests/buffer_pool_test.cc, including under
/// TSan):
///  * Pin(id) returns the cached frame or reads the page from disk,
///    verifying its checksum — a corrupt page is a kDataLoss error at the
///    pin, never silently served.
///  * A pinned frame is NEVER evicted; eviction picks the least recently
///    used unpinned frame and, if dirty, seals its checksum and writes it
///    back first.
///  * When every frame is pinned, Pin/NewPage fail with a deterministic
///    kResourceExhausted Status — a full pool is an error the caller
///    handles, not a trap or a deadlock.
///  * Frames are allocated lazily up to the budget, so a large budget
///    costs memory proportional to the pages actually touched.
///
/// Thread safety: all state is guarded by one mutex; concurrent Pin/
/// unpin/eviction from any number of threads is safe. I/O happens under
/// the lock — simple and correct; the engine's hot paths run on
/// in-memory tables, so pool throughput is not yet the bottleneck.
class BufferPool {
 public:
  BufferPool(File* file, size_t pool_pages);

  /// Pins the page, reading + checksum-verifying it on a miss.
  Result<PageRef> Pin(uint64_t page_id);

  /// Pins a frame for a brand-new page: no disk read, the frame is
  /// Format()ed and dirty. `page_id` must not be cached already.
  Result<PageRef> NewPage(uint64_t page_id);

  /// Writes every dirty frame back (sealing checksums). Does NOT sync;
  /// the commit protocol calls File::Sync itself.
  Status FlushAll();

  /// Drops every unpinned frame (dirty ones are lost — used to discard
  /// speculative pages after a failed commit). Pinned frames stay.
  void InvalidateUnpinned();

  size_t pool_pages() const { return budget_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t flushes = 0;
  };
  Stats stats() const;

  /// Frames with a non-zero pin count (0 after all refs released).
  size_t PinnedFrames() const;

 private:
  friend class PageRef;

  struct Frame {
    Page page;
    uint64_t page_id = 0;
    uint32_t pins = 0;
    bool dirty = false;
    bool valid = false;
    uint64_t last_used = 0;
  };

  /// Returns a frame index to (re)use, evicting if needed; assumes mu_
  /// held. kResourceExhausted when every frame is pinned.
  Result<size_t> GrabFrame();

  Status FlushFrameLocked(Frame* frame);

  void Unpin(size_t frame_index, bool dirty);

  File* file_;
  const size_t budget_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Frame>> frames_;          // size() <= budget_
  std::unordered_map<uint64_t, size_t> page_to_frame_;  // valid frames only
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace maybms::storage

#endif  // MAYBMS_STORAGE_BUFFER_POOL_H_
