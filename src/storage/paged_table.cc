#include "storage/paged_table.h"

#include <string>
#include <utility>

#include "base/query_context.h"
#include "storage/codec.h"

namespace maybms::storage {

namespace {

/// Appends records to a run of fresh pages, opening a new page whenever
/// the current one is full.
class RunWriter {
 public:
  RunWriter(BufferPool* pool, uint64_t* next_page_id)
      : pool_(pool), next_page_id_(next_page_id), first_page_(*next_page_id) {}

  Status Append(const std::vector<std::byte>& record) {
    if (record.size() > Page::kMaxRecordSize) {
      return Status::Unsupported(
          "paged storage: record of " + std::to_string(record.size()) +
          " bytes exceeds the one-page limit of " +
          std::to_string(Page::kMaxRecordSize) + " bytes");
    }
    if (!current_.valid() ||
        !current_.mutable_page()->CanFit(record.size())) {
      MAYBMS_RETURN_NOT_OK(OpenNextPage());
    }
    if (!current_.mutable_page()->AppendRecord(record.data(),
                                               record.size())) {
      return Status::RuntimeError(
          "paged storage: record rejected by a fresh page");
    }
    return Status::OK();
  }

  /// Unpins the last page and returns the finished run (row count is the
  /// caller's to fill).
  PageRun Finish() {
    current_.Release();
    return PageRun{first_page_, *next_page_id_ - first_page_, 0};
  }

 private:
  Status OpenNextPage() {
    // Page granularity is the storage write path's cancellation point.
    // Aborting here only strands speculative pages past the committed
    // root — the next successful commit reuses the file tail, so no
    // durable state is torn (see PagedStore::Commit).
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    current_.Release();  // unpin before grabbing the next frame
    MAYBMS_ASSIGN_OR_RETURN(current_, pool_->NewPage((*next_page_id_)++));
    return Status::OK();
  }

  BufferPool* pool_;
  uint64_t* next_page_id_;
  uint64_t first_page_;
  PageRef current_;
};

}  // namespace

Result<PagedTable> PagedTable::Write(const Table& table, BufferPool* pool,
                                     uint64_t* next_page_id) {
  RunWriter writer(pool, next_page_id);
  MAYBMS_RETURN_NOT_OK(writer.Append(codec::EncodeSchema(table.schema())));
  for (const Tuple& row : table.rows()) {
    MAYBMS_RETURN_NOT_OK(writer.Append(codec::EncodeTuple(row)));
  }
  PagedTable result(pool, 0);
  result.run_ = writer.Finish();
  result.run_.num_rows = table.num_rows();
  return result;
}

Result<PagedTable> PagedTable::WriteTuples(const std::vector<Tuple>& rows,
                                           BufferPool* pool,
                                           uint64_t* next_page_id) {
  RunWriter writer(pool, next_page_id);
  MAYBMS_RETURN_NOT_OK(writer.Append(codec::EncodeSchema(Schema())));
  for (const Tuple& row : rows) {
    MAYBMS_RETURN_NOT_OK(writer.Append(codec::EncodeTuple(row)));
  }
  PagedTable result(pool, 0);
  result.run_ = writer.Finish();
  result.run_.num_rows = rows.size();
  return result;
}

Result<Schema> PagedTable::ReadSchema() const {
  MAYBMS_ASSIGN_OR_RETURN(PageRef page, pool_->Pin(run_.first_page));
  MAYBMS_ASSIGN_OR_RETURN(auto record, page.page().Record(0));
  return codec::DecodeSchema(record.first, record.second);
}

Status PagedTable::Scan(const std::function<Status(Tuple)>& fn) const {
  uint64_t rows_seen = 0;
  for (uint64_t p = 0; p < run_.page_count; ++p) {
    // Page-granularity poll on the read path; scans feed local state
    // only, so an abort mid-scan tears nothing.
    MAYBMS_RETURN_NOT_OK(base::GovernPoll());
    MAYBMS_ASSIGN_OR_RETURN(PageRef ref, pool_->Pin(run_.first_page + p));
    const Page& page = ref.page();
    // Record 0 of the first page is the schema, not a row.
    const uint16_t first_slot = (p == 0) ? 1 : 0;
    for (uint16_t slot = first_slot; slot < page.num_records(); ++slot) {
      MAYBMS_ASSIGN_OR_RETURN(auto record, page.Record(slot));
      MAYBMS_ASSIGN_OR_RETURN(
          Tuple row, codec::DecodeTuple(record.first, record.second));
      MAYBMS_RETURN_NOT_OK(fn(std::move(row)));
      ++rows_seen;
    }
  }
  if (rows_seen != run_.num_rows) {
    return Status::DataLoss(
        "paged storage: run at page " + std::to_string(run_.first_page) +
        " decoded " + std::to_string(rows_seen) + " rows, manifest says " +
        std::to_string(run_.num_rows));
  }
  return Status::OK();
}

Result<std::shared_ptr<const Table>> PagedTable::Materialize() const {
  MAYBMS_ASSIGN_OR_RETURN(Schema schema, ReadSchema());
  auto table = std::make_shared<Table>(std::move(schema));
  MAYBMS_RETURN_NOT_OK(Scan([&table](Tuple row) {
    table->AppendUnchecked(std::move(row));
    return Status::OK();
  }));
  return std::shared_ptr<const Table>(std::move(table));
}

Result<std::vector<Tuple>> PagedTable::MaterializeTuples() const {
  std::vector<Tuple> rows;
  rows.reserve(run_.num_rows);
  MAYBMS_RETURN_NOT_OK(Scan([&rows](Tuple row) {
    rows.push_back(std::move(row));
    return Status::OK();
  }));
  return rows;
}

}  // namespace maybms::storage
