#ifndef MAYBMS_STORAGE_PAGED_TABLE_H_
#define MAYBMS_STORAGE_PAGED_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/result.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace maybms::storage {

/// A contiguous run of pages holding one relation (or one schema-less
/// tuple run, e.g. a decomposed component's contributions).
struct PageRun {
  uint64_t first_page = 0;
  uint64_t page_count = 0;
  uint64_t num_rows = 0;
};

/// The durable form of one Table: a schema record followed by its tuples,
/// in row order, across a contiguous page run. Reads pin pages on demand
/// through the buffer pool — a scan touches O(pool) memory however large
/// the relation, and every page read is checksum-verified before a single
/// value is decoded.
///
/// Record encoding (self-describing, little-endian):
///   schema record: u16 num_columns, then per column
///                  {u8 type tag, u32 name_len, name, u32 qual_len, qual}
///   tuple record:  u16 num_values, then per value a u8 type tag and
///                  payload — int64/double as 8 raw bytes (doubles as bit
///                  patterns, so restored probabilities are bit-identical),
///                  text as u32 length + bytes, boolean as 1 byte.
///
/// Page 0 of a run starts with the schema record; tuples follow, spilling
/// onto subsequent pages (which hold only tuple records). A record must
/// fit one page (Page::kMaxRecordSize ≈ 8 KiB) — oversized rows are a
/// clean kUnsupported error at write time, not a torn encoding.
class PagedTable {
 public:
  /// Writes `table` as a fresh page run starting at *next_page_id, which
  /// is advanced past the run. Pages are left dirty in the pool; the
  /// commit protocol flushes and syncs them.
  static Result<PagedTable> Write(const Table& table, BufferPool* pool,
                                  uint64_t* next_page_id);

  /// Writes a schema-less tuple run (an empty schema record, then rows).
  static Result<PagedTable> WriteTuples(const std::vector<Tuple>& rows,
                                        BufferPool* pool,
                                        uint64_t* next_page_id);

  /// Re-attaches to an existing run (after recovery/reopen).
  PagedTable(BufferPool* pool, PageRun run) : pool_(pool), run_(run) {}

  const PageRun& run() const { return run_; }
  uint64_t num_rows() const { return run_.num_rows; }

  /// Decodes the schema record.
  Result<Schema> ReadSchema() const;

  /// Streams every row in order through `fn`, pinning one page at a time.
  Status Scan(const std::function<Status(Tuple)>& fn) const;

  /// Rebuilds the full in-memory Table (schema + rows).
  Result<std::shared_ptr<const Table>> Materialize() const;

  /// Rebuilds just the rows (for schema-less runs).
  Result<std::vector<Tuple>> MaterializeTuples() const;

 private:
  PagedTable(BufferPool* pool, uint64_t first_page)
      : pool_(pool), run_{first_page, 0, 0} {}

  BufferPool* pool_;
  PageRun run_;
};

}  // namespace maybms::storage

#endif  // MAYBMS_STORAGE_PAGED_TABLE_H_
