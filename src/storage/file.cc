#include "storage/file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace maybms::storage {

std::atomic<bool> FaultInjector::armed_{false};
std::atomic<bool> FaultInjector::tear_{false};
std::atomic<bool> FaultInjector::tripped_{false};
std::atomic<uint64_t> FaultInjector::remaining_{0};
std::atomic<uint64_t> FaultInjector::ops_{0};

std::atomic<bool> FaultInjector::read_armed_{false};
std::atomic<bool> FaultInjector::read_tripped_{false};
std::atomic<int> FaultInjector::read_fault_{0};
std::atomic<uint64_t> FaultInjector::read_remaining_{0};
std::atomic<uint64_t> FaultInjector::read_ops_{0};
std::atomic<uint64_t> FaultInjector::eintr_retries_{0};

void FaultInjector::Arm(uint64_t fail_after, bool tear_killing_write) {
  remaining_.store(fail_after, std::memory_order_relaxed);
  tear_.store(tear_killing_write, std::memory_order_relaxed);
  tripped_.store(false, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
  read_armed_.store(false, std::memory_order_release);
}

void FaultInjector::ArmRead(uint64_t fail_after, ReadFault fault) {
  read_remaining_.store(fail_after, std::memory_order_relaxed);
  read_fault_.store(static_cast<int>(fault), std::memory_order_relaxed);
  read_tripped_.store(false, std::memory_order_relaxed);
  read_ops_.store(0, std::memory_order_relaxed);
  eintr_retries_.store(0, std::memory_order_relaxed);
  read_armed_.store(true, std::memory_order_release);
}

uint64_t FaultInjector::ReadOpsSinceArm() {
  return read_ops_.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::EintrRetries() {
  return eintr_retries_.load(std::memory_order_relaxed);
}

void FaultInjector::CountEintrRetry() {
  eintr_retries_.fetch_add(1, std::memory_order_relaxed);
}

FaultInjector::ReadDecision FaultInjector::NextReadOp() {
  if (!read_armed_.load(std::memory_order_acquire)) {
    return ReadDecision::kProceed;
  }
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  const auto fault = static_cast<ReadFault>(
      read_fault_.load(std::memory_order_relaxed));
  // kError/kShort are sticky once tripped (a dead device stays dead); an
  // EINTR storm hits exactly one read, then the device behaves again.
  if (read_tripped_.load(std::memory_order_relaxed)) {
    if (fault == ReadFault::kError) return ReadDecision::kError;
    if (fault == ReadFault::kShort) return ReadDecision::kShort;
    return ReadDecision::kProceed;
  }
  uint64_t remaining = read_remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (read_remaining_.compare_exchange_weak(remaining, remaining - 1,
                                              std::memory_order_relaxed)) {
      return ReadDecision::kProceed;
    }
  }
  read_tripped_.store(true, std::memory_order_relaxed);
  switch (fault) {
    case ReadFault::kError:
      return ReadDecision::kError;
    case ReadFault::kShort:
      return ReadDecision::kShort;
    case ReadFault::kEintrStorm:
      return ReadDecision::kEintrStorm;
  }
  return ReadDecision::kProceed;
}

uint64_t FaultInjector::OpsSinceArm() {
  return ops_.load(std::memory_order_relaxed);
}

FaultInjector::Decision FaultInjector::NextOp() {
  if (!armed_.load(std::memory_order_acquire)) return Decision::kProceed;
  ops_.fetch_add(1, std::memory_order_relaxed);
  uint64_t remaining = remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (remaining_.compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed)) {
      return Decision::kProceed;
    }
  }
  // Budget spent: this op fails. Only the FIRST failing op may tear (a
  // prefix reaches disk); after the crash point nothing is written.
  const bool first_failure = !tripped_.exchange(true,
                                                std::memory_order_relaxed);
  if (first_failure && tear_.load(std::memory_order_relaxed)) {
    return Decision::kTear;
  }
  return Decision::kFail;
}

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         bool create) {
  int flags = O_RDWR | O_CLOEXEC;
  if (create) flags |= O_CREAT;
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<File>(new File(fd, path));
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Status File::ReadAt(uint64_t offset, void* buf, size_t size) const {
  int storm = 0;
  switch (FaultInjector::NextReadOp()) {
    case FaultInjector::ReadDecision::kProceed:
      break;
    case FaultInjector::ReadDecision::kError:
      return Status::IOError("injected fault: pread failed (" + path_ + ")");
    case FaultInjector::ReadDecision::kShort:
      // The file ended inside the requested range: exactly what a real
      // truncation produces, surfaced through the n == 0 branch below.
      return Status::DataLoss("pread(" + path_ + "): unexpected EOF at " +
                              std::to_string(offset) +
                              " (injected short read)");
    case FaultInjector::ReadDecision::kEintrStorm:
      storm = FaultInjector::kEintrStormLength;
      break;
  }
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < size) {
    ssize_t n;
    if (storm > 0) {
      // An injected interrupted pread: no bytes moved, errno as a real
      // signal interruption would leave it — the retry branch below must
      // absorb the whole storm.
      --storm;
      errno = EINTR;
      n = -1;
    } else {
      n = ::pread(fd_, out + done, size - done,
                  static_cast<off_t>(offset + done));
    }
    if (n < 0) {
      if (errno == EINTR) {
        FaultInjector::CountEintrRetry();
        continue;
      }
      return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::DataLoss("pread(" + path_ + "): unexpected EOF at " +
                              std::to_string(offset + done) +
                              " (truncated file)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

Status WriteFully(int fd, const std::string& path, uint64_t offset,
                  const char* buf, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pwrite(fd, buf + done, size - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite(" + path + "): " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status File::WriteAt(uint64_t offset, const void* buf, size_t size) {
  switch (FaultInjector::NextOp()) {
    case FaultInjector::Decision::kProceed:
      break;
    case FaultInjector::Decision::kFail:
      return Status::IOError("injected fault: write killed (" + path_ + ")");
    case FaultInjector::Decision::kTear: {
      // A torn write: a prefix reaches the disk, then the "crash".
      const size_t prefix = size / 3;
      if (prefix > 0) {
        MAYBMS_RETURN_NOT_OK(WriteFully(fd_, path_, offset,
                                        static_cast<const char*>(buf),
                                        prefix));
      }
      return Status::IOError("injected fault: torn write (" + path_ + ")");
    }
  }
  return WriteFully(fd_, path_, offset, static_cast<const char*>(buf), size);
}

Status File::Sync() {
  if (FaultInjector::NextOp() != FaultInjector::Decision::kProceed) {
    return Status::IOError("injected fault: fsync killed (" + path_ + ")");
  }
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::IOError("fsync(" + path_ + "): " + std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> File::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) < 0) {
    return Status::IOError("fstat(" + path_ + "): " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status File::Truncate(uint64_t size) {
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::IOError("ftruncate(" + path_ + "): " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace maybms::storage
