#ifndef MAYBMS_SQL_LEXER_H_
#define MAYBMS_SQL_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/result.h"
#include "sql/token.h"

namespace maybms::sql {

/// Tokenizes a SQL/I-SQL statement string.
///
/// Supports: unquoted identifiers (letters, digits, _, and a trailing '
/// as used by the paper's SSN'/TEL'/Valid' names), "quoted identifiers",
/// 'string literals' with '' escaping, integer and real literals,
/// `--` line comments and `/* */` block comments.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  /// Tokenizes the whole input; the last token is kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string input_;
  size_t pos_ = 0;
};

}  // namespace maybms::sql

#endif  // MAYBMS_SQL_LEXER_H_
