#include "sql/parser.h"

#include <unordered_set>

#include "base/string_util.h"
#include "sql/lexer.h"

namespace maybms::sql {

namespace {

/// Words that cannot serve as implicit table/column aliases because they
/// begin a clause or operator.
bool IsReservedWord(const std::string& word) {
  static const std::unordered_set<std::string>* const kReserved =
      new std::unordered_set<std::string>{
          "select", "from",   "where",  "group",  "by",      "having",
          "order",  "limit",  "union",  "all",    "as",      "and",
          "or",     "not",    "in",     "is",     "null",    "like",
          "between", "exists", "case",  "when",   "then",    "else",
          "end",    "asc",    "desc",   "repair", "choice",  "assert",
          "worlds", "weight", "key",    "of",     "distinct", "possible",
          "certain", "conf",  "on",     "inner",  "join",    "values",
          "left",   "outer",  "intersect", "except",
          "set",    "into",   "primary", "unique", "drop",   "create",
          "table",  "view",   "insert", "update", "delete",  "if",
          "cast",   "true",   "false",
      };
  return kReserved->count(AsciiToLower(word)) > 0;
}

}  // namespace

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

Token Parser::Advance() {
  Token tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::CheckKeyword(const std::string& kw, size_t ahead) const {
  const Token& tok = Peek(ahead);
  return tok.type == TokenType::kIdentifier &&
         AsciiEqualsIgnoreCase(tok.text, kw);
}

bool Parser::MatchKeyword(const std::string& kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const std::string& kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere("expected keyword " + AsciiToUpper(kw));
  }
  return Status::OK();
}

bool Parser::Match(TokenType type) {
  if (Peek().type == type) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const std::string& what) {
  if (!Match(type)) return ErrorHere("expected " + what);
  return Status::OK();
}

Result<std::string> Parser::ExpectIdentifier(const std::string& what) {
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected " + what);
  }
  return Advance().text;
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& tok = Peek();
  std::string got = tok.type == TokenType::kEnd ? "end of input"
                                                : "'" + tok.text + "'";
  if (tok.text.empty() && tok.type != TokenType::kEnd) {
    got = "token at offset " + std::to_string(tok.offset);
  }
  return Status::ParseError(message + ", got " + got + " (offset " +
                            std::to_string(tok.offset) + ")");
}

Result<StatementPtr> Parser::ParseStatement(const std::string& text) {
  Lexer lexer(text);
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt, parser.ParseStatementInternal());
  parser.Match(TokenType::kSemicolon);
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseScript(const std::string& text) {
  Lexer lexer(text);
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  std::vector<StatementPtr> statements;
  while (parser.Peek().type != TokenType::kEnd) {
    if (parser.Match(TokenType::kSemicolon)) continue;
    MAYBMS_ASSIGN_OR_RETURN(StatementPtr stmt,
                            parser.ParseStatementInternal());
    statements.push_back(std::move(stmt));
    if (parser.Peek().type != TokenType::kEnd &&
        !parser.Match(TokenType::kSemicolon)) {
      return parser.ErrorHere("expected ';' between statements");
    }
  }
  return statements;
}

Result<StatementPtr> Parser::ParseStatementInternal() {
  if (CheckKeyword("select")) {
    MAYBMS_ASSIGN_OR_RETURN(auto select, ParseSelect());
    return StatementPtr(std::move(select));
  }
  if (CheckKeyword("create")) return ParseCreate();
  if (CheckKeyword("drop")) return ParseDrop();
  if (CheckKeyword("insert")) return ParseInsert();
  if (CheckKeyword("update")) return ParseUpdate();
  if (CheckKeyword("delete")) return ParseDelete();
  return ErrorHere("expected a statement");
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  MAYBMS_ASSIGN_OR_RETURN(auto head, ParseSimpleSelect());
  // Left-associative set-operation chain.
  SelectStatement* tail = head.get();
  while (CheckKeyword("union") || CheckKeyword("intersect") ||
         CheckKeyword("except")) {
    SetOpKind op = SetOpKind::kUnion;
    if (MatchKeyword("union")) {
      op = MatchKeyword("all") ? SetOpKind::kUnionAll : SetOpKind::kUnion;
    } else if (MatchKeyword("intersect")) {
      op = SetOpKind::kIntersect;
    } else {
      Advance();  // except
      op = SetOpKind::kExcept;
    }
    MAYBMS_ASSIGN_OR_RETURN(auto next, ParseSimpleSelect());
    tail->set_op = op;
    tail->union_next = std::move(next);
    tail = tail->union_next.get();
  }
  // I-SQL world clauses attach to the head of the chain.
  MAYBMS_RETURN_NOT_OK(ParseWorldClauses(head.get()));
  return head;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSimpleSelect() {
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("select"));
  auto select = std::make_unique<SelectStatement>();
  if (MatchKeyword("distinct")) select->distinct = true;

  if (MatchKeyword("possible")) {
    select->quantifier = WorldQuantifier::kPossible;
  } else if (MatchKeyword("certain")) {
    select->quantifier = WorldQuantifier::kCertain;
  } else if (CheckKeyword("conf") &&
             (CheckKeyword("from", 1) || Peek(1).type == TokenType::kComma ||
              Peek(1).type == TokenType::kEnd ||
              Peek(1).type == TokenType::kSemicolon ||
              Peek(1).type == TokenType::kLeftParen)) {
    Advance();
    select->quantifier = WorldQuantifier::kConf;
    if (Peek().type == TokenType::kLeftParen) {  // conf()
      Advance();
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    }
    // `select conf, E from ...` — further items follow the comma.
    Match(TokenType::kComma);
  }

  // Select items (may be absent entirely only for bare `select conf`).
  bool want_items = !(select->quantifier == WorldQuantifier::kConf &&
                      (CheckKeyword("from") ||
                       Peek().type == TokenType::kEnd ||
                       Peek().type == TokenType::kSemicolon));
  if (want_items) {
    while (true) {
      SelectItem item;
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.star = true;
      } else if (Peek().type == TokenType::kIdentifier &&
                 Peek(1).type == TokenType::kDot &&
                 Peek(2).type == TokenType::kStar) {
        item.star = true;
        item.star_qualifier = Advance().text;
        Advance();  // '.'
        Advance();  // '*'
      } else {
        MAYBMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          MAYBMS_ASSIGN_OR_RETURN(item.alias,
                                  ExpectIdentifier("alias after AS"));
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsReservedWord(Peek().text)) {
          item.alias = Advance().text;
        }
      }
      select->items.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("from")) {
    auto parse_table_ref = [&]() -> Result<TableRef> {
      TableRef ref;
      MAYBMS_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
      if (MatchKeyword("as")) {
        MAYBMS_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsReservedWord(Peek().text)) {
        ref.alias = Advance().text;
      }
      return ref;
    };
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(TableRef ref, parse_table_ref());
      select->from.push_back(std::move(ref));
      if (!Match(TokenType::kComma)) break;
    }
    // Explicit JOIN ... ON clauses after the comma list.
    while (CheckKeyword("join") || CheckKeyword("inner") ||
           CheckKeyword("left")) {
      JoinClause join;
      if (MatchKeyword("left")) {
        MatchKeyword("outer");
        join.kind = JoinKind::kLeftOuter;
        MAYBMS_RETURN_NOT_OK(ExpectKeyword("join"));
      } else {
        MatchKeyword("inner");
        MAYBMS_RETURN_NOT_OK(ExpectKeyword("join"));
      }
      MAYBMS_ASSIGN_OR_RETURN(join.table, parse_table_ref());
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("on"));
      MAYBMS_ASSIGN_OR_RETURN(join.on, ParseExpr());
      select->joins.push_back(std::move(join));
    }
  }

  if (MatchKeyword("where")) {
    MAYBMS_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }

  if (CheckKeyword("group") && CheckKeyword("by", 1)) {
    Advance();
    Advance();
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("having")) {
    MAYBMS_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }

  if (CheckKeyword("order") && CheckKeyword("by", 1)) {
    Advance();
    Advance();
    while (true) {
      OrderItem item;
      MAYBMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.descending = true;
      } else {
        MatchKeyword("asc");
      }
      select->order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("limit")) {
    if (Peek().type != TokenType::kIntegerLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    select->limit = Advance().int_value;
  }

  return select;
}

Status Parser::ParseWorldClauses(SelectStatement* select) {
  while (true) {
    if (CheckKeyword("repair")) {
      Advance();
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("by"));
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("key"));
      RepairClause clause;
      MAYBMS_ASSIGN_OR_RETURN(clause.key_columns, ParseColumnNameList());
      if (MatchKeyword("weight")) {
        MAYBMS_ASSIGN_OR_RETURN(clause.weight_column,
                                ExpectIdentifier("weight column"));
      }
      if (select->repair.has_value()) {
        return ErrorHere("duplicate REPAIR BY KEY clause");
      }
      select->repair = std::move(clause);
    } else if (CheckKeyword("choice")) {
      Advance();
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("of"));
      ChoiceClause clause;
      MAYBMS_ASSIGN_OR_RETURN(clause.columns, ParseColumnNameList());
      if (MatchKeyword("weight")) {
        MAYBMS_ASSIGN_OR_RETURN(clause.weight_column,
                                ExpectIdentifier("weight column"));
      }
      if (select->choice.has_value()) {
        return ErrorHere("duplicate CHOICE OF clause");
      }
      select->choice = std::move(clause);
    } else if (CheckKeyword("assert")) {
      Advance();
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      if (select->assert_condition) {
        // Multiple asserts conjoin.
        select->assert_condition = std::make_unique<BinaryExpr>(
            BinaryOp::kAnd, std::move(select->assert_condition),
            std::move(cond));
      } else {
        select->assert_condition = std::move(cond);
      }
    } else if (CheckKeyword("group") && CheckKeyword("worlds", 1)) {
      Advance();
      Advance();
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("by"));
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen,
                                  "'(' after GROUP WORLDS BY"));
      MAYBMS_ASSIGN_OR_RETURN(select->group_worlds_by, ParseSelect());
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    } else {
      break;
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> Parser::ParseColumnNameList() {
  std::vector<std::string> columns;
  while (true) {
    MAYBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column name"));
    columns.push_back(std::move(name));
    if (!Match(TokenType::kComma)) break;
  }
  return columns;
}

Result<StatementPtr> Parser::ParseCreate() {
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("create"));
  bool is_view = false;
  if (MatchKeyword("view")) {
    is_view = true;
  } else {
    MAYBMS_RETURN_NOT_OK(ExpectKeyword("table"));
  }
  MAYBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));

  if (MatchKeyword("as")) {
    auto stmt = std::make_unique<CreateTableAsStatement>();
    stmt->table_name = std::move(name);
    stmt->is_view = is_view;
    MAYBMS_ASSIGN_OR_RETURN(stmt->query, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  if (is_view) return ErrorHere("expected AS after CREATE VIEW name");

  MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'(' or AS"));
  auto stmt = std::make_unique<CreateTableStatement>();
  stmt->table_name = std::move(name);
  while (true) {
    if (CheckKeyword("primary")) {
      Advance();
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("key"));
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
      Constraint c;
      c.kind = ConstraintKind::kPrimaryKey;
      MAYBMS_ASSIGN_OR_RETURN(c.columns, ParseColumnNameList());
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      stmt->table_constraints.push_back(std::move(c));
    } else if (CheckKeyword("unique")) {
      Advance();
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
      Constraint c;
      c.kind = ConstraintKind::kUnique;
      MAYBMS_ASSIGN_OR_RETURN(c.columns, ParseColumnNameList());
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      stmt->table_constraints.push_back(std::move(c));
    } else {
      ColumnDef col;
      MAYBMS_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      MAYBMS_ASSIGN_OR_RETURN(std::string type_name,
                              ExpectIdentifier("column type"));
      MAYBMS_ASSIGN_OR_RETURN(col.type, DataTypeFromString(type_name));
      while (true) {
        if (CheckKeyword("primary") && CheckKeyword("key", 1)) {
          Advance();
          Advance();
          col.primary_key = true;
        } else if (MatchKeyword("unique")) {
          col.unique = true;
        } else if (CheckKeyword("not") && CheckKeyword("null", 1)) {
          Advance();
          Advance();
          col.not_null = true;
        } else {
          break;
        }
      }
      stmt->columns.push_back(std::move(col));
    }
    if (!Match(TokenType::kComma)) break;
  }
  MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDrop() {
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("drop"));
  if (!MatchKeyword("table") && !MatchKeyword("view")) {
    return ErrorHere("expected TABLE or VIEW after DROP");
  }
  auto stmt = std::make_unique<DropTableStatement>();
  if (CheckKeyword("if") && CheckKeyword("exists", 1)) {
    Advance();
    Advance();
    stmt->if_exists = true;
  }
  MAYBMS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseInsert() {
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("insert"));
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("into"));
  auto stmt = std::make_unique<InsertStatement>();
  MAYBMS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));

  if (Peek().type == TokenType::kLeftParen && !CheckKeyword("select", 1)) {
    Advance();
    MAYBMS_ASSIGN_OR_RETURN(stmt->columns, ParseColumnNameList());
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
  }

  if (MatchKeyword("values")) {
    while (true) {
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
      std::vector<ExprPtr> row;
      while (true) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!Match(TokenType::kComma)) break;
      }
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      stmt->rows.push_back(std::move(row));
      if (!Match(TokenType::kComma)) break;
    }
  } else if (CheckKeyword("select")) {
    MAYBMS_ASSIGN_OR_RETURN(stmt->query, ParseSelect());
  } else {
    return ErrorHere("expected VALUES or SELECT");
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUpdate() {
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("update"));
  auto stmt = std::make_unique<UpdateStatement>();
  MAYBMS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("set"));
  while (true) {
    MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kEquals, "'='"));
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
    if (!Match(TokenType::kComma)) break;
  }
  if (MatchKeyword("where")) {
    MAYBMS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDelete() {
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("delete"));
  MAYBMS_RETURN_NOT_OK(ExpectKeyword("from"));
  auto stmt = std::make_unique<DeleteStatement>();
  MAYBMS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  if (MatchKeyword("where")) {
    MAYBMS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

// ----------------------------- Expressions ---------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("or")) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (CheckKeyword("and")) {
    Advance();
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  // IS [NOT] NULL
  if (CheckKeyword("is")) {
    Advance();
    bool negated = MatchKeyword("not");
    MAYBMS_RETURN_NOT_OK(ExpectKeyword("null"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
  }

  bool negated = false;
  if (CheckKeyword("not") &&
      (CheckKeyword("in", 1) || CheckKeyword("between", 1) ||
       CheckKeyword("like", 1))) {
    Advance();
    negated = true;
  }

  if (MatchKeyword("in")) {
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'(' after IN"));
    if (CheckKeyword("select")) {
      MAYBMS_ASSIGN_OR_RETURN(auto sub, ParseSelect());
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      return ExprPtr(std::make_unique<InSubqueryExpr>(std::move(left),
                                                      std::move(sub), negated));
    }
    std::vector<ExprPtr> items;
    while (true) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      items.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::make_unique<InListExpr>(std::move(left),
                                                std::move(items), negated));
  }

  if (MatchKeyword("between")) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    MAYBMS_RETURN_NOT_OK(ExpectKeyword("and"));
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    return ExprPtr(std::make_unique<BetweenExpr>(
        std::move(left), std::move(low), std::move(high), negated));
  }

  if (MatchKeyword("like")) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    ExprPtr like = std::make_unique<BinaryExpr>(
        BinaryOp::kLike, std::move(left), std::move(pattern));
    if (negated) {
      like = std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(like));
    }
    return like;
  }

  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEquals:
      op = BinaryOp::kEquals;
      break;
    case TokenType::kNotEquals:
      op = BinaryOp::kNotEquals;
      break;
    case TokenType::kLess:
      op = BinaryOp::kLess;
      break;
    case TokenType::kLessEquals:
      op = BinaryOp::kLessEquals;
      break;
    case TokenType::kGreater:
      op = BinaryOp::kGreater;
      break;
    case TokenType::kGreaterEquals:
      op = BinaryOp::kGreaterEquals;
      break;
    default:
      return left;
  }
  Advance();
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                              std::move(right)));
}

Result<ExprPtr> Parser::ParseAdditive() {
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSubtract;
    } else {
      break;
    }
    Advance();
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = BinaryOp::kMultiply;
    } else if (Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDivide;
    } else if (Peek().type == TokenType::kPercent) {
      op = BinaryOp::kModulo;
    } else {
      break;
    }
    Advance();
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
  }
  Match(TokenType::kPlus);  // unary plus is a no-op
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();

  switch (tok.type) {
    case TokenType::kIntegerLiteral: {
      Token t = Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Integer(t.int_value)));
    }
    case TokenType::kRealLiteral: {
      Token t = Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Real(t.real_value)));
    }
    case TokenType::kStringLiteral: {
      Token t = Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Text(std::move(t.text))));
    }
    case TokenType::kLeftParen: {
      Advance();
      if (CheckKeyword("select")) {
        MAYBMS_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
        return ExprPtr(std::make_unique<ScalarSubqueryExpr>(std::move(sub)));
      }
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      return inner;
    }
    case TokenType::kIdentifier:
      break;  // handled below
    default:
      return ErrorHere("expected an expression");
  }

  // Keyword-led expressions.
  if (CheckKeyword("true")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Boolean(true)));
  }
  if (CheckKeyword("false")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Boolean(false)));
  }
  if (CheckKeyword("null")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
  }
  if (CheckKeyword("exists")) {
    Advance();
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'(' after EXISTS"));
    MAYBMS_ASSIGN_OR_RETURN(auto sub, ParseSelect());
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::make_unique<ExistsExpr>(std::move(sub), false));
  }
  if (CheckKeyword("case")) {
    Advance();
    std::vector<CaseExpr::WhenClause> whens;
    ExprPtr else_result;
    while (MatchKeyword("when")) {
      CaseExpr::WhenClause clause;
      MAYBMS_ASSIGN_OR_RETURN(clause.condition, ParseExpr());
      MAYBMS_RETURN_NOT_OK(ExpectKeyword("then"));
      MAYBMS_ASSIGN_OR_RETURN(clause.result, ParseExpr());
      whens.push_back(std::move(clause));
    }
    if (whens.empty()) return ErrorHere("CASE requires at least one WHEN");
    if (MatchKeyword("else")) {
      MAYBMS_ASSIGN_OR_RETURN(else_result, ParseExpr());
    }
    MAYBMS_RETURN_NOT_OK(ExpectKeyword("end"));
    return ExprPtr(
        std::make_unique<CaseExpr>(std::move(whens), std::move(else_result)));
  }
  if (CheckKeyword("cast")) {
    Advance();
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'(' after CAST"));
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    MAYBMS_RETURN_NOT_OK(ExpectKeyword("as"));
    MAYBMS_ASSIGN_OR_RETURN(std::string type_name,
                            ExpectIdentifier("type name"));
    MAYBMS_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::make_unique<CastExpr>(std::move(operand), type));
  }

  // Function call?
  if (Peek(1).type == TokenType::kLeftParen) {
    std::string name = AsciiToLower(Advance().text);
    Advance();  // '('
    bool star = false;
    bool distinct = false;
    std::vector<ExprPtr> args;
    if (Peek().type == TokenType::kStar) {
      Advance();
      star = true;
    } else if (Peek().type != TokenType::kRightParen) {
      if (MatchKeyword("distinct")) distinct = true;
      while (true) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        args.push_back(std::move(e));
        if (!Match(TokenType::kComma)) break;
      }
    }
    MAYBMS_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::make_unique<FunctionCallExpr>(
        std::move(name), std::move(args), distinct, star));
  }

  // Column reference: name or qualifier.name
  std::string first = Advance().text;
  if (Match(TokenType::kDot)) {
    MAYBMS_ASSIGN_OR_RETURN(std::string name,
                            ExpectIdentifier("column name after '.'"));
    return ExprPtr(
        std::make_unique<ColumnRefExpr>(std::move(first), std::move(name)));
  }
  return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
}

}  // namespace maybms::sql
