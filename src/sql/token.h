#ifndef MAYBMS_SQL_TOKEN_H_
#define MAYBMS_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace maybms::sql {

enum class TokenType {
  kEnd,
  kIdentifier,     // unquoted identifier or keyword (parser decides)
  kStringLiteral,  // 'text' with '' escaping
  kIntegerLiteral,
  kRealLiteral,
  // Operators / punctuation.
  kComma,
  kDot,
  kSemicolon,
  kLeftParen,
  kRightParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEquals,
  kNotEquals,  // <> or !=
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // identifier/keyword text or literal spelling
  int64_t int_value = 0;   // for kIntegerLiteral
  double real_value = 0;   // for kRealLiteral
  size_t offset = 0;       // byte offset in the input
};

}  // namespace maybms::sql

#endif  // MAYBMS_SQL_TOKEN_H_
