#include "sql/ast.h"

#include "base/string_util.h"

namespace maybms::sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSubtract:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDivide:
      return "/";
    case BinaryOp::kModulo:
      return "%";
    case BinaryOp::kEquals:
      return "=";
    case BinaryOp::kNotEquals:
      return "<>";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEquals:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEquals:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

// --------------------------- Clone implementations -------------------------

std::unique_ptr<Expr> LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value);
}

std::unique_ptr<Expr> ColumnRefExpr::Clone() const {
  return std::make_unique<ColumnRefExpr>(qualifier, name);
}

std::unique_ptr<Expr> UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op, operand->Clone());
}

std::unique_ptr<Expr> BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op, left->Clone(), right->Clone());
}

std::unique_ptr<Expr> FunctionCallExpr::Clone() const {
  std::vector<ExprPtr> cloned_args;
  cloned_args.reserve(args.size());
  for (const auto& a : args) cloned_args.push_back(a->Clone());
  return std::make_unique<FunctionCallExpr>(name, std::move(cloned_args),
                                            distinct, star);
}

std::unique_ptr<Expr> IsNullExpr::Clone() const {
  return std::make_unique<IsNullExpr>(operand->Clone(), negated);
}

std::unique_ptr<Expr> InListExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(items.size());
  for (const auto& i : items) cloned.push_back(i->Clone());
  return std::make_unique<InListExpr>(operand->Clone(), std::move(cloned),
                                      negated);
}

InSubqueryExpr::InSubqueryExpr(ExprPtr operand_in,
                               std::unique_ptr<SelectStatement> sub,
                               bool negated_in)
    : Expr(ExprKind::kInSubquery),
      operand(std::move(operand_in)),
      subquery(std::move(sub)),
      negated(negated_in) {}
InSubqueryExpr::~InSubqueryExpr() = default;

std::unique_ptr<Expr> InSubqueryExpr::Clone() const {
  return std::make_unique<InSubqueryExpr>(operand->Clone(), subquery->Clone(),
                                          negated);
}

ExistsExpr::ExistsExpr(std::unique_ptr<SelectStatement> sub, bool negated_in)
    : Expr(ExprKind::kExists), subquery(std::move(sub)), negated(negated_in) {}
ExistsExpr::~ExistsExpr() = default;

std::unique_ptr<Expr> ExistsExpr::Clone() const {
  return std::make_unique<ExistsExpr>(subquery->Clone(), negated);
}

ScalarSubqueryExpr::ScalarSubqueryExpr(std::unique_ptr<SelectStatement> sub)
    : Expr(ExprKind::kScalarSubquery), subquery(std::move(sub)) {}
ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

std::unique_ptr<Expr> ScalarSubqueryExpr::Clone() const {
  return std::make_unique<ScalarSubqueryExpr>(subquery->Clone());
}

std::unique_ptr<Expr> BetweenExpr::Clone() const {
  return std::make_unique<BetweenExpr>(operand->Clone(), low->Clone(),
                                       high->Clone(), negated);
}

std::unique_ptr<Expr> CaseExpr::Clone() const {
  std::vector<WhenClause> cloned;
  cloned.reserve(whens.size());
  for (const auto& w : whens) {
    cloned.push_back(WhenClause{w.condition->Clone(), w.result->Clone()});
  }
  return std::make_unique<CaseExpr>(std::move(cloned), CloneExpr(else_result));
}

std::unique_ptr<Expr> CastExpr::Clone() const {
  return std::make_unique<CastExpr>(operand->Clone(), target);
}

// --------------------------- ToString implementations ----------------------

std::string LiteralExpr::ToString() const {
  if (value.type() == DataType::kText) return "'" + value.AsText() + "'";
  return value.ToString();
}

std::string ColumnRefExpr::ToString() const {
  return qualifier.empty() ? name : qualifier + "." + name;
}

std::string UnaryExpr::ToString() const {
  return (op == UnaryOp::kNot ? "NOT (" : "-(") + operand->ToString() + ")";
}

std::string BinaryExpr::ToString() const {
  return "(" + left->ToString() + " " + BinaryOpToString(op) + " " +
         right->ToString() + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::string out = AsciiToUpper(name) + "(";
  if (star) {
    out += "*";
  } else {
    if (distinct) out += "DISTINCT ";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i]->ToString();
    }
  }
  return out + ")";
}

std::string IsNullExpr::ToString() const {
  return "(" + operand->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
         ")";
}

std::string InListExpr::ToString() const {
  std::string out = "(" + operand->ToString() + (negated ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToString();
  }
  return out + "))";
}

std::string InSubqueryExpr::ToString() const {
  return "(" + operand->ToString() + (negated ? " NOT IN (" : " IN (") +
         subquery->ToString() + "))";
}

std::string ExistsExpr::ToString() const {
  return std::string(negated ? "NOT EXISTS (" : "EXISTS (") +
         subquery->ToString() + ")";
}

std::string ScalarSubqueryExpr::ToString() const {
  return "(" + subquery->ToString() + ")";
}

std::string BetweenExpr::ToString() const {
  return "(" + operand->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
         low->ToString() + " AND " + high->ToString() + ")";
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& w : whens) {
    out += " WHEN " + w.condition->ToString() + " THEN " + w.result->ToString();
  }
  if (else_result) out += " ELSE " + else_result->ToString();
  return out + " END";
}

std::string CastExpr::ToString() const {
  return "CAST(" + operand->ToString() + " AS " + DataTypeToString(target) +
         ")";
}

// --------------------------- JoinClause ------------------------------------

JoinClause JoinClause::Clone() const {
  JoinClause out;
  out.kind = kind;
  out.table = table;
  out.on = CloneExpr(on);
  return out;
}

// --------------------------- SelectItem ------------------------------------

SelectItem SelectItem::Clone() const {
  SelectItem item;
  item.expr = CloneExpr(expr);
  item.alias = alias;
  item.star = star;
  item.star_qualifier = star_qualifier;
  return item;
}

std::string SelectItem::ToString() const {
  if (star) return star_qualifier.empty() ? "*" : star_qualifier + ".*";
  std::string out = expr->ToString();
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

// --------------------------- Statements ------------------------------------

std::unique_ptr<Statement> SelectStatement::CloneStatement() const {
  return Clone();
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = distinct;
  out->quantifier = quantifier;
  for (const auto& item : items) out->items.push_back(item.Clone());
  out->from = from;
  for (const auto& join : joins) out->joins.push_back(join.Clone());
  out->where = CloneExpr(where);
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = CloneExpr(having);
  for (const auto& o : order_by) {
    out->order_by.push_back(OrderItem{o.expr->Clone(), o.descending});
  }
  out->limit = limit;
  out->repair = repair;
  out->choice = choice;
  out->assert_condition = CloneExpr(assert_condition);
  if (group_worlds_by) out->group_worlds_by = group_worlds_by->Clone();
  if (union_next) out->union_next = union_next->Clone();
  out->set_op = set_op;
  return out;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  switch (quantifier) {
    case WorldQuantifier::kPossible:
      out += "POSSIBLE ";
      break;
    case WorldQuantifier::kCertain:
      out += "CERTAIN ";
      break;
    case WorldQuantifier::kConf:
      out += "CONF ";
      break;
    case WorldQuantifier::kNone:
      break;
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].table_name;
      if (!from[i].alias.empty()) out += " " + from[i].alias;
    }
  }
  for (const JoinClause& join : joins) {
    out += join.kind == JoinKind::kLeftOuter ? " LEFT JOIN " : " JOIN ";
    out += join.table.table_name;
    if (!join.table.alias.empty()) out += " " + join.table.alias;
    out += " ON " + join.on->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  if (repair.has_value()) {
    out += " REPAIR BY KEY " + Join(repair->key_columns, ", ");
    if (!repair->weight_column.empty()) out += " WEIGHT " + repair->weight_column;
  }
  if (choice.has_value()) {
    out += " CHOICE OF " + Join(choice->columns, ", ");
    if (!choice->weight_column.empty()) out += " WEIGHT " + choice->weight_column;
  }
  if (assert_condition) out += " ASSERT " + assert_condition->ToString();
  if (group_worlds_by) {
    out += " GROUP WORLDS BY (" + group_worlds_by->ToString() + ")";
  }
  if (union_next) {
    switch (set_op) {
      case SetOpKind::kUnion:
        out += " UNION ";
        break;
      case SetOpKind::kUnionAll:
        out += " UNION ALL ";
        break;
      case SetOpKind::kIntersect:
        out += " INTERSECT ";
        break;
      case SetOpKind::kExcept:
        out += " EXCEPT ";
        break;
    }
    out += union_next->ToString();
  }
  return out;
}

std::unique_ptr<Statement> CreateTableStatement::CloneStatement() const {
  auto out = std::make_unique<CreateTableStatement>();
  out->table_name = table_name;
  out->columns = columns;
  out->table_constraints = table_constraints;
  return out;
}

std::string CreateTableStatement::ToString() const {
  std::string out = "CREATE TABLE " + table_name + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name;
    out += " ";
    out += DataTypeToString(columns[i].type);
    if (columns[i].primary_key) out += " PRIMARY KEY";
    if (columns[i].unique) out += " UNIQUE";
    if (columns[i].not_null) out += " NOT NULL";
  }
  return out + ")";
}

std::unique_ptr<Statement> CreateTableAsStatement::CloneStatement() const {
  auto out = std::make_unique<CreateTableAsStatement>();
  out->table_name = table_name;
  out->is_view = is_view;
  out->query = query->Clone();
  return out;
}

std::string CreateTableAsStatement::ToString() const {
  return std::string("CREATE ") + (is_view ? "VIEW " : "TABLE ") + table_name +
         " AS " + query->ToString();
}

std::unique_ptr<Statement> DropTableStatement::CloneStatement() const {
  auto out = std::make_unique<DropTableStatement>();
  out->table_name = table_name;
  out->if_exists = if_exists;
  return out;
}

std::string DropTableStatement::ToString() const {
  return "DROP TABLE " + std::string(if_exists ? "IF EXISTS " : "") +
         table_name;
}

std::unique_ptr<Statement> InsertStatement::CloneStatement() const {
  auto out = std::make_unique<InsertStatement>();
  out->table_name = table_name;
  out->columns = columns;
  for (const auto& row : rows) {
    std::vector<ExprPtr> cloned;
    cloned.reserve(row.size());
    for (const auto& e : row) cloned.push_back(e->Clone());
    out->rows.push_back(std::move(cloned));
  }
  if (query) out->query = query->Clone();
  return out;
}

std::string InsertStatement::ToString() const {
  std::string out = "INSERT INTO " + table_name;
  if (!columns.empty()) out += " (" + Join(columns, ", ") + ")";
  if (query) return out + " " + query->ToString();
  out += " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i > 0) out += ", ";
      out += rows[r][i]->ToString();
    }
    out += ")";
  }
  return out;
}

std::unique_ptr<Statement> UpdateStatement::CloneStatement() const {
  auto out = std::make_unique<UpdateStatement>();
  out->table_name = table_name;
  for (const auto& [col, e] : assignments) {
    out->assignments.emplace_back(col, e->Clone());
  }
  out->where = CloneExpr(where);
  return out;
}

std::string UpdateStatement::ToString() const {
  std::string out = "UPDATE " + table_name + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::unique_ptr<Statement> DeleteStatement::CloneStatement() const {
  auto out = std::make_unique<DeleteStatement>();
  out->table_name = table_name;
  out->where = CloneExpr(where);
  return out;
}

std::string DeleteStatement::ToString() const {
  std::string out = "DELETE FROM " + table_name;
  if (where) out += " WHERE " + where->ToString();
  return out;
}

}  // namespace maybms::sql
