#ifndef MAYBMS_SQL_AST_H_
#define MAYBMS_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "types/value.h"

namespace maybms::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,     // aggregate or scalar function
  kIsNull,           // expr IS [NOT] NULL
  kInList,           // expr [NOT] IN (e1, e2, ...)
  kInSubquery,       // expr [NOT] IN (select ...)
  kExists,           // [NOT] EXISTS (select ...)
  kScalarSubquery,   // (select ...)
  kBetween,          // expr [NOT] BETWEEN lo AND hi
  kCase,             // CASE WHEN ... THEN ... [ELSE ...] END
  kCast,             // CAST(expr AS type)
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEquals,
  kNotEquals,
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
  kAnd,
  kOr,
  kLike,
};

const char* BinaryOpToString(BinaryOp op);

struct SelectStatement;

/// Base class of all expression AST nodes.
struct Expr {
  explicit Expr(ExprKind kind_in) : kind(kind_in) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Deep copy (needed when a statement template is evaluated in many
  /// worlds with per-world rewrites, and for view expansion).
  virtual std::unique_ptr<Expr> Clone() const = 0;

  /// SQL-ish rendering for diagnostics and golden tests.
  virtual std::string ToString() const = 0;

  ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  Value value;
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string qualifier_in, std::string name_in)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qualifier_in)),
        name(std::move(name_in)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::string qualifier;  // table alias or empty
  std::string name;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp op_in, ExprPtr operand_in)
      : Expr(ExprKind::kUnary), op(op_in), operand(std::move(operand_in)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp op_in, ExprPtr left_in, ExprPtr right_in)
      : Expr(ExprKind::kBinary),
        op(op_in),
        left(std::move(left_in)),
        right(std::move(right_in)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// Function calls cover both aggregates (SUM/COUNT/AVG/MIN/MAX, detected by
/// name during planning) and scalar functions (ABS, LOWER, UPPER, LENGTH,
/// ROUND, COALESCE).
struct FunctionCallExpr : Expr {
  FunctionCallExpr(std::string name_in, std::vector<ExprPtr> args_in,
                   bool distinct_in, bool star_in)
      : Expr(ExprKind::kFunctionCall),
        name(std::move(name_in)),
        args(std::move(args_in)),
        distinct(distinct_in),
        star(star_in) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::string name;           // lower-cased
  std::vector<ExprPtr> args;
  bool distinct = false;      // COUNT(DISTINCT x)
  bool star = false;          // COUNT(*)
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr operand_in, bool negated_in)
      : Expr(ExprKind::kIsNull),
        operand(std::move(operand_in)),
        negated(negated_in) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
  bool negated;
};

struct InListExpr : Expr {
  InListExpr(ExprPtr operand_in, std::vector<ExprPtr> items_in, bool negated_in)
      : Expr(ExprKind::kInList),
        operand(std::move(operand_in)),
        items(std::move(items_in)),
        negated(negated_in) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr operand_in, std::unique_ptr<SelectStatement> sub,
                 bool negated_in);
  ~InSubqueryExpr() override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
  std::unique_ptr<SelectStatement> subquery;
  bool negated;
};

struct ExistsExpr : Expr {
  ExistsExpr(std::unique_ptr<SelectStatement> sub, bool negated_in);
  ~ExistsExpr() override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::unique_ptr<SelectStatement> subquery;
  bool negated;
};

struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(std::unique_ptr<SelectStatement> sub);
  ~ScalarSubqueryExpr() override;
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::unique_ptr<SelectStatement> subquery;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr operand_in, ExprPtr low_in, ExprPtr high_in,
              bool negated_in)
      : Expr(ExprKind::kBetween),
        operand(std::move(operand_in)),
        low(std::move(low_in)),
        high(std::move(high_in)),
        negated(negated_in) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
  ExprPtr low;
  ExprPtr high;
  bool negated;
};

struct CaseExpr : Expr {
  struct WhenClause {
    ExprPtr condition;
    ExprPtr result;
  };
  CaseExpr(std::vector<WhenClause> whens_in, ExprPtr else_result_in)
      : Expr(ExprKind::kCase),
        whens(std::move(whens_in)),
        else_result(std::move(else_result_in)) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  std::vector<WhenClause> whens;
  ExprPtr else_result;  // may be null
};

struct CastExpr : Expr {
  CastExpr(ExprPtr operand_in, DataType target_in)
      : Expr(ExprKind::kCast),
        operand(std::move(operand_in)),
        target(target_in) {}
  std::unique_ptr<Expr> Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
  DataType target;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// `possible` / `certain` / `conf` prefix of a select list — the I-SQL
/// operations that cross world borders (paper §2, Ex. 2.8–2.10).
enum class WorldQuantifier { kNone, kPossible, kCertain, kConf };

/// One item of a select list.
struct SelectItem {
  ExprPtr expr;            // null for star
  std::string alias;       // output column name override
  bool star = false;       // `*`
  std::string star_qualifier;  // `t.*`

  SelectItem Clone() const;
  std::string ToString() const;
};

struct TableRef {
  std::string table_name;
  std::string alias;  // empty -> table_name

  const std::string& effective_alias() const {
    return alias.empty() ? table_name : alias;
  }
};

enum class JoinKind { kInner, kLeftOuter };

/// An explicit `[INNER | LEFT [OUTER]] JOIN table ON condition` following
/// the comma-separated FROM items.
struct JoinClause {
  JoinKind kind = JoinKind::kInner;
  TableRef table;
  ExprPtr on;  // required

  JoinClause Clone() const;
};

/// Set operation linking a select to `union_next`.
enum class SetOpKind { kUnion, kUnionAll, kIntersect, kExcept };

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// `repair by key A, B [weight W]` (paper Ex. 2.3, 2.4).
struct RepairClause {
  std::vector<std::string> key_columns;
  std::string weight_column;  // empty -> uniform weights
};

/// `choice of A, B [weight W]` (paper Ex. 2.6, 2.7).
struct ChoiceClause {
  std::vector<std::string> columns;
  std::string weight_column;  // empty -> uniform weights
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kCreateTableAs,  // CREATE TABLE ... AS and CREATE VIEW ... AS (is_view)
  kDropTable,
  kInsert,
  kUpdate,
  kDelete,
};

struct Statement {
  explicit Statement(StatementKind kind_in) : kind(kind_in) {}
  virtual ~Statement() = default;
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  virtual std::unique_ptr<Statement> CloneStatement() const = 0;
  virtual std::string ToString() const = 0;

  StatementKind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

/// A full I-SQL select query. The world-set clauses (`repair by key`,
/// `choice of`, `assert`, `group worlds by`) extend the per-world SQL
/// core; see the paper's §2 for their semantics.
struct SelectStatement : Statement {
  SelectStatement() : Statement(StatementKind::kSelect) {}

  std::unique_ptr<Statement> CloneStatement() const override;
  std::unique_ptr<SelectStatement> Clone() const;
  std::string ToString() const override;

  bool distinct = false;
  WorldQuantifier quantifier = WorldQuantifier::kNone;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<JoinClause> joins;  // explicit JOIN ... ON clauses
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                // may be null
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  std::optional<RepairClause> repair;
  std::optional<ChoiceClause> choice;
  ExprPtr assert_condition;                       // may be null
  std::unique_ptr<SelectStatement> group_worlds_by;  // may be null

  /// Set-operation chain (left-associative):
  /// `this <set_op> union_next`. The I-SQL tail clauses above always
  /// belong to the head statement of a chain.
  std::unique_ptr<SelectStatement> union_next;
  SetOpKind set_op = SetOpKind::kUnion;
};

struct ColumnDef {
  std::string name;
  DataType type = DataType::kText;
  bool not_null = false;
  bool primary_key = false;  // single-column shorthand
  bool unique = false;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::unique_ptr<Statement> CloneStatement() const override;
  std::string ToString() const override;

  std::string table_name;
  std::vector<ColumnDef> columns;
  std::vector<Constraint> table_constraints;  // PRIMARY KEY(...) / UNIQUE(...)
};

struct CreateTableAsStatement : Statement {
  CreateTableAsStatement() : Statement(StatementKind::kCreateTableAs) {}
  std::unique_ptr<Statement> CloneStatement() const override;
  std::string ToString() const override;

  std::string table_name;
  bool is_view = false;  // CREATE VIEW name AS ...
  std::unique_ptr<SelectStatement> query;
};

struct DropTableStatement : Statement {
  DropTableStatement() : Statement(StatementKind::kDropTable) {}
  std::unique_ptr<Statement> CloneStatement() const override;
  std::string ToString() const override;

  std::string table_name;
  bool if_exists = false;
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(StatementKind::kInsert) {}
  std::unique_ptr<Statement> CloneStatement() const override;
  std::string ToString() const override;

  std::string table_name;
  std::vector<std::string> columns;            // may be empty -> all columns
  std::vector<std::vector<ExprPtr>> rows;      // VALUES (...), (...)
  std::unique_ptr<SelectStatement> query;      // INSERT INTO t SELECT ...
};

struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  std::unique_ptr<Statement> CloneStatement() const override;
  std::string ToString() const override;

  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  std::unique_ptr<Statement> CloneStatement() const override;
  std::string ToString() const override;

  std::string table_name;
  ExprPtr where;  // may be null
};

/// Deep-copies an optional expression.
inline ExprPtr CloneExpr(const ExprPtr& e) { return e ? e->Clone() : nullptr; }

}  // namespace maybms::sql

#endif  // MAYBMS_SQL_AST_H_
