#ifndef MAYBMS_SQL_PARSER_H_
#define MAYBMS_SQL_PARSER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace maybms::sql {

/// Recursive-descent parser for the I-SQL dialect.
///
/// Grammar highlights (keywords are case-insensitive):
///
///   select  := SELECT [DISTINCT] [POSSIBLE|CERTAIN|CONF] items
///              [FROM table_ref (',' table_ref)*]
///              [WHERE expr] [GROUP BY exprs] [HAVING expr]
///              [ORDER BY items] [LIMIT n]
///              { REPAIR BY KEY cols [WEIGHT col]
///              | CHOICE OF cols [WEIGHT col]
///              | ASSERT expr
///              | GROUP WORLDS BY '(' select ')' }*
///              [UNION [ALL] select]
///
/// plus CREATE TABLE (schema or AS select), CREATE VIEW, DROP TABLE/VIEW,
/// INSERT, UPDATE, DELETE. See the paper's §2 for the I-SQL operations.
class Parser {
 public:
  /// Parses a single statement (a trailing ';' is allowed).
  static Result<StatementPtr> ParseStatement(const std::string& text);

  /// Parses a ';'-separated script.
  static Result<std::vector<StatementPtr>> ParseScript(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // Token helpers.
  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool CheckKeyword(const std::string& kw, size_t ahead = 0) const;
  bool MatchKeyword(const std::string& kw);
  Status ExpectKeyword(const std::string& kw);
  bool Match(TokenType type);
  Status Expect(TokenType type, const std::string& what);
  Result<std::string> ExpectIdentifier(const std::string& what);
  Status ErrorHere(const std::string& message) const;

  // Statements.
  Result<StatementPtr> ParseStatementInternal();
  Result<std::unique_ptr<SelectStatement>> ParseSelect();
  Result<std::unique_ptr<SelectStatement>> ParseSimpleSelect();
  Status ParseWorldClauses(SelectStatement* select);
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseDelete();

  // Expressions (by decreasing precedence binding).
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  Result<std::vector<std::string>> ParseColumnNameList();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace maybms::sql

#endif  // MAYBMS_SQL_PARSER_H_
