#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace maybms::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  // A trailing prime (') is handled separately in NextToken so that the
  // paper's SSN' / Valid' style names lex as single identifiers.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

char Lexer::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < input_.size() ? input_[i] : '\0';
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = input_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && input_[pos_] != '\n') ++pos_;
    } else if (c == '/' && Peek(1) == '*') {
      pos_ += 2;
      while (!AtEnd() && !(input_[pos_] == '*' && Peek(1) == '/')) ++pos_;
      if (!AtEnd()) pos_ += 2;
    } else {
      break;
    }
  }
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.offset = pos_;
  if (AtEnd()) {
    tok.type = TokenType::kEnd;
    return tok;
  }
  char c = input_[pos_];

  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (!AtEnd() && IsIdentCont(input_[pos_])) ++pos_;
    // Trailing primes: SSN', Valid''... Only when not starting a string
    // literal, i.e. the quote is not followed by identifier/whitespace
    // that would begin a literal — a prime directly after an identifier
    // is always part of the name unless it opens a quoted string that is
    // closed later... We adopt the simple rule: one or more quotes right
    // after an identifier belong to the identifier if they are not
    // followed by a printable run ending in another quote on the same
    // token boundary. In practice the grammar never allows a string
    // literal directly after an identifier, so consuming primes is safe.
    while (!AtEnd() && input_[pos_] == '\'') {
      // Belongs to the identifier only if the next char cannot continue a
      // string literal context: next char must not be alnum-quote pair.
      ++pos_;
    }
    tok.type = TokenType::kIdentifier;
    tok.text = input_.substr(start, pos_ - start);
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    size_t start = pos_;
    bool is_real = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (!AtEnd() && input_[pos_] == '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_real = true;
      ++pos_;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      size_t mark = pos_;
      ++pos_;
      if (!AtEnd() && (input_[pos_] == '+' || input_[pos_] == '-')) ++pos_;
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        is_real = true;
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
      } else {
        pos_ = mark;  // 'e' begins an identifier, not an exponent
      }
    }
    std::string text = input_.substr(start, pos_ - start);
    if (is_real) {
      tok.type = TokenType::kRealLiteral;
      tok.real_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok.type = TokenType::kIntegerLiteral;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    tok.text = std::move(text);
    return tok;
  }

  if (c == '\'') {
    ++pos_;
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      char d = input_[pos_++];
      if (d == '\'') {
        if (!AtEnd() && input_[pos_] == '\'') {  // '' escape
          text += '\'';
          ++pos_;
        } else {
          break;
        }
      } else {
        text += d;
      }
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(text);
    return tok;
  }

  if (c == '"') {  // quoted identifier
    ++pos_;
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(tok.offset));
      }
      char d = input_[pos_++];
      if (d == '"') break;
      text += d;
    }
    tok.type = TokenType::kIdentifier;
    tok.text = std::move(text);
    return tok;
  }

  ++pos_;
  switch (c) {
    case ',':
      tok.type = TokenType::kComma;
      return tok;
    case '.':
      tok.type = TokenType::kDot;
      return tok;
    case ';':
      tok.type = TokenType::kSemicolon;
      return tok;
    case '(':
      tok.type = TokenType::kLeftParen;
      return tok;
    case ')':
      tok.type = TokenType::kRightParen;
      return tok;
    case '*':
      tok.type = TokenType::kStar;
      return tok;
    case '+':
      tok.type = TokenType::kPlus;
      return tok;
    case '-':
      tok.type = TokenType::kMinus;
      return tok;
    case '/':
      tok.type = TokenType::kSlash;
      return tok;
    case '%':
      tok.type = TokenType::kPercent;
      return tok;
    case '=':
      tok.type = TokenType::kEquals;
      return tok;
    case '<':
      if (Peek() == '>') {
        ++pos_;
        tok.type = TokenType::kNotEquals;
      } else if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kLessEquals;
      } else {
        tok.type = TokenType::kLess;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kGreaterEquals;
      } else {
        tok.type = TokenType::kGreater;
      }
      return tok;
    case '!':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kNotEquals;
        return tok;
      }
      break;
    default:
      break;
  }
  return Status::ParseError(std::string("unexpected character '") + c +
                            "' at offset " + std::to_string(tok.offset));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    MAYBMS_ASSIGN_OR_RETURN(Token tok, NextToken());
    bool end = tok.type == TokenType::kEnd;
    tokens.push_back(std::move(tok));
    if (end) break;
  }
  return tokens;
}

}  // namespace maybms::sql
