#include "types/schema.h"

#include "base/string_util.h"

namespace maybms {

Result<size_t> Schema::FindColumn(const std::string& name,
                                  const std::string& qualifier) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& col = columns_[i];
    if (!AsciiEqualsIgnoreCase(col.name, name)) continue;
    if (!qualifier.empty() &&
        !AsciiEqualsIgnoreCase(col.qualifier, qualifier)) {
      continue;
    }
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     (qualifier.empty()
                                          ? name
                                          : qualifier + "." + name));
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::NotFound("column not found: " +
                            (qualifier.empty() ? name
                                               : qualifier + "." + name));
  }
  return *found;
}

bool Schema::HasColumn(const std::string& name,
                       const std::string& qualifier) const {
  for (const Column& col : columns_) {
    if (!AsciiEqualsIgnoreCase(col.name, name)) continue;
    if (!qualifier.empty() &&
        !AsciiEqualsIgnoreCase(col.qualifier, qualifier)) {
      continue;
    }
    return true;
  }
  return false;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.qualifier = qualifier;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!columns_[i].qualifier.empty()) {
      out += columns_[i].qualifier + ".";
    }
    out += columns_[i].name;
    out += " ";
    out += DataTypeToString(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!AsciiEqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace maybms
