#ifndef MAYBMS_TYPES_VALUE_H_
#define MAYBMS_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "base/result.h"
#include "base/status.h"

namespace maybms {

/// SQL column types supported by the engine.
enum class DataType {
  kNull,     // type of the NULL literal before coercion
  kInteger,  // 64-bit signed
  kReal,     // double precision
  kText,     // UTF-8 string (treated as bytes)
  kBoolean,
};

const char* DataTypeToString(DataType type);

/// Parses a type name from SQL DDL (INTEGER/INT, REAL/FLOAT/DOUBLE,
/// TEXT/VARCHAR/STRING, BOOLEAN/BOOL).
Result<DataType> DataTypeFromString(const std::string& name);

/// Three-valued logic truth value used by predicate evaluation.
enum class Trivalent { kFalse = 0, kTrue = 1, kUnknown = 2 };

Trivalent TrivalentAnd(Trivalent a, Trivalent b);
Trivalent TrivalentOr(Trivalent a, Trivalent b);
Trivalent TrivalentNot(Trivalent a);

/// A single SQL value: NULL, integer, real, text, or boolean.
///
/// Values are ordered and hashable so they can live in tuples, keys, and
/// sorted containers. Comparison across numeric types (int vs real)
/// coerces to real; comparisons across incomparable types order by type
/// tag (needed only for deterministic sorting, never exposed as a SQL
/// comparison result).
class Value {
 public:
  Value() : storage_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Integer(int64_t v) { return Value(Storage(v)); }
  static Value Real(double v) { return Value(Storage(v)); }
  static Value Text(std::string v) { return Value(Storage(std::move(v))); }
  static Value Boolean(bool v) { return Value(Storage(v)); }

  DataType type() const;

  bool is_null() const { return type() == DataType::kNull; }

  int64_t AsInteger() const { return std::get<int64_t>(storage_); }
  double AsReal() const { return std::get<double>(storage_); }
  const std::string& AsText() const { return std::get<std::string>(storage_); }
  bool AsBoolean() const { return std::get<bool>(storage_); }

  /// Numeric view: integer widened to double. Requires numeric type.
  double NumericValue() const;
  bool IsNumeric() const {
    DataType t = type();
    return t == DataType::kInteger || t == DataType::kReal;
  }

  /// SQL equality: NULL makes the result Unknown; numerics compare by
  /// value across int/real; mismatched non-numeric types are an error.
  Result<Trivalent> SqlEquals(const Value& other) const;

  /// SQL ordering comparison (<). NULL operands yield Unknown.
  Result<Trivalent> SqlLess(const Value& other) const;

  /// Total order over all values for deterministic sorting and set
  /// semantics: NULL first, then by type tag, then by value.
  /// (Distinct from SQL comparison semantics.)
  int TotalOrderCompare(const Value& other) const;

  bool operator==(const Value& other) const {
    return TotalOrderCompare(other) == 0;
  }
  bool operator<(const Value& other) const {
    return TotalOrderCompare(other) < 0;
  }

  size_t Hash() const;

  /// Rendering used by the formatter and tests: integers as-is, reals via
  /// FormatDouble, text unquoted, booleans as true/false, NULL as "NULL".
  std::string ToString() const;

  /// Casts to `target`; numeric widening/narrowing and text parsing where
  /// sensible. NULL casts to NULL of any type.
  Result<Value> CastTo(DataType target) const;

 private:
  struct NullTag {};
  using Storage = std::variant<NullTag, int64_t, double, std::string, bool>;
  explicit Value(Storage s) : storage_(std::move(s)) {}

  Storage storage_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace maybms

#endif  // MAYBMS_TYPES_VALUE_H_
