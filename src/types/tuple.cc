#include "types/tuple.h"

namespace maybms {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values = left.values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> values;
  values.reserve(indices.size());
  for (size_t i : indices) values.push_back(values_[i]);
  return Tuple(std::move(values));
}

int Tuple::Compare(const Tuple& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].TotalOrderCompare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace maybms
