#ifndef MAYBMS_TYPES_TUPLE_H_
#define MAYBMS_TYPES_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "types/value.h"

namespace maybms {

/// A row of values. Tuples are plain data: ordering, equality, and hashing
/// are element-wise by Value's total order, giving deterministic set
/// semantics for possible/certain/conf computations.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation for joins.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Projection onto the given column indices.
  Tuple Project(const std::vector<size_t>& indices) const;

  int Compare(const Tuple& other) const;
  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace maybms

#endif  // MAYBMS_TYPES_TUPLE_H_
