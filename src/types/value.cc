#include "types/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>

#include "base/string_util.h"

namespace maybms {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kReal:
      return "REAL";
    case DataType::kText:
      return "TEXT";
    case DataType::kBoolean:
      return "BOOLEAN";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromString(const std::string& name) {
  std::string lower = AsciiToLower(name);
  if (lower == "integer" || lower == "int" || lower == "bigint") {
    return DataType::kInteger;
  }
  if (lower == "real" || lower == "float" || lower == "double" ||
      lower == "numeric" || lower == "decimal") {
    return DataType::kReal;
  }
  if (lower == "text" || lower == "varchar" || lower == "string" ||
      lower == "char") {
    return DataType::kText;
  }
  if (lower == "boolean" || lower == "bool") {
    return DataType::kBoolean;
  }
  return Status::ParseError("unknown type name: " + name);
}

Trivalent TrivalentAnd(Trivalent a, Trivalent b) {
  if (a == Trivalent::kFalse || b == Trivalent::kFalse) {
    return Trivalent::kFalse;
  }
  if (a == Trivalent::kUnknown || b == Trivalent::kUnknown) {
    return Trivalent::kUnknown;
  }
  return Trivalent::kTrue;
}

Trivalent TrivalentOr(Trivalent a, Trivalent b) {
  if (a == Trivalent::kTrue || b == Trivalent::kTrue) return Trivalent::kTrue;
  if (a == Trivalent::kUnknown || b == Trivalent::kUnknown) {
    return Trivalent::kUnknown;
  }
  return Trivalent::kFalse;
}

Trivalent TrivalentNot(Trivalent a) {
  switch (a) {
    case Trivalent::kTrue:
      return Trivalent::kFalse;
    case Trivalent::kFalse:
      return Trivalent::kTrue;
    case Trivalent::kUnknown:
      return Trivalent::kUnknown;
  }
  return Trivalent::kUnknown;
}

DataType Value::type() const {
  switch (storage_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInteger;
    case 2:
      return DataType::kReal;
    case 3:
      return DataType::kText;
    case 4:
      return DataType::kBoolean;
  }
  return DataType::kNull;
}

double Value::NumericValue() const {
  if (type() == DataType::kInteger) return static_cast<double>(AsInteger());
  return AsReal();
}

Result<Trivalent> Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return Trivalent::kUnknown;
  if (IsNumeric() && other.IsNumeric()) {
    return NumericValue() == other.NumericValue() ? Trivalent::kTrue
                                                  : Trivalent::kFalse;
  }
  if (type() != other.type()) {
    return Status::TypeError(std::string("cannot compare ") +
                             DataTypeToString(type()) + " with " +
                             DataTypeToString(other.type()));
  }
  if (type() == DataType::kText) {
    return AsText() == other.AsText() ? Trivalent::kTrue : Trivalent::kFalse;
  }
  return AsBoolean() == other.AsBoolean() ? Trivalent::kTrue
                                          : Trivalent::kFalse;
}

Result<Trivalent> Value::SqlLess(const Value& other) const {
  if (is_null() || other.is_null()) return Trivalent::kUnknown;
  if (IsNumeric() && other.IsNumeric()) {
    return NumericValue() < other.NumericValue() ? Trivalent::kTrue
                                                 : Trivalent::kFalse;
  }
  if (type() != other.type()) {
    return Status::TypeError(std::string("cannot order ") +
                             DataTypeToString(type()) + " against " +
                             DataTypeToString(other.type()));
  }
  if (type() == DataType::kText) {
    return AsText() < other.AsText() ? Trivalent::kTrue : Trivalent::kFalse;
  }
  return (!AsBoolean() && other.AsBoolean()) ? Trivalent::kTrue
                                             : Trivalent::kFalse;
}

int Value::TotalOrderCompare(const Value& other) const {
  // Numerics of different concrete types compare by numeric value first so
  // that Integer(1) and Real(1.0) coincide in sets (SQL value semantics);
  // ties broken by type tag for a strict weak order.
  if (IsNumeric() && other.IsNumeric()) {
    double a = NumericValue(), b = other.NumericValue();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (storage_.index() != other.storage_.index()) {
    return storage_.index() < other.storage_.index() ? -1 : 1;
  }
  switch (type()) {
    case DataType::kNull:
      return 0;
    case DataType::kInteger:
    case DataType::kReal:
      return 0;  // handled above
    case DataType::kText: {
      int c = AsText().compare(other.AsText());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kBoolean:
      return static_cast<int>(AsBoolean()) - static_cast<int>(other.AsBoolean());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kInteger:
      // Hash integers by their double value so Integer(1)/Real(1.0) agree,
      // consistent with TotalOrderCompare.
      return std::hash<double>()(static_cast<double>(AsInteger()));
    case DataType::kReal:
      return std::hash<double>()(AsReal());
    case DataType::kText:
      return std::hash<std::string>()(AsText());
    case DataType::kBoolean:
      return AsBoolean() ? 0x5bd1e995 : 0xc2b2ae35;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInteger:
      return std::to_string(AsInteger());
    case DataType::kReal:
      return FormatDouble(AsReal());
    case DataType::kText:
      return AsText();
    case DataType::kBoolean:
      return AsBoolean() ? "true" : "false";
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null() || target == type()) return *this;
  switch (target) {
    case DataType::kInteger:
      if (type() == DataType::kReal) {
        return Value::Integer(static_cast<int64_t>(AsReal()));
      }
      if (type() == DataType::kText) {
        char* end = nullptr;
        const std::string& s = AsText();
        long long v = std::strtoll(s.c_str(), &end, 10);
        if (end != s.c_str() + s.size() || s.empty()) {
          return Status::TypeError("cannot cast '" + s + "' to INTEGER");
        }
        return Value::Integer(v);
      }
      if (type() == DataType::kBoolean) {
        return Value::Integer(AsBoolean() ? 1 : 0);
      }
      break;
    case DataType::kReal:
      if (type() == DataType::kInteger) {
        return Value::Real(static_cast<double>(AsInteger()));
      }
      if (type() == DataType::kText) {
        char* end = nullptr;
        const std::string& s = AsText();
        double v = std::strtod(s.c_str(), &end);
        if (end != s.c_str() + s.size() || s.empty()) {
          return Status::TypeError("cannot cast '" + s + "' to REAL");
        }
        return Value::Real(v);
      }
      break;
    case DataType::kText:
      return Value::Text(ToString());
    case DataType::kBoolean:
      if (type() == DataType::kInteger) {
        return Value::Boolean(AsInteger() != 0);
      }
      break;
    case DataType::kNull:
      break;
  }
  return Status::TypeError(std::string("cannot cast ") +
                           DataTypeToString(type()) + " to " +
                           DataTypeToString(target));
}

}  // namespace maybms
