#ifndef MAYBMS_TYPES_SCHEMA_H_
#define MAYBMS_TYPES_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "types/value.h"

namespace maybms {

/// A named, typed column. `qualifier` is the table alias a column is bound
/// to during query processing (e.g. "i2" in `from I i2`); empty for base
/// tables and computed columns.
struct Column {
  std::string name;
  DataType type = DataType::kText;
  std::string qualifier;

  Column() = default;
  Column(std::string name_in, DataType type_in, std::string qualifier_in = "")
      : name(std::move(name_in)),
        type(type_in),
        qualifier(std::move(qualifier_in)) {}
};

/// Ordered list of columns describing a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Finds the index of `name` (optionally qualified by `qualifier`).
  /// Name matching is case-insensitive. Returns NotFound if absent and
  /// InvalidArgument if ambiguous.
  Result<size_t> FindColumn(const std::string& name,
                            const std::string& qualifier = "") const;

  /// True if some column matches (unambiguously or not).
  bool HasColumn(const std::string& name,
                 const std::string& qualifier = "") const;

  /// Concatenation of two schemas (for joins).
  static Schema Concat(const Schema& left, const Schema& right);

  /// Returns a copy with every column's qualifier replaced by `qualifier`.
  Schema WithQualifier(const std::string& qualifier) const;

  /// "name TYPE, name TYPE, ..." — used in error messages and tests.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace maybms

#endif  // MAYBMS_TYPES_SCHEMA_H_
