#include "isql/session.h"

#include "base/string_util.h"
#include "engine/dml.h"
#include "sql/parser.h"
#include "worlds/decomposed_world_set.h"
#include "worlds/explicit_world_set.h"

namespace maybms::isql {

Session::Session(SessionOptions options) : options_(options) {
  worlds_ = MakeWorldSet();
}

std::unique_ptr<worlds::WorldSet> Session::MakeWorldSet() const {
  if (options_.engine == EngineMode::kExplicit) {
    return std::make_unique<worlds::ExplicitWorldSet>(
        options_.max_explicit_worlds, options_.threads);
  }
  return std::make_unique<worlds::DecomposedWorldSet>(options_.max_merge,
                                                      options_.threads);
}

Result<QueryResult> Session::Execute(const std::string& sql) {
  MAYBMS_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                          sql::Parser::ParseStatement(sql));
  return ExecuteStatement(*stmt);
}

Result<std::vector<QueryResult>> Session::ExecuteScript(
    const std::string& sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> statements,
                          sql::Parser::ParseScript(sql));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (const sql::StatementPtr& stmt : statements) {
    MAYBMS_ASSIGN_OR_RETURN(QueryResult r, ExecuteStatement(*stmt));
    results.push_back(std::move(r));
  }
  return results;
}

Result<QueryResult> Session::ExecuteStatement(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return EvaluateSelect(static_cast<const sql::SelectStatement&>(stmt));
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const sql::CreateTableStatement&>(stmt));
    case sql::StatementKind::kCreateTableAs:
      return ExecuteCreateTableAs(
          static_cast<const sql::CreateTableAsStatement&>(stmt));
    case sql::StatementKind::kDropTable:
      return ExecuteDrop(static_cast<const sql::DropTableStatement&>(stmt));
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return ExecuteDml(stmt);
  }
  return Status::InvalidArgument("unknown statement kind");
}

std::vector<std::string> Session::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, def] : views_) names.push_back(name);
  return names;
}

bool Session::ReferencesViews(const sql::SelectStatement& stmt) const {
  std::set<std::string> referenced;
  worlds::CollectReferencedRelations(stmt, &referenced);
  for (const std::string& name : referenced) {
    if (views_.count(name) > 0) return true;
  }
  return false;
}

Status Session::MaterializeViewsInto(worlds::WorldSet* target,
                                     const sql::SelectStatement& stmt,
                                     std::set<std::string>* in_progress) const {
  std::set<std::string> referenced;
  worlds::CollectReferencedRelations(stmt, &referenced);
  for (const std::string& name : referenced) {
    auto it = views_.find(name);
    if (it == views_.end()) continue;
    if (target->HasRelation(name)) continue;  // already materialized
    if (!in_progress->insert(name).second) {
      return Status::InvalidArgument("cyclic view definition: " + name);
    }
    // Dependencies first.
    MAYBMS_RETURN_NOT_OK(
        MaterializeViewsInto(target, *it->second, in_progress));
    MAYBMS_RETURN_NOT_OK(target->MaterializeSelect(name, *it->second));
    in_progress->erase(name);
  }
  return Status::OK();
}

Result<QueryResult> Session::EvaluateSelect(const sql::SelectStatement& stmt) {
  const worlds::WorldSet* ws = worlds_.get();
  std::unique_ptr<worlds::WorldSet> derived;
  if (ReferencesViews(stmt)) {
    derived = worlds_->Clone();
    std::set<std::string> in_progress;
    MAYBMS_RETURN_NOT_OK(
        MaterializeViewsInto(derived.get(), stmt, &in_progress));
    ws = derived.get();
  }

  MAYBMS_ASSIGN_OR_RETURN(
      worlds::SelectEvaluation eval,
      ws->EvaluateSelect(stmt, options_.max_display_worlds));

  if (!eval.groups.empty()) {
    return QueryResult::Groups(std::move(eval.groups));
  }
  if (eval.combined.has_value()) {
    return QueryResult::SingleTable(std::move(*eval.combined));
  }
  return QueryResult::Worlds(std::move(eval.per_world), eval.truncated);
}

Result<QueryResult> Session::ExecuteCreateTable(
    const sql::CreateTableStatement& stmt) {
  if (views_.count(AsciiToLower(stmt.table_name)) > 0) {
    return Status::AlreadyExists("a view named " + stmt.table_name +
                                 " already exists");
  }
  MAYBMS_ASSIGN_OR_RETURN(Table prototype,
                          engine::BuildTableFromDefinition(stmt));
  MAYBMS_RETURN_NOT_OK(worlds_->CreateBaseTable(stmt.table_name, prototype));
  for (Constraint& c : engine::CollectConstraints(stmt)) {
    catalog_.AddConstraint(stmt.table_name, std::move(c));
  }
  return QueryResult::Message("created table " + stmt.table_name);
}

Result<QueryResult> Session::ExecuteCreateTableAs(
    const sql::CreateTableAsStatement& stmt) {
  const std::string lower = AsciiToLower(stmt.table_name);
  if (views_.count(lower) > 0 || worlds_->HasRelation(stmt.table_name)) {
    return Status::AlreadyExists("relation or view already exists: " +
                                 stmt.table_name);
  }

  if (stmt.is_view) {
    views_[lower] =
        std::shared_ptr<const sql::SelectStatement>(stmt.query->Clone());
    return QueryResult::Message("created view " + stmt.table_name);
  }

  if (ReferencesViews(*stmt.query)) {
    // Materialize referenced views first; view world operations (e.g. an
    // `assert` inside the view) become part of the session's world-set —
    // CREATE TABLE makes the derived world-set real.
    std::unique_ptr<worlds::WorldSet> derived = worlds_->Clone();
    std::set<std::string> in_progress;
    MAYBMS_RETURN_NOT_OK(
        MaterializeViewsInto(derived.get(), *stmt.query, &in_progress));
    MAYBMS_RETURN_NOT_OK(
        derived->MaterializeSelect(stmt.table_name, *stmt.query));
    worlds_ = std::move(derived);
  } else {
    MAYBMS_RETURN_NOT_OK(
        worlds_->MaterializeSelect(stmt.table_name, *stmt.query));
  }
  return QueryResult::Message("created table " + stmt.table_name);
}

Result<QueryResult> Session::ExecuteDrop(const sql::DropTableStatement& stmt) {
  const std::string lower = AsciiToLower(stmt.table_name);
  if (views_.erase(lower) > 0) {
    return QueryResult::Message("dropped view " + stmt.table_name);
  }
  Status status = worlds_->DropRelation(stmt.table_name);
  if (!status.ok()) {
    if (stmt.if_exists && status.code() == StatusCode::kNotFound) {
      return QueryResult::Message("nothing to drop");
    }
    return status;
  }
  catalog_.DropConstraints(stmt.table_name);
  return QueryResult::Message("dropped table " + stmt.table_name);
}

Result<QueryResult> Session::ExecuteDml(const sql::Statement& stmt) {
  MAYBMS_RETURN_NOT_OK(worlds_->ApplyDml(stmt, catalog_));
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
      return QueryResult::Message("insert applied in all worlds");
    case sql::StatementKind::kUpdate:
      return QueryResult::Message("update applied in all worlds");
    default:
      return QueryResult::Message("delete applied in all worlds");
  }
}

}  // namespace maybms::isql
