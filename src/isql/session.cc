#include "isql/session.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <optional>
#include <system_error>
#include <utility>

#include <unistd.h>

#include "base/string_util.h"
#include "engine/dml.h"
#include "sql/parser.h"
#include "storage/codec.h"
#include "worlds/decomposed_world_set.h"
#include "worlds/explicit_world_set.h"

namespace maybms::isql {

namespace {

/// Constraint declarations ride along in the snapshot's opaque metadata:
/// one entry per table, key "constraints:<table_lower>", value a
/// codec-encoded list {u32 count; per constraint u8 kind, u32 num
/// columns, column strings}.
constexpr char kConstraintKeyPrefix[] = "constraints:";

std::vector<std::pair<std::string, std::string>> EncodeCatalogMetadata(
    const Catalog& catalog) {
  std::vector<std::pair<std::string, std::string>> metadata;
  for (const auto& [table, constraints] : catalog.AllConstraints()) {
    std::vector<std::byte> bytes;
    storage::codec::PutU32(&bytes, static_cast<uint32_t>(constraints.size()));
    for (const Constraint& c : constraints) {
      storage::codec::PutU8(&bytes, static_cast<uint8_t>(c.kind));
      storage::codec::PutU32(&bytes, static_cast<uint32_t>(c.columns.size()));
      for (const std::string& column : c.columns) {
        storage::codec::PutString(&bytes, column);
      }
    }
    metadata.emplace_back(
        kConstraintKeyPrefix + table,
        std::string(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size()));
  }
  return metadata;
}

Status RestoreCatalogMetadata(
    const std::vector<std::pair<std::string, std::string>>& metadata,
    Catalog* catalog) {
  catalog->Clear();
  const std::string prefix = kConstraintKeyPrefix;
  for (const auto& [key, value] : metadata) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string table = key.substr(prefix.size());
    storage::codec::Reader r(
        reinterpret_cast<const std::byte*>(value.data()), value.size());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t count, r.U32());
    for (uint32_t i = 0; i < count; ++i) {
      Constraint c;
      MAYBMS_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
      c.kind = static_cast<ConstraintKind>(kind);
      MAYBMS_ASSIGN_OR_RETURN(uint32_t num_columns, r.U32());
      c.columns.reserve(num_columns);
      for (uint32_t j = 0; j < num_columns; ++j) {
        MAYBMS_ASSIGN_OR_RETURN(std::string column, r.String());
        c.columns.push_back(std::move(column));
      }
      catalog->AddConstraint(table, std::move(c));
    }
  }
  return Status::OK();
}

/// Strict environment-variable number parsing, matching what
/// ThreadPool::DefaultThreads does for MAYBMS_THREADS: the whole string
/// must be digits and the value must be positive. Anything else —
/// "abc", "64k" (silent truncation to 64), "-1" (strtoull wraps to a
/// huge pool), "0", overflow — is an error, never a silent fallback.
Result<size_t> ParsePositiveEnv(const char* name, const char* text) {
  const std::string value(text);
  const Status invalid = Status::InvalidArgument(
      std::string(name) + " must be a positive integer, got \"" + value +
      "\"");
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return invalid;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end != value.c_str() + value.size() || parsed == 0 ||
      parsed > std::numeric_limits<size_t>::max()) {
    return invalid;
  }
  return static_cast<size_t>(parsed);
}

bool IsMutatingStatement(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kSelect:
      return false;  // plain queries never modify the world-set
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kCreateTableAs:
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return true;
  }
  return true;
}

}  // namespace

Session::Session(SessionOptions options) : options_(options) {
  worlds_ = MakeWorldSet();
  InitStorage();
  ResolveGovernance();
  if (options_.publish_snapshots) PublishSnapshot();
}

Session::~Session() {
  store_.reset();  // close the file before removing the directory
  if (owns_storage_dir_ && !storage_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(storage_dir_, ec);  // best effort
  }
}

void Session::InitStorage() {
  StorageMode mode = options_.storage;
  if (mode == StorageMode::kDefault) {
    const char* env = std::getenv("MAYBMS_STORAGE");
    const std::string value = env != nullptr ? env : "";
    if (value.empty() || value == "memory") {
      mode = StorageMode::kMemory;
    } else if (value == "paged") {
      mode = StorageMode::kPaged;
    } else {
      // A typo ("Paged", "disk") must not silently drop durability: fail
      // every statement instead of falling back to memory mode.
      storage_status_ = Status::InvalidArgument(
          "MAYBMS_STORAGE: unknown storage mode \"" + value +
          "\" (expected \"memory\" or \"paged\")");
      return;
    }
  }
  if (mode != StorageMode::kPaged) return;
  paged_ = true;

  storage_status_ = [&]() -> Status {
    std::string dir = options_.storage_dir;
    if (dir.empty()) {
      const char* env = std::getenv("MAYBMS_STORAGE_DIR");
      if (env != nullptr) dir = env;
    }
    std::error_code ec;
    if (dir.empty()) {
      // Private per-session directory, removed in ~Session. pid+counter
      // keeps concurrent test binaries and sessions apart.
      static std::atomic<uint64_t> counter{0};
      const std::filesystem::path base =
          std::filesystem::temp_directory_path(ec);
      if (ec) {
        return Status::IOError("temp_directory_path: " + ec.message());
      }
      dir = (base / ("maybms-" + std::to_string(::getpid()) + "-" +
                     std::to_string(counter.fetch_add(1))))
                .string();
      owns_storage_dir_ = true;
    }
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("create_directories(" + dir +
                             "): " + ec.message());
    }
    storage_dir_ = dir;

    size_t pool_pages = options_.pool_pages;
    if (pool_pages == 0) {
      const char* env = std::getenv("MAYBMS_POOL_PAGES");
      if (env != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(pool_pages,
                                ParsePositiveEnv("MAYBMS_POOL_PAGES", env));
      }
    }
    if (pool_pages == 0) pool_pages = 1024;

    MAYBMS_ASSIGN_OR_RETURN(
        store_, storage::PagedStore::Open(dir + "/maybms.db", pool_pages));
    if (store_->has_data()) {
      MAYBMS_ASSIGN_OR_RETURN(storage::DurableSnapshot snapshot,
                              store_->Load());
      MAYBMS_RETURN_NOT_OK(worlds_->FromSnapshot(snapshot));
      MAYBMS_RETURN_NOT_OK(
          RestoreCatalogMetadata(snapshot.metadata, &catalog_));
    }
    return Status::OK();
  }();
}

Status Session::PersistAndReload() {
  MAYBMS_ASSIGN_OR_RETURN(storage::DurableSnapshot snapshot,
                          worlds_->ToSnapshot());
  snapshot.metadata = EncodeCatalogMetadata(catalog_);
  MAYBMS_RETURN_NOT_OK(store_->Commit(snapshot));
  // The root flipped: from here the reload MUST complete, or memory
  // would lag the durable state it just wrote. Shield the region so a
  // deadline that fires mid-reload cannot abort it (governance polls in
  // FromSnapshot/Scan become no-ops under a null context).
  base::QueryContextScope shield(nullptr);
  // Reload through the store so every relation the next statement reads
  // has round-tripped disk pages, checksums, and the buffer pool — paged
  // mode is exercised end to end, not just on restart.
  MAYBMS_ASSIGN_OR_RETURN(storage::DurableSnapshot loaded, store_->Load());
  MAYBMS_RETURN_NOT_OK(worlds_->FromSnapshot(loaded));
  return RestoreCatalogMetadata(loaded.metadata, &catalog_);
}

void Session::ResolveGovernance() {
  governance_status_ = [&]() -> Status {
    // Option value wins; zero falls back to the environment; strict
    // parsing — "500ms" or "-1" must fail loudly, never silently run
    // ungoverned (the PR 9 MAYBMS_POOL_PAGES rule).
    auto resolve = [](uint64_t option_value, const char* env_name,
                      uint64_t* out) -> Status {
      if (option_value != 0) {
        *out = option_value;
        return Status::OK();
      }
      const char* env = std::getenv(env_name);
      if (env != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(size_t parsed,
                                ParsePositiveEnv(env_name, env));
        *out = static_cast<uint64_t>(parsed);
      }
      return Status::OK();
    };
    MAYBMS_RETURN_NOT_OK(resolve(options_.statement_timeout_ms,
                                 "MAYBMS_STATEMENT_TIMEOUT_MS",
                                 &governance_limits_.deadline_ms));
    MAYBMS_RETURN_NOT_OK(resolve(options_.max_worlds, "MAYBMS_MAX_WORLDS",
                                 &governance_limits_.max_worlds));
    uint64_t mem_budget_mb = 0;
    MAYBMS_RETURN_NOT_OK(resolve(options_.mem_budget_mb,
                                 "MAYBMS_MEM_BUDGET_MB", &mem_budget_mb));
    governance_limits_.mem_budget_bytes = mem_budget_mb * 1024 * 1024;
    return Status::OK();
  }();
}

std::unique_ptr<worlds::WorldSet> Session::MakeWorldSet() const {
  if (options_.engine == EngineMode::kExplicit) {
    return std::make_unique<worlds::ExplicitWorldSet>(
        options_.max_explicit_worlds, options_.threads);
  }
  return std::make_unique<worlds::DecomposedWorldSet>(options_.max_merge,
                                                      options_.threads);
}

Result<QueryResult> Session::Execute(const std::string& sql) {
  MAYBMS_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                          sql::Parser::ParseStatement(sql));
  return ExecuteStatement(*stmt);
}

Result<std::vector<QueryResult>> Session::ExecuteScript(
    const std::string& sql) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> statements,
                          sql::Parser::ParseScript(sql));
  std::vector<QueryResult> results;
  results.reserve(statements.size());
  for (const sql::StatementPtr& stmt : statements) {
    MAYBMS_ASSIGN_OR_RETURN(QueryResult r, ExecuteStatement(*stmt));
    results.push_back(std::move(r));
  }
  return results;
}

Result<QueryResult> Session::ExecuteStatement(const sql::Statement& stmt) {
  // A failed storage init (unknown MAYBMS_STORAGE mode, invalid
  // MAYBMS_POOL_PAGES, unopenable directory, corrupt store, engine
  // mismatch) fails every statement with the same sticky error, as does
  // a malformed governance variable.
  MAYBMS_RETURN_NOT_OK(storage_status_);
  MAYBMS_RETURN_NOT_OK(governance_status_);
  if (base::CurrentQueryContext() != nullptr) {
    // A caller (the server's per-request path) already installed a
    // context on this thread; it owns the deadline arithmetic.
    return ExecuteGoverned(stmt, base::CurrentQueryContext());
  }
  base::QueryContext ctx(governance_limits_);
  if (!ctx.governed()) {
    // No limits, no injected kill points: skip the context entirely so
    // every GovernPoll() stays one TLS load and a branch.
    return ExecuteGoverned(stmt, nullptr);
  }
  base::QueryContextScope scope(&ctx);
  return ExecuteGoverned(stmt, &ctx);
}

Result<QueryResult> Session::ExecuteGoverned(const sql::Statement& stmt,
                                             base::QueryContext* ctx) {
  const bool mutating = IsMutatingStatement(stmt.kind);
  // Pre-statement capture for governed mutating statements. The engines
  // already compute-then-commit, so in-memory state can only be torn by
  // an abort BETWEEN the in-memory commit and the storage commit (paged
  // mode); the capture is O(worlds × relations) handle bumps and makes
  // rollback unconditional either way. Ungoverned statements skip it.
  std::unique_ptr<worlds::WorldSet> rollback_worlds;
  std::optional<Catalog> rollback_catalog;
  std::optional<ViewMap> rollback_views;
  if (ctx != nullptr && mutating) {
    rollback_worlds = worlds_->Clone();
    rollback_catalog = catalog_;
    rollback_views = views_;
  }

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    MAYBMS_ASSIGN_OR_RETURN(QueryResult r, DispatchStatement(stmt));
    if (mutating && paged_) {
      MAYBMS_RETURN_NOT_OK(PersistAndReload());
    }
    return r;
  }();

  if (!result.ok()) {
    if (rollback_worlds != nullptr) {
      worlds_ = std::move(rollback_worlds);
      catalog_ = std::move(*rollback_catalog);
      views_ = std::move(*rollback_views);
    }
    return result.status();
  }
  if (mutating && options_.publish_snapshots) PublishSnapshot();
  return result;
}

Result<QueryResult> Session::DispatchStatement(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return EvaluateSelect(static_cast<const sql::SelectStatement&>(stmt));
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const sql::CreateTableStatement&>(stmt));
    case sql::StatementKind::kCreateTableAs:
      return ExecuteCreateTableAs(
          static_cast<const sql::CreateTableAsStatement&>(stmt));
    case sql::StatementKind::kDropTable:
      return ExecuteDrop(static_cast<const sql::DropTableStatement&>(stmt));
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      return ExecuteDml(stmt);
  }
  return Status::InvalidArgument("unknown statement kind");
}

std::vector<std::string> Session::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, def] : views_) names.push_back(name);
  return names;
}

bool Session::ReferencesViews(const sql::SelectStatement& stmt,
                              const ViewMap& views) {
  std::set<std::string> referenced;
  worlds::CollectReferencedRelations(stmt, &referenced);
  for (const std::string& name : referenced) {
    if (views.count(name) > 0) return true;
  }
  return false;
}

Status Session::MaterializeViewsInto(const ViewMap& views,
                                     worlds::WorldSet* target,
                                     const sql::SelectStatement& stmt,
                                     std::set<std::string>* in_progress) {
  std::set<std::string> referenced;
  worlds::CollectReferencedRelations(stmt, &referenced);
  for (const std::string& name : referenced) {
    auto it = views.find(name);
    if (it == views.end()) continue;
    if (target->HasRelation(name)) continue;  // already materialized
    if (!in_progress->insert(name).second) {
      return Status::InvalidArgument("cyclic view definition: " + name);
    }
    // Dependencies first.
    MAYBMS_RETURN_NOT_OK(
        MaterializeViewsInto(views, target, *it->second, in_progress));
    MAYBMS_RETURN_NOT_OK(target->MaterializeSelect(name, *it->second));
    in_progress->erase(name);
  }
  return Status::OK();
}

Result<QueryResult> Session::EvaluateSelectOn(const worlds::WorldSet& ws,
                                              const ViewMap& views,
                                              const sql::SelectStatement& stmt,
                                              size_t max_display_worlds) {
  const worlds::WorldSet* target = &ws;
  std::unique_ptr<worlds::WorldSet> derived;
  if (ReferencesViews(stmt, views)) {
    // View world operations evaluate on a private clone — plain queries
    // never modify the session's (or snapshot's) world-set.
    derived = ws.Clone();
    std::set<std::string> in_progress;
    MAYBMS_RETURN_NOT_OK(
        MaterializeViewsInto(views, derived.get(), stmt, &in_progress));
    target = derived.get();
  }

  MAYBMS_ASSIGN_OR_RETURN(worlds::SelectEvaluation eval,
                          target->EvaluateSelect(stmt, max_display_worlds));

  if (!eval.groups.empty()) {
    return QueryResult::Groups(std::move(eval.groups));
  }
  if (eval.combined.has_value()) {
    return QueryResult::SingleTable(std::move(*eval.combined));
  }
  return QueryResult::Worlds(std::move(eval.per_world), eval.truncated);
}

Result<QueryResult> Session::EvaluateSelect(const sql::SelectStatement& stmt) {
  return EvaluateSelectOn(*worlds_, views_, stmt, options_.max_display_worlds);
}

void Session::PublishSnapshot() {
  auto snapshot = std::make_shared<SessionSnapshot>();
  snapshot->version = commit_version_++;
  // The clone shares every Table instance with the live world-set
  // (immutable once shared), so this is O(worlds × relations) handle
  // bumps; the next mutating statement clones-on-write and leaves the
  // snapshot's instances untouched.
  snapshot->worlds =
      std::shared_ptr<const worlds::WorldSet>(worlds_->Clone().release());
  snapshot->catalog = catalog_;
  snapshot->views = views_;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  published_ = std::move(snapshot);
}

std::shared_ptr<const SessionSnapshot> Session::PinSnapshot() const {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (published_ != nullptr) return published_;
  }
  // No published snapshot (publish_snapshots off): build one on the fly.
  // Single-threaded use only, like every other const accessor.
  auto snapshot = std::make_shared<SessionSnapshot>();
  snapshot->version = commit_version_;
  snapshot->worlds =
      std::shared_ptr<const worlds::WorldSet>(worlds_->Clone().release());
  snapshot->catalog = catalog_;
  snapshot->views = views_;
  return snapshot;
}

Result<QueryResult> Session::EvaluateSnapshot(const SessionSnapshot& snapshot,
                                              const sql::Statement& stmt,
                                              size_t max_display_worlds) {
  if (stmt.kind != sql::StatementKind::kSelect) {
    return Status::InvalidArgument(
        "snapshot evaluation is read-only: only SELECT statements may run "
        "against a pinned snapshot");
  }
  return EvaluateSelectOn(*snapshot.worlds, snapshot.views,
                          static_cast<const sql::SelectStatement&>(stmt),
                          max_display_worlds);
}

Result<QueryResult> Session::EvaluateSnapshot(const SessionSnapshot& snapshot,
                                              const std::string& sql,
                                              size_t max_display_worlds) {
  MAYBMS_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                          sql::Parser::ParseStatement(sql));
  return EvaluateSnapshot(snapshot, *stmt, max_display_worlds);
}

Result<QueryResult> Session::ExecuteCreateTable(
    const sql::CreateTableStatement& stmt) {
  if (views_.count(AsciiToLower(stmt.table_name)) > 0) {
    return Status::AlreadyExists("a view named " + stmt.table_name +
                                 " already exists");
  }
  MAYBMS_ASSIGN_OR_RETURN(Table prototype,
                          engine::BuildTableFromDefinition(stmt));
  MAYBMS_RETURN_NOT_OK(worlds_->CreateBaseTable(stmt.table_name, prototype));
  for (Constraint& c : engine::CollectConstraints(stmt)) {
    catalog_.AddConstraint(stmt.table_name, std::move(c));
  }
  return QueryResult::Message("created table " + stmt.table_name);
}

Result<QueryResult> Session::ExecuteCreateTableAs(
    const sql::CreateTableAsStatement& stmt) {
  const std::string lower = AsciiToLower(stmt.table_name);
  if (views_.count(lower) > 0 || worlds_->HasRelation(stmt.table_name)) {
    return Status::AlreadyExists("relation or view already exists: " +
                                 stmt.table_name);
  }

  if (stmt.is_view) {
    views_[lower] =
        std::shared_ptr<const sql::SelectStatement>(stmt.query->Clone());
    return QueryResult::Message("created view " + stmt.table_name);
  }

  if (ReferencesViews(*stmt.query, views_)) {
    // Materialize referenced views first; view world operations (e.g. an
    // `assert` inside the view) become part of the session's world-set —
    // CREATE TABLE makes the derived world-set real.
    std::unique_ptr<worlds::WorldSet> derived = worlds_->Clone();
    std::set<std::string> in_progress;
    MAYBMS_RETURN_NOT_OK(
        MaterializeViewsInto(views_, derived.get(), *stmt.query, &in_progress));
    MAYBMS_RETURN_NOT_OK(
        derived->MaterializeSelect(stmt.table_name, *stmt.query));
    worlds_ = std::move(derived);
  } else {
    MAYBMS_RETURN_NOT_OK(
        worlds_->MaterializeSelect(stmt.table_name, *stmt.query));
  }
  return QueryResult::Message("created table " + stmt.table_name);
}

Result<QueryResult> Session::ExecuteDrop(const sql::DropTableStatement& stmt) {
  const std::string lower = AsciiToLower(stmt.table_name);
  if (views_.erase(lower) > 0) {
    return QueryResult::Message("dropped view " + stmt.table_name);
  }
  Status status = worlds_->DropRelation(stmt.table_name);
  if (!status.ok()) {
    if (stmt.if_exists && status.code() == StatusCode::kNotFound) {
      return QueryResult::Message("nothing to drop");
    }
    return status;
  }
  catalog_.DropConstraints(stmt.table_name);
  return QueryResult::Message("dropped table " + stmt.table_name);
}

Result<QueryResult> Session::ExecuteDml(const sql::Statement& stmt) {
  MAYBMS_RETURN_NOT_OK(worlds_->ApplyDml(stmt, catalog_));
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
      return QueryResult::Message("insert applied in all worlds");
    case sql::StatementKind::kUpdate:
      return QueryResult::Message("update applied in all worlds");
    default:
      return QueryResult::Message("delete applied in all worlds");
  }
}

}  // namespace maybms::isql
