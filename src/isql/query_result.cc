#include "isql/query_result.h"

namespace maybms::isql {

QueryResult QueryResult::Message(std::string text) {
  QueryResult r;
  r.kind_ = Kind::kMessage;
  r.message_ = std::move(text);
  return r;
}

QueryResult QueryResult::Worlds(std::vector<std::pair<double, Table>> worlds,
                                bool truncated) {
  QueryResult r;
  r.kind_ = Kind::kWorlds;
  r.worlds_ = std::move(worlds);
  r.truncated_ = truncated;
  return r;
}

QueryResult QueryResult::SingleTable(Table table) {
  QueryResult r;
  r.kind_ = Kind::kTable;
  r.table_ = std::move(table);
  return r;
}

QueryResult QueryResult::Groups(
    std::vector<worlds::SelectEvaluation::GroupResult> groups) {
  QueryResult r;
  r.kind_ = Kind::kGroups;
  r.groups_ = std::move(groups);
  return r;
}

Result<const Table*> QueryResult::RequireTable() const {
  if (kind_ == Kind::kTable) return &*table_;
  if (kind_ == Kind::kWorlds && worlds_.size() == 1) {
    return &worlds_[0].second;
  }
  return Status::InvalidArgument(
      "query result is not a single table (kind mismatch)");
}

}  // namespace maybms::isql
