#ifndef MAYBMS_ISQL_QUERY_RESULT_H_
#define MAYBMS_ISQL_QUERY_RESULT_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"
#include "worlds/world_set.h"

namespace maybms::isql {

/// The answer of one I-SQL statement.
///
/// DDL/DML statements produce a `kMessage`. Queries produce, depending on
/// their world operations:
///  * `kWorlds` — one answer relation per (derived) world, with world
///    probabilities (plain SQL core, repair/choice/assert pipelines);
///  * `kTable` — a single certain answer (possible/certain/conf);
///  * `kGroups` — per world-group answers (group worlds by).
class QueryResult {
 public:
  enum class Kind { kMessage, kWorlds, kTable, kGroups };

  static QueryResult Message(std::string text);
  static QueryResult Worlds(std::vector<std::pair<double, Table>> worlds,
                            bool truncated);
  static QueryResult SingleTable(Table table);
  static QueryResult Groups(
      std::vector<worlds::SelectEvaluation::GroupResult> groups);

  Kind kind() const { return kind_; }
  const std::string& message() const { return message_; }
  const std::vector<std::pair<double, Table>>& worlds() const {
    return worlds_;
  }
  bool truncated() const { return truncated_; }
  const Table& table() const { return *table_; }
  bool has_table() const { return table_.has_value(); }
  const std::vector<worlds::SelectEvaluation::GroupResult>& groups() const {
    return groups_;
  }

  /// Convenience for tests: the single combined table for kTable results;
  /// for kWorlds results with exactly one world, that world's table.
  Result<const Table*> RequireTable() const;

 private:
  QueryResult() = default;

  Kind kind_ = Kind::kMessage;
  std::string message_;
  std::vector<std::pair<double, Table>> worlds_;
  bool truncated_ = false;
  std::optional<Table> table_;
  std::vector<worlds::SelectEvaluation::GroupResult> groups_;
};

}  // namespace maybms::isql

#endif  // MAYBMS_ISQL_QUERY_RESULT_H_
