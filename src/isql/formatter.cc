#include "isql/formatter.h"

#include <algorithm>

#include "base/string_util.h"
#include "worlds/world.h"

namespace maybms::isql {

std::string FormatTable(const Table& table) {
  const Schema& schema = table.schema();
  size_t cols = schema.num_columns();
  if (cols == 0) {
    return table.empty() ? "(empty, 0 columns)\n"
                         : "(" + std::to_string(table.num_rows()) +
                               " row(s), 0 columns)\n";
  }

  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths(cols);
  std::vector<std::string> header(cols);
  for (size_t c = 0; c < cols; ++c) {
    header[c] = schema.column(c).name;
    widths[c] = header[c].size();
  }
  for (const Tuple& row : table.rows()) {
    std::vector<std::string> line(cols);
    for (size_t c = 0; c < cols; ++c) {
      line[c] = row.value(c).ToString();
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }

  auto render_row = [&](const std::vector<std::string>& line) {
    std::string out;
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out += " | ";
      out += line[c];
      out.append(widths[c] - line[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out + "\n";
  };

  std::string out = render_row(header);
  std::string rule;
  for (size_t c = 0; c < cols; ++c) {
    if (c > 0) rule += "-+-";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& line : cells) out += render_row(line);
  if (table.empty()) out += "(no rows)\n";
  return out;
}

std::string FormatQueryResult(const QueryResult& result) {
  switch (result.kind()) {
    case QueryResult::Kind::kMessage:
      return result.message() + "\n";
    case QueryResult::Kind::kTable:
      return FormatTable(result.table());
    case QueryResult::Kind::kWorlds: {
      std::string out;
      const auto& worlds = result.worlds();
      for (size_t i = 0; i < worlds.size(); ++i) {
        out += "-- world " + worlds::WorldLabel(i) +
               " (P = " + FormatDouble(worlds[i].first) + ")\n";
        out += FormatTable(worlds[i].second);
      }
      if (result.truncated()) {
        out += "-- ... (world enumeration truncated)\n";
      }
      if (worlds.empty()) out += "(no worlds)\n";
      return out;
    }
    case QueryResult::Kind::kGroups: {
      std::string out;
      size_t index = 0;
      for (const auto& group : result.groups()) {
        out += "-- group " + std::to_string(++index) +
               " (P = " + FormatDouble(group.probability) +
               "), grouping answer:\n";
        out += FormatTable(group.key);
        out += "result:\n";
        out += FormatTable(group.table);
      }
      return out;
    }
  }
  return "";
}

std::string FormatWorldSet(const worlds::WorldSet& world_set,
                           size_t max_worlds) {
  bool truncated = false;
  auto worlds = world_set.MaterializeWorlds(max_worlds, &truncated);
  if (!worlds.ok()) return "error: " + worlds.status().ToString() + "\n";

  std::string out = "world-set (" + world_set.EngineName() + " engine, " +
                    std::to_string(world_set.NumWorlds()) + " worlds)\n";
  for (size_t i = 0; i < worlds->size(); ++i) {
    const worlds::World& world = (*worlds)[i];
    out += "== world " + worlds::WorldLabel(i) +
           " (P = " + FormatDouble(world.probability) + ")\n";
    for (const std::string& name : world.db.RelationNames()) {
      auto table = world.db.GetRelation(name);
      if (!table.ok()) continue;
      out += name + ":\n";
      out += FormatTable(**table);
    }
  }
  if (truncated) out += "... (truncated)\n";
  return out;
}

}  // namespace maybms::isql
