#ifndef MAYBMS_ISQL_SESSION_H_
#define MAYBMS_ISQL_SESSION_H_

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "isql/query_result.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/store.h"
#include "worlds/world_set.h"

namespace maybms::isql {

/// Which world-set representation backs the session.
enum class EngineMode {
  kExplicit,    // one materialized database per world (baseline)
  kDecomposed,  // MayBMS world-set decomposition
};

/// Which table storage backs the session's world-set.
enum class StorageMode {
  kDefault,  // the MAYBMS_STORAGE environment variable; memory if unset
  kMemory,   // in-memory tables only (no durability)
  kPaged,    // durable paged storage (storage/store.h): every mutating
             // statement commits, and all subsequent reads go through
             // tables that round-tripped disk pages + the buffer pool
};

struct SessionOptions {
  EngineMode engine = EngineMode::kDecomposed;

  /// Table storage backend. kDefault resolves MAYBMS_STORAGE
  /// ("memory"/"paged"); unset means memory.
  StorageMode storage = StorageMode::kDefault;

  /// Directory for the paged store's file. Empty resolves
  /// MAYBMS_STORAGE_DIR; if that is unset too, the session creates a
  /// private temp directory and removes it on destruction (an explicit
  /// directory is how callers opt into persistence across sessions).
  std::string storage_dir;

  /// Buffer-pool budget in pages for paged storage (0 resolves
  /// MAYBMS_POOL_PAGES; unset means 1024). A hard cap: the pool never
  /// holds more than this many pages in memory.
  size_t pool_pages = 0;

  /// Cap on per-world answers rendered/returned by SELECT queries.
  size_t max_display_worlds = 64;

  /// Cap on materialized worlds in the explicit engine.
  size_t max_explicit_worlds = 1 << 20;

  /// Cap on alternatives a single component merge may produce in the
  /// decomposed engine.
  size_t max_merge = 1 << 20;

  /// Worker threads for per-world execution loops (0 = the MAYBMS_THREADS
  /// environment variable, else the hardware concurrency). Results are
  /// byte-identical at every setting; see base/thread_pool.h.
  size_t threads = 0;
};

/// An I-SQL session: parses statements, resolves views, and evaluates
/// against the configured world-set engine. This is the main public entry
/// point of the library.
///
///   maybms::isql::Session session;
///   auto r = session.Execute("create table R (A text, B integer);");
///   ...
///   auto q = session.Execute("select possible sum(B) from I;");
///
/// Statement semantics follow the paper:
///  * SELECT queries (including those with repair/choice/assert) do not
///    modify the session's world-set;
///  * CREATE TABLE ... AS materializes the statement's world operations;
///  * INSERT/UPDATE/DELETE run in every world; a constraint violation in
///    any world discards the update in all worlds;
///  * views are named queries; views may contain world operations (e.g.
///    `assert`), in which case querying the view evaluates against the
///    derived world-set the view denotes.
class Session {
 public:
  explicit Session(SessionOptions options = SessionOptions());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes a single statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Parses and executes a ';'-separated script; returns the result of
  /// every statement.
  Result<std::vector<QueryResult>> ExecuteScript(const std::string& sql);

  /// Executes an already parsed statement.
  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt);

  const worlds::WorldSet& world_set() const { return *worlds_; }
  const Catalog& catalog() const { return catalog_; }
  const SessionOptions& options() const { return options_; }

  /// Names of defined views (lower-cased).
  std::vector<std::string> ViewNames() const;

  /// The paged store backing this session, or nullptr in memory mode.
  /// Introspection for tests and benchmarks (pool stats, generations).
  storage::PagedStore* paged_store() { return store_.get(); }

  /// True when this session runs on durable paged storage.
  bool is_paged() const { return paged_; }

 private:
  Result<QueryResult> DispatchStatement(const sql::Statement& stmt);
  Result<QueryResult> EvaluateSelect(const sql::SelectStatement& stmt);
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStatement& stmt);
  Result<QueryResult> ExecuteCreateTableAs(
      const sql::CreateTableAsStatement& stmt);
  Result<QueryResult> ExecuteDrop(const sql::DropTableStatement& stmt);
  Result<QueryResult> ExecuteDml(const sql::Statement& stmt);

  /// True if `stmt` (transitively) references any defined view.
  bool ReferencesViews(const sql::SelectStatement& stmt) const;

  /// Materializes every view referenced by `stmt` into `target`
  /// (recursively, dependency-first). `in_progress` detects cycles.
  Status MaterializeViewsInto(worlds::WorldSet* target,
                              const sql::SelectStatement& stmt,
                              std::set<std::string>* in_progress) const;

  std::unique_ptr<worlds::WorldSet> MakeWorldSet() const;

  /// Paged mode: opens/creates the store and restores a committed
  /// world-set if one exists. Called from the constructor; failures land
  /// in storage_status_ (the constructor itself never fails).
  void InitStorage();

  /// Paged mode: commits the current world-set and reloads it from disk,
  /// so every relation the NEXT statement reads has round-tripped through
  /// pages, checksums, and the buffer pool. Called after each successful
  /// mutating statement.
  Status PersistAndReload();

  SessionOptions options_;
  std::unique_ptr<worlds::WorldSet> worlds_;
  Catalog catalog_;
  // View name (lower-cased) -> definition.
  std::map<std::string, std::shared_ptr<const sql::SelectStatement>> views_;

  // Durable paged storage (null in memory mode). views_ are NOT durable:
  // view definitions are ASTs and there is no unparser yet.
  std::unique_ptr<storage::PagedStore> store_;
  bool paged_ = false;         // resolved storage mode is kPaged
  Status storage_status_;      // sticky init failure, returned per statement
  std::string storage_dir_;
  bool owns_storage_dir_ = false;
};

}  // namespace maybms::isql

#endif  // MAYBMS_ISQL_SESSION_H_
