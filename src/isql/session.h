#ifndef MAYBMS_ISQL_SESSION_H_
#define MAYBMS_ISQL_SESSION_H_

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "isql/query_result.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "worlds/world_set.h"

namespace maybms::isql {

/// Which world-set representation backs the session.
enum class EngineMode {
  kExplicit,    // one materialized database per world (baseline)
  kDecomposed,  // MayBMS world-set decomposition
};

struct SessionOptions {
  EngineMode engine = EngineMode::kDecomposed;

  /// Cap on per-world answers rendered/returned by SELECT queries.
  size_t max_display_worlds = 64;

  /// Cap on materialized worlds in the explicit engine.
  size_t max_explicit_worlds = 1 << 20;

  /// Cap on alternatives a single component merge may produce in the
  /// decomposed engine.
  size_t max_merge = 1 << 20;

  /// Worker threads for per-world execution loops (0 = the MAYBMS_THREADS
  /// environment variable, else the hardware concurrency). Results are
  /// byte-identical at every setting; see base/thread_pool.h.
  size_t threads = 0;
};

/// An I-SQL session: parses statements, resolves views, and evaluates
/// against the configured world-set engine. This is the main public entry
/// point of the library.
///
///   maybms::isql::Session session;
///   auto r = session.Execute("create table R (A text, B integer);");
///   ...
///   auto q = session.Execute("select possible sum(B) from I;");
///
/// Statement semantics follow the paper:
///  * SELECT queries (including those with repair/choice/assert) do not
///    modify the session's world-set;
///  * CREATE TABLE ... AS materializes the statement's world operations;
///  * INSERT/UPDATE/DELETE run in every world; a constraint violation in
///    any world discards the update in all worlds;
///  * views are named queries; views may contain world operations (e.g.
///    `assert`), in which case querying the view evaluates against the
///    derived world-set the view denotes.
class Session {
 public:
  explicit Session(SessionOptions options = SessionOptions());

  /// Parses and executes a single statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Parses and executes a ';'-separated script; returns the result of
  /// every statement.
  Result<std::vector<QueryResult>> ExecuteScript(const std::string& sql);

  /// Executes an already parsed statement.
  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt);

  const worlds::WorldSet& world_set() const { return *worlds_; }
  const Catalog& catalog() const { return catalog_; }
  const SessionOptions& options() const { return options_; }

  /// Names of defined views (lower-cased).
  std::vector<std::string> ViewNames() const;

 private:
  Result<QueryResult> EvaluateSelect(const sql::SelectStatement& stmt);
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStatement& stmt);
  Result<QueryResult> ExecuteCreateTableAs(
      const sql::CreateTableAsStatement& stmt);
  Result<QueryResult> ExecuteDrop(const sql::DropTableStatement& stmt);
  Result<QueryResult> ExecuteDml(const sql::Statement& stmt);

  /// True if `stmt` (transitively) references any defined view.
  bool ReferencesViews(const sql::SelectStatement& stmt) const;

  /// Materializes every view referenced by `stmt` into `target`
  /// (recursively, dependency-first). `in_progress` detects cycles.
  Status MaterializeViewsInto(worlds::WorldSet* target,
                              const sql::SelectStatement& stmt,
                              std::set<std::string>* in_progress) const;

  std::unique_ptr<worlds::WorldSet> MakeWorldSet() const;

  SessionOptions options_;
  std::unique_ptr<worlds::WorldSet> worlds_;
  Catalog catalog_;
  // View name (lower-cased) -> definition.
  std::map<std::string, std::shared_ptr<const sql::SelectStatement>> views_;
};

}  // namespace maybms::isql

#endif  // MAYBMS_ISQL_SESSION_H_
