#ifndef MAYBMS_ISQL_SESSION_H_
#define MAYBMS_ISQL_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/query_context.h"
#include "base/result.h"
#include "isql/query_result.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/store.h"
#include "worlds/world_set.h"

namespace maybms::isql {

/// Which world-set representation backs the session.
enum class EngineMode {
  kExplicit,    // one materialized database per world (baseline)
  kDecomposed,  // MayBMS world-set decomposition
};

/// Which table storage backs the session's world-set.
enum class StorageMode {
  kDefault,  // the MAYBMS_STORAGE environment variable; memory if unset
  kMemory,   // in-memory tables only (no durability)
  kPaged,    // durable paged storage (storage/store.h): every mutating
             // statement commits, and all subsequent reads go through
             // tables that round-tripped disk pages + the buffer pool
};

struct SessionOptions {
  EngineMode engine = EngineMode::kDecomposed;

  /// Maintain a published SessionSnapshot (see below) that is rebuilt
  /// after every successful mutating statement. Readers on other threads
  /// may then PinSnapshot() and evaluate SELECTs against it concurrently
  /// with (exactly one) writer executing statements on the session.
  /// Off by default: embedded single-threaded sessions skip the
  /// O(worlds × relations) handle-bump clone per commit.
  bool publish_snapshots = false;

  /// Table storage backend. kDefault resolves MAYBMS_STORAGE
  /// ("memory"/"paged"); unset means memory.
  StorageMode storage = StorageMode::kDefault;

  /// Directory for the paged store's file. Empty resolves
  /// MAYBMS_STORAGE_DIR; if that is unset too, the session creates a
  /// private temp directory and removes it on destruction (an explicit
  /// directory is how callers opt into persistence across sessions).
  std::string storage_dir;

  /// Buffer-pool budget in pages for paged storage (0 resolves
  /// MAYBMS_POOL_PAGES; unset means 1024). A hard cap: the pool never
  /// holds more than this many pages in memory.
  size_t pool_pages = 0;

  /// Cap on per-world answers rendered/returned by SELECT queries.
  size_t max_display_worlds = 64;

  /// Cap on materialized worlds in the explicit engine.
  size_t max_explicit_worlds = 1 << 20;

  /// Cap on alternatives a single component merge may produce in the
  /// decomposed engine.
  size_t max_merge = 1 << 20;

  /// Worker threads for per-world execution loops (0 = the MAYBMS_THREADS
  /// environment variable, else the hardware concurrency). Results are
  /// byte-identical at every setting; see base/thread_pool.h.
  size_t threads = 0;

  // ---- Statement governance (base/query_context.h) ----
  // Zero resolves the corresponding environment variable; an unset
  // variable means unlimited. A malformed variable fails every statement
  // with kInvalidArgument (sticky, like MAYBMS_POOL_PAGES). Exceeding a
  // limit aborts the statement with kDeadlineExceeded (deadline) or
  // kResourceExhausted (budgets) and rolls its effects back entirely.

  /// Wall-clock deadline per statement, ms (MAYBMS_STATEMENT_TIMEOUT_MS).
  uint64_t statement_timeout_ms = 0;

  /// Cap on worlds a statement may materialize/enumerate
  /// (MAYBMS_MAX_WORLDS).
  uint64_t max_worlds = 0;

  /// Cap on estimated result bytes a statement may accumulate, MiB
  /// (MAYBMS_MEM_BUDGET_MB).
  uint64_t mem_budget_mb = 0;
};

/// A consistent immutable view of a session's state — the world-set,
/// the constraint catalog, and the view definitions — as of one commit
/// point. Snapshots are what make concurrent reads snapshot-isolated:
/// the world-set handle is a copy-on-write clone whose Table instances
/// are shared with the live session (immutable once shared,
/// storage/catalog.h), so pinning is O(worlds × relations) handle bumps
/// and a pinned snapshot never observes later writes. A statement
/// evaluated against a snapshot sees either the state before a
/// concurrent commit or the state after it — never a mixture — and its
/// result is byte-identical to serial execution against that state.
struct SessionSnapshot {
  /// Monotone commit sequence number (0 = initial state); successive
  /// published snapshots of one session carry increasing versions.
  uint64_t version = 0;
  std::shared_ptr<const worlds::WorldSet> worlds;
  Catalog catalog;
  std::map<std::string, std::shared_ptr<const sql::SelectStatement>> views;
};

/// An I-SQL session: parses statements, resolves views, and evaluates
/// against the configured world-set engine. This is the main public entry
/// point of the library.
///
///   maybms::isql::Session session;
///   auto r = session.Execute("create table R (A text, B integer);");
///   ...
///   auto q = session.Execute("select possible sum(B) from I;");
///
/// Statement semantics follow the paper:
///  * SELECT queries (including those with repair/choice/assert) do not
///    modify the session's world-set;
///  * CREATE TABLE ... AS materializes the statement's world operations;
///  * INSERT/UPDATE/DELETE run in every world; a constraint violation in
///    any world discards the update in all worlds;
///  * views are named queries; views may contain world operations (e.g.
///    `assert`), in which case querying the view evaluates against the
///    derived world-set the view denotes.
class Session {
 public:
  explicit Session(SessionOptions options = SessionOptions());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes a single statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Parses and executes a ';'-separated script; returns the result of
  /// every statement.
  Result<std::vector<QueryResult>> ExecuteScript(const std::string& sql);

  /// Executes an already parsed statement. Runs under the session's
  /// resolved governance limits; if the caller (e.g. the server) has
  /// already installed a QueryContext on this thread, that context
  /// governs instead — the caller owns deadline arithmetic then.
  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt);

  /// The session's resolved governance limits (options + environment).
  /// The server uses these as the floor when combining with per-request
  /// deadlines.
  const base::GovernanceLimits& governance_limits() const {
    return governance_limits_;
  }

  const worlds::WorldSet& world_set() const { return *worlds_; }
  const Catalog& catalog() const { return catalog_; }
  const SessionOptions& options() const { return options_; }

  /// Names of defined views (lower-cased).
  std::vector<std::string> ViewNames() const;

  // ---- Snapshot-isolated concurrent reads (src/server/) ----

  /// Pins the current state as an immutable snapshot.
  ///
  /// With options().publish_snapshots set, this returns the snapshot
  /// published by the latest commit and is safe to call from any thread
  /// concurrently with one writer thread executing statements (the
  /// server's reader path). Without it, a snapshot of the current state
  /// is built on the fly; that path is NOT safe against a concurrent
  /// writer — same single-thread rule as every other const accessor.
  std::shared_ptr<const SessionSnapshot> PinSnapshot() const;

  /// Evaluates a SELECT (including repair/choice/assert/group pipelines
  /// and view references) against a pinned snapshot. Never modifies any
  /// session; mutating statements are rejected with kInvalidArgument.
  /// Safe to run from many threads over the same snapshot concurrently:
  /// evaluation is const over the snapshot's world-set, and view
  /// materialization works on a reader-private clone.
  static Result<QueryResult> EvaluateSnapshot(const SessionSnapshot& snapshot,
                                              const sql::Statement& stmt,
                                              size_t max_display_worlds);

  /// Parse-then-evaluate convenience for the wire path and tests.
  static Result<QueryResult> EvaluateSnapshot(const SessionSnapshot& snapshot,
                                              const std::string& sql,
                                              size_t max_display_worlds);

  /// The paged store backing this session, or nullptr in memory mode.
  /// Introspection for tests and benchmarks (pool stats, generations).
  storage::PagedStore* paged_store() { return store_.get(); }

  /// True when this session runs on durable paged storage.
  bool is_paged() const { return paged_; }

 private:
  /// The statement body under a (possibly null) governance context:
  /// dispatch, paged persist, and — for governed mutating statements —
  /// pre-statement capture plus rollback on any failure, so an aborted
  /// statement leaves world-set, catalog, and views byte-identical.
  Result<QueryResult> ExecuteGoverned(const sql::Statement& stmt,
                                      base::QueryContext* ctx);

  /// Resolves governance limits from options + environment (strict
  /// parsing; failures are sticky in governance_status_).
  void ResolveGovernance();

  Result<QueryResult> DispatchStatement(const sql::Statement& stmt);
  Result<QueryResult> EvaluateSelect(const sql::SelectStatement& stmt);
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStatement& stmt);
  Result<QueryResult> ExecuteCreateTableAs(
      const sql::CreateTableAsStatement& stmt);
  Result<QueryResult> ExecuteDrop(const sql::DropTableStatement& stmt);
  Result<QueryResult> ExecuteDml(const sql::Statement& stmt);

  using ViewMap =
      std::map<std::string, std::shared_ptr<const sql::SelectStatement>>;

  /// True if `stmt` (transitively) references any view in `views`.
  static bool ReferencesViews(const sql::SelectStatement& stmt,
                              const ViewMap& views);

  /// Materializes every view referenced by `stmt` into `target`
  /// (recursively, dependency-first). `in_progress` detects cycles.
  static Status MaterializeViewsInto(const ViewMap& views,
                                     worlds::WorldSet* target,
                                     const sql::SelectStatement& stmt,
                                     std::set<std::string>* in_progress);

  /// The shared SELECT pipeline: evaluates `stmt` against `ws`, expanding
  /// views from `views` on a clone when referenced. Both the session's
  /// EvaluateSelect and the static snapshot path go through here.
  static Result<QueryResult> EvaluateSelectOn(const worlds::WorldSet& ws,
                                              const ViewMap& views,
                                              const sql::SelectStatement& stmt,
                                              size_t max_display_worlds);

  /// Rebuilds and publishes the snapshot readers pin (publish_snapshots
  /// mode). Called after construction and after every successful mutating
  /// statement, from the (single) writer thread.
  void PublishSnapshot();

  std::unique_ptr<worlds::WorldSet> MakeWorldSet() const;

  /// Paged mode: opens/creates the store and restores a committed
  /// world-set if one exists. Called from the constructor; failures land
  /// in storage_status_ (the constructor itself never fails).
  void InitStorage();

  /// Paged mode: commits the current world-set and reloads it from disk,
  /// so every relation the NEXT statement reads has round-tripped through
  /// pages, checksums, and the buffer pool. Called after each successful
  /// mutating statement.
  Status PersistAndReload();

  SessionOptions options_;
  std::unique_ptr<worlds::WorldSet> worlds_;
  Catalog catalog_;
  // View name (lower-cased) -> definition.
  ViewMap views_;

  // Published snapshot (publish_snapshots mode). The mutex guards only
  // the pointer swap/copy: readers run evaluation outside it.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const SessionSnapshot> published_;
  uint64_t commit_version_ = 0;

  // Durable paged storage (null in memory mode). views_ are NOT durable:
  // view definitions are ASTs and there is no unparser yet.
  std::unique_ptr<storage::PagedStore> store_;
  bool paged_ = false;         // resolved storage mode is kPaged
  Status storage_status_;      // sticky init failure, returned per statement
  base::GovernanceLimits governance_limits_;
  Status governance_status_;   // sticky malformed-governance-env failure
  std::string storage_dir_;
  bool owns_storage_dir_ = false;
};

}  // namespace maybms::isql

#endif  // MAYBMS_ISQL_SESSION_H_
