#ifndef MAYBMS_ISQL_FORMATTER_H_
#define MAYBMS_ISQL_FORMATTER_H_

#include <cstddef>
#include <string>

#include "isql/query_result.h"
#include "storage/table.h"
#include "worlds/world_set.h"

namespace maybms::isql {

/// Renders a table with aligned columns:
///
///   A  | B  | C
///   ---+----+---
///   a1 | 10 | c1
std::string FormatTable(const Table& table);

/// Renders a query result: message, per-world tables with labels and
/// probabilities (the paper's Figure 2 style), a single answer table, or
/// per-group results.
std::string FormatQueryResult(const QueryResult& result);

/// Renders the current world-set: world labels, probabilities, and every
/// relation instance per world (up to `max_worlds`).
std::string FormatWorldSet(const worlds::WorldSet& world_set,
                           size_t max_worlds);

}  // namespace maybms::isql

#endif  // MAYBMS_ISQL_FORMATTER_H_
