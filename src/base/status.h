#ifndef MAYBMS_BASE_STATUS_H_
#define MAYBMS_BASE_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace maybms {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// status idiom: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kConstraintViolation,
  kEmptyWorldSet,   // e.g. `assert` eliminated every world
  kUnsupported,
  kRuntimeError,
  kIOError,            // file open/read/write/sync failed (storage layer)
  kResourceExhausted,  // a hard budget is spent, e.g. every buffer-pool
                       // page is pinned — back off, do not trap
  kDataLoss,           // durable bytes failed validation (checksum
                       // mismatch, truncated page): corruption is
                       // DETECTED, never silently read
  kDeadlineExceeded,   // the statement's deadline passed or it was
                       // cooperatively cancelled (base/query_context.h);
                       // state is rolled back, retrying is safe.
                       // Appended last: wire ordinals of earlier codes
                       // (server/protocol.cc) must stay stable.
};

/// Returns a human-readable name ("ParseError", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus a message for non-OK statuses.
/// OK is represented without allocation; cheap to copy and move.
///
/// The class is [[nodiscard]]: every function returning a Status by value
/// must have its result consumed (checked, propagated via
/// MAYBMS_RETURN_NOT_OK, or explicitly dropped with MAYBMS_IGNORE_STATUS —
/// see base/result.h). Silently dropping an error is a compile error under
/// the repo's -Werror build and a lint finding (tools/lint).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status ParseError(std::string msg);
  static Status TypeError(std::string msg);
  static Status ConstraintViolation(std::string msg);
  static Status EmptyWorldSet(std::string msg);
  static Status Unsupported(std::string msg);
  static Status RuntimeError(std::string msg);
  static Status IOError(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status DataLoss(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

}  // namespace maybms

#endif  // MAYBMS_BASE_STATUS_H_
