#include "base/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "base/parallel_region.h"
#include "base/query_context.h"

namespace maybms::base {

namespace {

// True while this thread is executing inside a ParallelFor (as caller or
// worker): nested calls run inline instead of re-entering the pool.
thread_local bool tls_inside_parallel_for = false;

// Region token for the debug invariant traps (base/parallel_region.h):
// nonzero while this thread runs ParallelFor bodies — including the
// sequential inline path, so a trap that would fire at threads:8 also
// fires at threads:1. Unlike tls_inside_parallel_for (which only guards
// pool re-entry), the token is maintained on EVERY execution path.
thread_local uint64_t tls_region_token = 0;
std::atomic<uint64_t> g_next_region_token{1};

// Assigns this thread a fresh token for a top-level region; nested
// regions (token already nonzero) keep the outer token.
class RegionTokenScope {
 public:
  RegionTokenScope() : saved_(tls_region_token) {
    if (tls_region_token == 0) {
      tls_region_token =
          g_next_region_token.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ~RegionTokenScope() { tls_region_token = saved_; }
  RegionTokenScope(const RegionTokenScope&) = delete;
  RegionTokenScope& operator=(const RegionTokenScope&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace

uint64_t CurrentRegionToken() { return tls_region_token; }

bool InParallelRegion() { return tls_region_token != 0; }

ThreadPool::ThreadPool(size_t extra_workers) : target_workers_(extra_workers) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::EnsureWorkers() {
  // Workers are spawned on the FIRST loop that actually goes parallel,
  // not at construction: the mere existence of a second thread switches
  // glibc malloc off its single-threaded fast path for the rest of the
  // process — a measured ~15-20% on allocation-heavy sub-25us statements.
  // A threads:1 session (or a 1-core machine) never spawns and never
  // pays; spawning is idempotent and serialized on mu_.
  std::lock_guard<std::mutex> lk(mu_);
  if (workers_.size() >= target_workers_) return;
  workers_.reserve(target_workers_);
  while (workers_.size() < target_workers_) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

size_t ThreadPool::DefaultThreads() {
  // MAYBMS_THREADS is re-read on every call (tests rely on setenv taking
  // effect mid-process), but hardware_concurrency() is a syscall on
  // glibc (~2.5us) and never changes — cache it, or its cost dwarfs
  // small statements: Slots() + ParallelFor() pay it once each.
  if (const char* env = std::getenv("MAYBMS_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  static const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: worker threads must not be joined during static
  // destruction. Sized at least 8 so correctness tests exercise real
  // concurrency even on small machines (per-call `threads` still limits
  // how many slots a loop uses). Worker threads start lazily — see
  // EnsureWorkers.
  static ThreadPool* pool =
      new ThreadPool(std::max<size_t>(8, DefaultThreads()) - 1);
  return *pool;
}

size_t ThreadPool::ChunkSize(size_t n) {
  // A function of n only — never of the thread count (see header rule 1).
  // ~64 chunks for mid-size loops; chunks cap at 1024 indices so huge
  // world counts still rebalance across slow/fast workers, and never go
  // below 64: per-chunk accumulators (combiners, snapshots) pay a
  // construct+merge cost per chunk (~0.7us for a streaming combiner),
  // which has to stay small against the chunk's own work — singleton
  // chunks made it per-index (2-3x on few-world statements), and chunks
  // of 8 still lost ~30% on cheap per-world queries over a few hundred
  // worlds.
  if (n <= 1) return 1;
  return std::min<size_t>(n, std::clamp<size_t>(n / 64, 64, 1024));
}

size_t ThreadPool::NumChunks(size_t n) {
  size_t cs = ChunkSize(n);
  return (n + cs - 1) / cs;
}

size_t ThreadPool::Slots(size_t threads) const {
  size_t want = threads > 0 ? threads : DefaultThreads();
  return std::min(want, max_parallelism());
}

Status ThreadPool::RunInline(size_t n, const Body& body) {
  // Same chunk walk as the parallel path; run in order, the first error
  // encountered is the smallest-index error. Carries a region token like
  // the parallel path so the Database/Table debug traps are independent
  // of the thread count and loop size.
  RegionTokenScope region;
  const size_t chunk_size = ChunkSize(n);
  const size_t num_chunks = NumChunks(n);
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    // Same chunk-boundary governance poll as the parallel path, so the
    // number of polls a statement makes is a function of n only.
    MAYBMS_RETURN_NOT_OK(GovernPoll());
    const size_t begin = chunk * chunk_size;
    const size_t end = std::min(begin + chunk_size, n);
    for (size_t i = begin; i < end; ++i) {
      MAYBMS_RETURN_NOT_OK(body(i, 0, chunk));
    }
  }
  return Status::OK();
}

void ThreadPool::RunChunks(Task* task, size_t slot) {
  const Body& body = *task->body;
  while (true) {
    const size_t chunk = task->next_chunk.fetch_add(1,
                                                    std::memory_order_relaxed);
    if (chunk >= task->num_chunks) break;
    const size_t begin = chunk * task->chunk_size;
    const size_t end = std::min(begin + task->chunk_size, task->n);
    if (task->context != nullptr) {
      // Chunk-boundary governance poll. A fired limit is recorded at the
      // chunk's first index under the usual smallest-index rule; the
      // verdict Status is set-once in the context (and index-free), so
      // every thread that observes it reports the identical error.
      Status governed = task->context->Check();
      if (!governed.ok()) {
        std::lock_guard<std::mutex> g(task->error_mu);
        if (begin < task->error_index) {
          task->error_index = begin;
          task->error = std::move(governed);
          task->stop_before.store(begin, std::memory_order_release);
        }
        continue;  // drain remaining chunks without running bodies
      }
    }
    for (size_t i = begin; i < end; ++i) {
      // Rule 2: an index at or above a known failing index is dead —
      // the sequential loop would have stopped before reaching it.
      if (i >= task->stop_before.load(std::memory_order_acquire)) break;
      Status st;
      try {
        st = body(i, slot, chunk);
      } catch (const std::exception& e) {
        st = Status::RuntimeError(std::string("parallel worker: ") + e.what());
      } catch (...) {
        st = Status::RuntimeError("parallel worker: unknown exception");
      }
      if (!st.ok()) {
        std::lock_guard<std::mutex> g(task->error_mu);
        if (i < task->error_index) {
          task->error_index = i;
          task->error = std::move(st);
          task->stop_before.store(i, std::memory_order_release);
        }
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return shutdown_ || task_ != nullptr; });
    if (shutdown_) return;
    Task* t = task_;
    // Claiming the slot and bumping active_ happen under mu_, so the
    // caller cannot retire the task in between.
    const size_t slot = t->next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot < t->max_slots) {
      ++active_;
      lk.unlock();
      tls_inside_parallel_for = true;
      {
        RegionTokenScope region;
        // Workers carry the submitter's governance context for the
        // task's duration, so nested loops and engine code polling
        // GovernPoll() see it on every thread.
        QueryContextScope governance(t->context);
        RunChunks(t, slot);
      }
      tls_inside_parallel_for = false;
      lk.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
    // Never rejoin the same task; sleep until it is retired (or a new one
    // replaces it).
    work_cv_.wait(lk, [&] { return shutdown_ || task_ != t; });
    if (shutdown_) return;
  }
}

Status ThreadPool::ParallelFor(size_t n, size_t threads, const Body& body) {
  if (n == 0) return Status::OK();
  const size_t slots = Slots(threads);
  if (slots <= 1 || NumChunks(n) <= 1 || tls_inside_parallel_for) {
    return RunInline(n, body);
  }
  EnsureWorkers();

  std::lock_guard<std::mutex> submit(submit_mu_);
  Task task;
  task.n = n;
  task.chunk_size = ChunkSize(n);
  task.num_chunks = NumChunks(n);
  task.max_slots = slots;
  task.body = &body;
  task.context = CurrentQueryContext();
  task.stop_before.store(n, std::memory_order_relaxed);
  task.error_index = n;

  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = &task;
  }
  work_cv_.notify_all();

  tls_inside_parallel_for = true;
  {
    RegionTokenScope region;
    RunChunks(&task, /*slot=*/0);
  }
  tls_inside_parallel_for = false;

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
    task_ = nullptr;
  }
  work_cv_.notify_all();

  if (task.error_index < n) return std::move(task.error);
  return Status::OK();
}

}  // namespace maybms::base
