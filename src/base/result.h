#ifndef MAYBMS_BASE_RESULT_H_
#define MAYBMS_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace maybms {

/// Either a value of type T or a non-OK Status. The usual Arrow-style
/// vocabulary type for fallible functions that produce a value.
///
/// [[nodiscard]] like Status: a dropped Result is a dropped error. Consume
/// it, propagate it (MAYBMS_ASSIGN_OR_RETURN), or drop it explicitly with
/// MAYBMS_IGNORE_STATUS.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from values and statuses keeps call sites terse:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 42; }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value
};

}  // namespace maybms

#define MAYBMS_CONCAT_IMPL(x, y) x##y
#define MAYBMS_CONCAT(x, y) MAYBMS_CONCAT_IMPL(x, y)

// Propagates a non-OK Status from an expression returning Status. The
// temporary's name is line-unique so the macro can appear inside a lambda
// that is itself an argument to another MAYBMS_RETURN_NOT_OK (no -Wshadow).
#define MAYBMS_RETURN_NOT_OK(expr) \
  MAYBMS_RETURN_NOT_OK_IMPL(MAYBMS_CONCAT(_status_, __LINE__), expr)

#define MAYBMS_RETURN_NOT_OK_IMPL(tmp, expr) \
  do {                                       \
    ::maybms::Status tmp = (expr);           \
    if (!tmp.ok()) return tmp;               \
  } while (false)

// Evaluates an expression returning Result<T>; on success binds the value
// to `lhs`, otherwise returns the error status from the enclosing function.
#define MAYBMS_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  MAYBMS_ASSIGN_OR_RETURN_IMPL(MAYBMS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define MAYBMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

// Explicitly discards a Status/Result when dropping the error is the
// intended behavior (e.g. best-effort cleanup, a bench loop that has
// already validated the statement). This is the ONE sanctioned way to
// drop a [[nodiscard]] value: a bare `(void)` cast is still flagged by
// the lint pass (tools/lint), so every intentional drop is greppable.
#define MAYBMS_IGNORE_STATUS(expr)     \
  do {                                 \
    auto _maybms_ignored = (expr);     \
    static_cast<void>(_maybms_ignored); \
  } while (false)

#endif  // MAYBMS_BASE_RESULT_H_
