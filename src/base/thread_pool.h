#ifndef MAYBMS_BASE_THREAD_POOL_H_
#define MAYBMS_BASE_THREAD_POOL_H_

// Shared chunked thread pool for the per-world hot loops.
//
// Every world of a world-set is an independent database (worlds/world_set.h),
// prepared plans are schema-only (engine/prepared.h), and tables are
// immutable once shared (storage/catalog.h) — so per-world work parallelizes
// without locks around engine state. What does NOT parallelize naively is
// the *observable behavior*: result bytes and error choice must not depend
// on the thread count. ParallelFor is therefore built around three rules:
//
//  1. Deterministic chunking. The iteration space [0, n) is split into
//     fixed chunks whose geometry depends only on n (ChunkSize/NumChunks),
//     never on the thread count. Callers that accumulate floating-point
//     state keep one accumulator per CHUNK and merge them in chunk-index
//     order afterwards, so every addition happens in the same order at
//     every thread count — results are byte-identical to threads:1.
//     Workers claim chunks from a shared atomic cursor (work stealing in
//     the chunked sense: a fast worker drains chunks a slow one never
//     reaches).
//
//  2. First error by INDEX, not by completion order. When bodies fail in
//     several indices concurrently, the error reported is the one at the
//     smallest index — exactly the error the sequential loop would have
//     hit first. Indices above the smallest known failing index are
//     skipped (the sequential loop would never have reached them), indices
//     below it still run so a smaller failing index can surface.
//
//  3. Slot-addressed scratch state. The body receives a `slot` in
//     [0, Slots(threads)): a dense identifier for the executing thread,
//     stable for the duration of one ParallelFor. Callers use it to index
//     per-thread caches (e.g. lazily prepared plans, which mutate their
//     subquery-plan caches during execution and must not be shared across
//     threads). Slot state must not affect results — only per-chunk state
//     may feed the answer.
//
// Nested ParallelFor calls from inside a worker run inline on the calling
// worker (slot 0 of the nested call) — no deadlock, no thread explosion.
// Concurrent top-level calls from different threads serialize on the pool.
//
// Debug invariant enforcement: while a thread executes loop bodies (on
// every path, including threads:1/inline) it carries a nonzero region
// token (base/parallel_region.h). Debug builds use it to trap writes to
// shared Databases from inside a parallel region — see the concurrency
// invariant in storage/catalog.h and tests/invariant_traps_test.cc.
//
// Thread count resolution: a per-call `threads` argument of 0 means
// DefaultThreads(), which honours the MAYBMS_THREADS environment variable
// (if set to a positive integer) and falls back to
// std::thread::hardware_concurrency(). Session code exposes the same knob
// as SessionOptions::threads. threads:1 runs inline on the caller — but
// through the same chunked algorithm, so it is the determinism reference.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/result.h"

namespace maybms::base {

class QueryContext;

class ThreadPool {
 public:
  /// body(index, slot, chunk): run iteration `index`, executing as thread
  /// `slot`, within chunk `chunk`. Returns OK or the iteration's error.
  using Body = std::function<Status(size_t index, size_t slot, size_t chunk)>;

  /// A pool with `extra_workers` background threads; callers of
  /// ParallelFor participate too, so max_parallelism() is one more.
  /// Worker threads are spawned lazily, on the first call that actually
  /// goes parallel — a process whose loops all run inline (threads:1, a
  /// 1-core machine) stays single-threaded, keeping glibc malloc on its
  /// lock-free fast path (see EnsureWorkers in the .cc).
  explicit ThreadPool(size_t extra_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// MAYBMS_THREADS (positive integer) if set, else
  /// std::thread::hardware_concurrency() (at least 1). Re-read on every
  /// call so tests can vary the environment.
  static size_t DefaultThreads();

  /// The process-wide pool used by the engines. Sized once at first use:
  /// max(8, DefaultThreads()) slots, so tests exercise real concurrency
  /// even on small machines.
  static ThreadPool& Shared();

  /// Deterministic chunk geometry: a function of n ONLY (never of the
  /// thread count), so per-chunk accumulators merge identically at every
  /// thread count.
  static size_t ChunkSize(size_t n);
  static size_t NumChunks(size_t n);

  /// Workers plus the calling thread. Reports the CONFIGURED capacity
  /// (workers spawn lazily), so Slots() is stable from the first call.
  size_t max_parallelism() const { return target_workers_ + 1; }

  /// Number of slots a ParallelFor(n, threads, ...) call may use — size
  /// per-slot scratch arrays with this. 0 means DefaultThreads().
  size_t Slots(size_t threads) const;

  /// Runs body for every index in [0, n) using up to Slots(threads)
  /// threads. Returns OK iff every executed body returned OK; otherwise
  /// the error of the SMALLEST failing index (see rule 2 above).
  [[nodiscard]] Status ParallelFor(size_t n, size_t threads, const Body& body);

 private:
  struct Task {
    size_t n = 0;
    size_t chunk_size = 0;
    size_t num_chunks = 0;
    size_t max_slots = 0;
    const Body* body = nullptr;
    // The submitting thread's governance context (base/query_context.h),
    // installed on every worker for the task's duration and polled at
    // chunk boundaries; nullptr when the statement is ungoverned.
    QueryContext* context = nullptr;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> next_slot{1};  // caller owns slot 0
    // Indices >= stop_before are skipped: a body at a smaller-or-equal
    // index already failed, so the sequential loop would never have
    // reached them.
    std::atomic<size_t> stop_before;
    std::mutex error_mu;
    size_t error_index;
    Status error;
  };

  void WorkerLoop();
  /// Spawns the configured workers if not yet running (idempotent).
  void EnsureWorkers();
  /// Claims chunks off `task` until exhausted; records errors per rule 2.
  static void RunChunks(Task* task, size_t slot);
  /// The threads:1 path — same chunk walk, caller-only, early exit on
  /// first error (which IS the smallest-index error when run in order).
  static Status RunInline(size_t n, const Body& body);

  const size_t target_workers_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a task arrived / shutdown
  std::condition_variable done_cv_;  // caller: all participants finished
  Task* task_ = nullptr;
  size_t active_ = 0;  // workers currently executing task chunks
  bool shutdown_ = false;

  // Serializes concurrent top-level ParallelFor calls (nested calls run
  // inline and never take this lock).
  std::mutex submit_mu_;
};

}  // namespace maybms::base

#endif  // MAYBMS_BASE_THREAD_POOL_H_
