#ifndef MAYBMS_BASE_QUERY_CONTEXT_H_
#define MAYBMS_BASE_QUERY_CONTEXT_H_

// Resource governance for a single statement: a deadline, a cooperative
// cancellation flag, and atomic world/memory budget counters, polled from
// every long-running loop in the system.
//
// Design rules (they are what keep results deterministic):
//
//  1. TLS plumbing, not parameter plumbing. The statement driver
//     (isql::Session, server::Server) installs the context with a
//     QueryContextScope; every loop polls through GovernPoll(), which
//     reads the thread-local pointer. ThreadPool::ParallelFor propagates
//     the submitting thread's context to its workers for the duration of
//     the task, so chunk-boundary polls see it on every thread. No
//     engine interface changes, and concurrent snapshot readers each
//     carry their own context.
//
//  2. Budgets are charged deterministically, checked wherever charged.
//     ChargeWorlds/ChargeBytes totals are a function of the statement
//     and the data — never of the thread count or schedule — so whether
//     a statement exceeds its budget is thread-count invariant. Which
//     poll OBSERVES the verdict first may vary; the error Status (code
//     and message) is fixed the moment the verdict is set, so the
//     surfaced error is identical at every thread count.
//
//  3. Error messages name the limit, never an iteration index. A
//     deadline error says "statement deadline of N ms exceeded"; a
//     budget error names the budget and its configured value. Indices
//     would vary with scheduling; limits do not.
//
//  4. Unarmed cost is one TLS load and a branch. With a context armed
//     but no limit fired, Check() is a couple of relaxed atomic loads;
//     the deadline clock is read on every kDeadlineCheckInterval-th poll
//     per thread (steady_clock reads are ~25ns — fine per chunk, not
//     per world on sub-microsecond worlds).
//
// Cancellation points NEVER tear state: every caller that polls either
// propagates the error before mutating shared state (compute-then-commit
// in both engines, snapshot/rollback in ApplyDml) or sits before the
// storage commit's root flip (storage/store.cc) — an aborted statement
// leaves the world-set, the published snapshot, and the durable store
// exactly as they were. See "Resource governance" in
// docs/architecture.md for the abort-vs-commit protocol.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "base/result.h"

namespace maybms::base {

/// The limits a statement runs under. Zero always means "unlimited".
struct GovernanceLimits {
  /// Wall-clock budget from statement start, milliseconds.
  uint64_t deadline_ms = 0;

  /// Cap on worlds/alternatives the statement may materialize or
  /// enumerate (charged via ChargeWorlds at fan-out points).
  uint64_t max_worlds = 0;

  /// Cap on bytes of result/world data the statement may accumulate
  /// (charged via ChargeBytes; an estimate, not an allocator hook).
  uint64_t mem_budget_bytes = 0;
};

/// Deterministic kill-point injection for the cancellation battery
/// (tests/governance_test.cc), in the storage::FaultInjector idiom:
/// process-global, armed with a countdown N, the (N+1)-th governed poll
/// — and every poll after it — fails with a fixed kDeadlineExceeded
/// error. Unarmed cost is one relaxed atomic load inside Check().
class PollTrip {
 public:
  /// Fail the (fail_after + 1)-th poll and everything after it.
  static void Arm(uint64_t fail_after);
  static void Disarm();

  /// Polls intercepted since the last Arm; the battery uses it to count
  /// a statement's kill points.
  static uint64_t PollsSinceArm();

  static bool armed();

  /// Internal (QueryContext::Check): true when this poll must fail.
  static bool Next();

  /// The fixed error every tripped poll surfaces.
  static const char* Message();

 private:
  static std::atomic<bool> armed_;
  static std::atomic<uint64_t> remaining_;
  static std::atomic<uint64_t> polls_;
};

/// Per-statement governance state. Thread-safe: one statement's workers
/// all share one context. Construct per statement, install with
/// QueryContextScope, poll with GovernPoll().
class QueryContext {
 public:
  explicit QueryContext(GovernanceLimits limits);

  /// The cooperative cancellation poll. OK until a limit fires or
  /// Cancel() is called; afterwards returns the same verdict Status on
  /// every call (set-once, so every thread reports the identical error).
  [[nodiscard]] Status Check();

  /// Charges `n` worlds against the world budget; fails (and poisons the
  /// context) once the deterministic running total exceeds it.
  [[nodiscard]] Status ChargeWorlds(uint64_t n);

  /// Charges an estimate of `n` bytes against the memory budget.
  [[nodiscard]] Status ChargeBytes(uint64_t n);

  /// External cancellation (connection drop, server drain). The first
  /// verdict wins; `reason` completes "statement cancelled: <reason>".
  void Cancel(const std::string& reason);

  /// Registers a rate-limited external probe (e.g. "has the client hung
  /// up?"), invoked on every kProbeInterval-th Check() on any thread; a
  /// true return cancels with `reason`. The probe must be thread-safe.
  void SetCancelProbe(std::function<bool()> probe, std::string reason);

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True when any limit, probe, or the PollTrip hook is active — the
  /// session uses this to decide whether a pre-statement state capture
  /// is needed for abort rollback.
  bool governed() const;

  const GovernanceLimits& limits() const { return limits_; }
  uint64_t worlds_charged() const {
    return worlds_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Check the deadline clock every this many polls per thread.
  static constexpr uint64_t kDeadlineCheckInterval = 16;
  /// Run the cancel probe every this many polls (it may be a syscall).
  static constexpr uint64_t kProbeInterval = 64;

 private:
  /// Records `verdict` as the context's terminal error if none is set
  /// yet, and returns the recorded verdict (the winner, not necessarily
  /// the argument) so concurrent losers surface the identical error.
  Status Fail(Status verdict);

  GovernanceLimits limits_;
  uint64_t deadline_ns_ = 0;  // absolute steady-clock ns; 0 = none

  std::atomic<uint64_t> worlds_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> polls_{0};

  std::atomic<bool> cancelled_{false};
  mutable std::mutex verdict_mu_;  // guards verdict_ and probe state
  Status verdict_;

  std::function<bool()> probe_;
  std::string probe_reason_;
  std::atomic<bool> has_probe_{false};
};

/// The context installed on the current thread, or nullptr.
QueryContext* CurrentQueryContext();

/// RAII install/restore of the thread-local context. Installing nullptr
/// SHIELDS the region: polls inside it are no-ops, which is how the
/// post-commit reload in paged mode runs to completion after the store's
/// root already flipped (disk state and memory state must not diverge).
class QueryContextScope {
 public:
  explicit QueryContextScope(QueryContext* ctx);
  ~QueryContextScope();
  QueryContextScope(const QueryContextScope&) = delete;
  QueryContextScope& operator=(const QueryContextScope&) = delete;

 private:
  QueryContext* saved_;
};

/// The universal poll: OK when no context is installed, else
/// CurrentQueryContext()->Check(). Every per-world / per-page /
/// per-sample loop calls this at least once per bounded amount of work.
[[nodiscard]] Status GovernPoll();

/// Budget-charge conveniences for loops that fan out worlds or
/// accumulate result data; no-ops without an installed context.
[[nodiscard]] Status GovernChargeWorlds(uint64_t n);
[[nodiscard]] Status GovernChargeBytes(uint64_t n);

/// Deterministic O(1) footprint estimate for a per-world answer table:
/// rows × max(cols, 1) × 16 bytes (a Value is a small tagged union).
/// Deliberately NOT an allocator measurement — the charged total must be
/// a function of the data alone, identical at every thread count.
inline uint64_t EstimateTableBytes(size_t rows, size_t cols) {
  return static_cast<uint64_t>(rows) *
         static_cast<uint64_t>(cols == 0 ? 1 : cols) * 16;
}

}  // namespace maybms::base

#endif  // MAYBMS_BASE_QUERY_CONTEXT_H_
