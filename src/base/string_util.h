#ifndef MAYBMS_BASE_STRING_UTIL_H_
#define MAYBMS_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace maybms {

/// Lower-cases ASCII characters only (SQL identifiers/keywords).
std::string AsciiToLower(std::string_view s);

/// Upper-cases ASCII characters only.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII string equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` matches the SQL LIKE `pattern` with wildcards % and _.
bool LikeMatch(std::string_view s, std::string_view pattern);

/// Formats a double the way we print probabilities/values: shortest
/// representation that round-trips, without trailing zeros.
std::string FormatDouble(double value);

}  // namespace maybms

#endif  // MAYBMS_BASE_STRING_UTIL_H_
