#ifndef MAYBMS_BASE_RNG_H_
#define MAYBMS_BASE_RNG_H_

#include <cstdint>

namespace maybms::base {

/// splitmix64 (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA'14) as a UniformRandomBitGenerator.
///
/// The point of this engine over std::mt19937 is O(1) construction: the
/// state is the 64-bit seed itself, not a 624-word table. World sampling
/// (worlds/sampling.cc) constructs one generator PER SAMPLE — the stream
/// for sample s is a pure function of (seed, s), which is what makes the
/// Monte-Carlo estimates independent of the thread schedule — so seeding
/// cost is paid on every draw and an mt19937 init would dominate cheap
/// samples. The finalizer decorrelates nearby seeds, so consecutive
/// sample ordinals still yield independent-looking streams.
///
/// Usable with the std::*_distribution adapters (64 bits per call, so
/// uniform_real_distribution<double> consumes exactly one draw).
class SplitMix64 {
 public:
  using result_type = uint64_t;

  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<uint64_t>(0); }

  result_type operator()() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

}  // namespace maybms::base

#endif  // MAYBMS_BASE_RNG_H_
