#ifndef MAYBMS_BASE_PARALLEL_REGION_H_
#define MAYBMS_BASE_PARALLEL_REGION_H_

// Thread-local parallel-region tracking, maintained by ThreadPool
// (base/thread_pool.{h,cc}) and consumed by the storage layer's debug
// invariant traps (storage/catalog.h).
//
// While a thread executes loop bodies inside ThreadPool::ParallelFor —
// as the calling thread, as a pool worker, or on the sequential
// threads:1/inline path, which follows the same rules so traps are
// thread-count-invariant — it carries a nonzero REGION TOKEN unique to
// that (thread, top-level region) pair. Nested ParallelFor calls keep the
// outer token: they are part of the same logical region.
//
// The storage invariant this encodes (see storage/catalog.h): a Database
// visible to more than one thread is READ-ONLY for the duration of a
// parallel region. Debug builds stamp every Database with the token under
// which it was constructed/assigned; the mutating entry points trap when
// called inside a region on a Database stamped with a different token —
// i.e. on anything the executing thread did not itself create within the
// current region. This is a separate header so the storage layer does not
// pull in the full thread-pool machinery.

#include <cstdint>

namespace maybms::base {

/// Nonzero iff the calling thread is currently executing inside a
/// ParallelFor region; unique per (thread, top-level region).
uint64_t CurrentRegionToken();

/// CurrentRegionToken() != 0.
bool InParallelRegion();

}  // namespace maybms::base

#endif  // MAYBMS_BASE_PARALLEL_REGION_H_
