#include "base/status.h"

namespace maybms {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kEmptyWorldSet:
      return "EmptyWorldSet";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(rep_->code);
  result += ": ";
  result += rep_->message;
  return result;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::TypeError(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
Status Status::ConstraintViolation(std::string msg) {
  return Status(StatusCode::kConstraintViolation, std::move(msg));
}
Status Status::EmptyWorldSet(std::string msg) {
  return Status(StatusCode::kEmptyWorldSet, std::move(msg));
}
Status Status::Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
Status Status::RuntimeError(std::string msg) {
  return Status(StatusCode::kRuntimeError, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

}  // namespace maybms
