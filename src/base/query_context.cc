#include "base/query_context.h"

#include <chrono>

namespace maybms::base {

namespace {

thread_local QueryContext* tls_query_context = nullptr;

// Per-thread poll counter for amortizing the deadline clock read and the
// cancel probe. Deliberately NOT part of the shared context: a relaxed
// shared counter would bounce a cache line between every worker on every
// poll, which is exactly the hot-path cost governance must not add.
thread_local uint64_t tls_poll_count = 0;

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::atomic<bool> PollTrip::armed_{false};
std::atomic<uint64_t> PollTrip::remaining_{0};
std::atomic<uint64_t> PollTrip::polls_{0};

void PollTrip::Arm(uint64_t fail_after) {
  remaining_.store(fail_after, std::memory_order_relaxed);
  polls_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void PollTrip::Disarm() { armed_.store(false, std::memory_order_release); }

uint64_t PollTrip::PollsSinceArm() {
  return polls_.load(std::memory_order_relaxed);
}

bool PollTrip::armed() { return armed_.load(std::memory_order_acquire); }

const char* PollTrip::Message() {
  return "statement deadline exceeded (injected governance trip)";
}

bool PollTrip::Next() {
  if (!armed_.load(std::memory_order_acquire)) return false;
  polls_.fetch_add(1, std::memory_order_relaxed);
  uint64_t remaining = remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (remaining_.compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed)) {
      return false;
    }
  }
  // Budget spent: this poll and every later one fails — the statement is
  // dead, exactly like a deadline that already passed.
  return true;
}

QueryContext::QueryContext(GovernanceLimits limits) : limits_(limits) {
  if (limits_.deadline_ms > 0) {
    deadline_ns_ = SteadyNowNs() + limits_.deadline_ms * 1'000'000ULL;
  }
}

bool QueryContext::governed() const {
  return limits_.deadline_ms > 0 || limits_.max_worlds > 0 ||
         limits_.mem_budget_bytes > 0 ||
         has_probe_.load(std::memory_order_acquire) || PollTrip::armed();
}

Status QueryContext::Fail(Status verdict) {
  std::lock_guard<std::mutex> lock(verdict_mu_);
  if (!cancelled_.load(std::memory_order_relaxed)) {
    verdict_ = std::move(verdict);
    cancelled_.store(true, std::memory_order_release);
  }
  return verdict_;
}

Status QueryContext::Check() {
  if (PollTrip::Next()) {
    return Fail(Status(StatusCode::kDeadlineExceeded, PollTrip::Message()));
  }
  if (cancelled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(verdict_mu_);
    return verdict_;
  }
  const uint64_t count = ++tls_poll_count;
  if (deadline_ns_ != 0 && count % kDeadlineCheckInterval == 0 &&
      SteadyNowNs() >= deadline_ns_) {
    return Fail(Status::DeadlineExceeded(
        "statement deadline of " + std::to_string(limits_.deadline_ms) +
        " ms exceeded"));
  }
  if (has_probe_.load(std::memory_order_acquire) &&
      count % kProbeInterval == 0) {
    std::function<bool()> probe;
    std::string reason;
    {
      std::lock_guard<std::mutex> lock(verdict_mu_);
      probe = probe_;
      reason = probe_reason_;
    }
    if (probe && probe()) {
      return Fail(Status::DeadlineExceeded("statement cancelled: " + reason));
    }
  }
  return Status::OK();
}

Status QueryContext::ChargeWorlds(uint64_t n) {
  if (n == 0) return Check();
  const uint64_t total =
      worlds_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_worlds > 0 && total > limits_.max_worlds) {
    return Fail(Status::ResourceExhausted(
        "statement world budget of " + std::to_string(limits_.max_worlds) +
        " worlds exceeded"));
  }
  return Check();
}

Status QueryContext::ChargeBytes(uint64_t n) {
  if (n == 0) return Check();
  const uint64_t total = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.mem_budget_bytes > 0 && total > limits_.mem_budget_bytes) {
    return Fail(Status::ResourceExhausted(
        "statement memory budget of " +
        std::to_string(limits_.mem_budget_bytes / (1024 * 1024)) +
        " MiB exceeded"));
  }
  return Check();
}

void QueryContext::Cancel(const std::string& reason) {
  MAYBMS_IGNORE_STATUS(
      Fail(Status::DeadlineExceeded("statement cancelled: " + reason)));
}

void QueryContext::SetCancelProbe(std::function<bool()> probe,
                                  std::string reason) {
  {
    std::lock_guard<std::mutex> lock(verdict_mu_);
    probe_ = std::move(probe);
    probe_reason_ = std::move(reason);
  }
  has_probe_.store(true, std::memory_order_release);
}

QueryContext* CurrentQueryContext() { return tls_query_context; }

QueryContextScope::QueryContextScope(QueryContext* ctx)
    : saved_(tls_query_context) {
  tls_query_context = ctx;
}

QueryContextScope::~QueryContextScope() { tls_query_context = saved_; }

Status GovernPoll() {
  QueryContext* ctx = tls_query_context;
  if (ctx == nullptr) return Status::OK();
  return ctx->Check();
}

Status GovernChargeWorlds(uint64_t n) {
  QueryContext* ctx = tls_query_context;
  if (ctx == nullptr) return Status::OK();
  return ctx->ChargeWorlds(n);
}

Status GovernChargeBytes(uint64_t n) {
  QueryContext* ctx = tls_query_context;
  if (ctx == nullptr) return Status::OK();
  return ctx->ChargeBytes(n);
}

}  // namespace maybms::base
