#include "base/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace maybms {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

namespace {
// Recursive matcher; patterns in queries are short so this is fine.
bool LikeMatchImpl(std::string_view s, std::string_view p) {
  while (true) {
    if (p.empty()) return s.empty();
    if (p.front() == '%') {
      // Collapse consecutive % and try all suffixes.
      while (!p.empty() && p.front() == '%') p.remove_prefix(1);
      if (p.empty()) return true;
      for (size_t i = 0; i <= s.size(); ++i) {
        if (LikeMatchImpl(s.substr(i), p)) return true;
      }
      return false;
    }
    if (s.empty()) return false;
    if (p.front() != '_' && p.front() != s.front()) return false;
    s.remove_prefix(1);
    p.remove_prefix(1);
  }
}
}  // namespace

bool LikeMatch(std::string_view s, std::string_view pattern) {
  return LikeMatchImpl(s, pattern);
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Inf" : "-Inf";
  // If integral and small, print without decimals.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace maybms
