#ifndef MAYBMS_BASE_DCHECK_H_
#define MAYBMS_BASE_DCHECK_H_

// MAYBMS_DCHECK(cond, msg): debug-build invariant trap.
//
// In Debug builds (NDEBUG not defined) a failed condition prints the
// condition, the message, and the source location to stderr and aborts —
// turning an invariant violation (e.g. mutating a shared COW table, or
// writing to a shared Database inside a parallel region) into an
// immediate, attributable crash instead of silent corruption of sibling
// worlds. In Release builds the macro compiles to nothing: the condition
// expression is NOT evaluated, so traps may use debug-only state without
// a release-build cost.
//
// The Debug-build death-test suite (tests/invariant_traps_test.cc) proves
// the engine's traps fire; the ASan/UBSan/TSan CI jobs build Debug and so
// run the whole test suite with every trap armed.

#ifndef NDEBUG

#include <cstdio>
#include <cstdlib>

namespace maybms::base {

[[noreturn]] inline void DcheckFail(const char* file, int line,
                                    const char* condition,
                                    const char* message) {
  std::fprintf(stderr, "MAYBMS_DCHECK failed at %s:%d: (%s) — %s\n", file,
               line, condition, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace maybms::base

#define MAYBMS_DCHECK(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::maybms::base::DcheckFail(__FILE__, __LINE__, #cond, (msg)); \
    }                                                               \
  } while (false)

#else  // NDEBUG

#define MAYBMS_DCHECK(cond, msg) \
  do {                           \
  } while (false)

#endif  // NDEBUG

#endif  // MAYBMS_BASE_DCHECK_H_
