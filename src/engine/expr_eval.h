#ifndef MAYBMS_ENGINE_EXPR_EVAL_H_
#define MAYBMS_ENGINE_EXPR_EVAL_H_

#include <functional>
#include <vector>

#include "base/result.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace maybms::engine {

class SubqueryCache;

/// Evaluation environment for one expression over one candidate row.
///
/// `outer` chains contexts for correlated subqueries: a column that does
/// not resolve in the current row schema is looked up in the enclosing
/// query's row. `group_rows` is set while evaluating the select/having
/// list of a grouped query; aggregate function nodes then aggregate over
/// these rows instead of reading the current row.
///
/// `cache` (optional) is the enclosing query scope's subquery plan cache
/// (see engine/planner.h): when set, EXISTS/IN/scalar subquery nodes are
/// evaluated through one-shot decorrelated plans instead of re-executing
/// the subquery per row. It must only be set on contexts whose `outer`
/// chain stays fixed for the cache's lifetime.
struct EvalContext {
  const Database* db = nullptr;
  const Schema* schema = nullptr;             // may be null (no FROM)
  const Tuple* row = nullptr;                 // may be null (no FROM)
  const EvalContext* outer = nullptr;
  const std::vector<Tuple>* group_rows = nullptr;
  SubqueryCache* cache = nullptr;
};

/// Evaluates `expr` in `ctx`. Boolean-valued expressions produce
/// Value::Boolean or NULL (for SQL UNKNOWN).
Result<Value> EvalExpr(const sql::Expr& expr, const EvalContext& ctx);

/// Evaluates `expr` as a predicate; NULL/UNKNOWN maps to kUnknown.
Result<Trivalent> EvalPredicate(const sql::Expr& expr, const EvalContext& ctx);

/// SQL boolean Value for a trivalent truth value (kUnknown -> NULL).
Value TrivalentToValue(Trivalent t);

/// Invokes `fn` on each immediate child expression of `expr`. Subquery
/// statements are not descended into — their expressions resolve in their
/// own scope — but the IN-subquery operand, which lives in the enclosing
/// scope, is visited. The shared traversal skeleton for AST analyses
/// (ContainsAggregate, the planner's reference/correlation scans).
void ForEachChildExpr(const sql::Expr& expr,
                      const std::function<void(const sql::Expr&)>& fn);

/// True if the expression tree contains an aggregate function call
/// (outside of subqueries, which aggregate independently).
bool ContainsAggregate(const sql::Expr& expr);

/// True if `name` (lower-case) is an aggregate function.
bool IsAggregateFunction(const std::string& name);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_EXPR_EVAL_H_
