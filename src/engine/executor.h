#ifndef MAYBMS_ENGINE_EXECUTOR_H_
#define MAYBMS_ENGINE_EXECUTOR_H_

#include "base/result.h"
#include "engine/expr_eval.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace maybms::engine {

/// True if the statement uses any of the I-SQL world-set operations
/// (possible/certain/conf, repair by key, choice of, assert, group worlds
/// by) at its top level or in a UNION branch. Such statements must be
/// evaluated by the world-set layer, not by the per-world executor.
bool HasWorldOps(const sql::SelectStatement& stmt);

/// True if the statement's select list or HAVING clause contains an
/// aggregate function call (which makes the statement a grouped query even
/// without GROUP BY).
bool StatementHasAggregates(const sql::SelectStatement& stmt);

/// Evaluates the SQL core of `stmt` in a single world `db` under standard
/// (per-world) semantics. `outer` is the enclosing row context for
/// correlated subqueries (null at top level).
///
/// Returns Unsupported if the statement carries world-set operations.
Result<Table> ExecuteSelect(const sql::SelectStatement& stmt,
                            const Database& db,
                            const EvalContext* outer = nullptr);

/// Evaluates the FROM clause (comma items and JOIN ... ON clauses, with
/// alias-qualified schemas) and applies the WHERE filter. Equi-conjuncts
/// are executed as hash joins with residual predicates applied per bucket
/// match; non-equi joins fall back to nested loops; subquery predicates
/// are decorrelated where possible. Single-shot wrapper over
/// PreparedFromWhere (engine/prepared.h); callers that execute one
/// statement against many worlds should prepare once instead.
Result<Table> ExecuteFromWhere(const sql::SelectStatement& stmt,
                               const Database& db,
                               const EvalContext* outer = nullptr);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_EXECUTOR_H_
