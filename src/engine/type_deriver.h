#ifndef MAYBMS_ENGINE_TYPE_DERIVER_H_
#define MAYBMS_ENGINE_TYPE_DERIVER_H_

#include <optional>

#include "engine/expr_eval.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "types/schema.h"

namespace maybms::engine {

/// Derives the static output type of `expr` without evaluating any rows.
///
/// Resolution mirrors EvalExpr: column references bind to `ctx.schema`
/// first, then walk the `ctx.outer` chain; scalar subqueries are typed by
/// building the subquery's FROM schema from the catalog and recursing on
/// its single select item. Only `ctx.db`, `ctx.schema`, and `ctx.outer`
/// are consulted — rows are never touched, so the result is identical for
/// empty and populated inputs (the property both engine representations
/// must agree on).
///
/// Returns nullopt where no type can be known statically (NULL literals,
/// unknown columns, unresolvable subqueries); callers fall back to a
/// deterministic default (kText), never to sampling produced rows.
std::optional<DataType> DeriveExprType(const sql::Expr& expr,
                                       const EvalContext& ctx);

/// Builds the qualified FROM/JOIN source schema of `stmt` (declared column
/// types, alias qualifiers) from the catalog alone. Returns nullopt if a
/// referenced relation does not exist.
std::optional<Schema> DeriveSourceSchema(const sql::SelectStatement& stmt,
                                         const Database& db);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_TYPE_DERIVER_H_
