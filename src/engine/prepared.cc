// Implementation of the prepared-statement layer (see prepared.h for the
// schema-only invariant). Preparation performs, once per statement, the
// work the executor previously redid in every world: conjunct
// classification against the combined FROM/JOIN schema, hash-join key
// extraction with static type checks, select-item resolution and output
// schema derivation, and ORDER BY key resolution. Execution performs only
// world-dependent work: scans, hash build/probe, residual and final-filter
// evaluation, grouping, and set-op combination.

#include "engine/prepared.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>

#include "base/string_util.h"
#include "engine/executor.h"
#include "engine/type_deriver.h"
#include "types/tuple.h"

namespace maybms::engine {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

// ---------------------------------------------------------------------------
// Reference analysis (schema-level, preparation only)
// ---------------------------------------------------------------------------

/// What an expression references. Column refs inside nested subqueries are
/// not collected (their resolution is scoped to the subquery); the
/// presence of a subquery is reported instead.
struct RefScan {
  std::vector<const sql::ColumnRefExpr*> refs;
  bool has_subquery = false;
  bool has_aggregate = false;
};

void ScanRefsInto(const Expr& expr, RefScan* out) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      out->refs.push_back(static_cast<const sql::ColumnRefExpr*>(&expr));
      return;
    case ExprKind::kFunctionCall:
      if (IsAggregateFunction(
              static_cast<const sql::FunctionCallExpr&>(expr).name)) {
        out->has_aggregate = true;
      }
      break;
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
      out->has_subquery = true;
      break;
    default:
      break;
  }
  ForEachChildExpr(expr,
                   [out](const Expr& child) { ScanRefsInto(child, out); });
}

/// One FROM item or JOIN clause with its alias-qualified schema and column
/// range inside the combined (all-sources) schema.
struct SourceRel {
  sql::JoinKind kind = sql::JoinKind::kInner;
  const Expr* on = nullptr;  // JOIN ... ON predicate; null for comma items
  std::string relation;
  Schema schema;
  size_t col_begin = 0;
  size_t col_end = 0;
};

/// A predicate with the set of sources it references. `opaque` predicates
/// (subqueries, aggregates, ambiguous or unresolvable references) are
/// never moved: they evaluate exactly where the nested-loop pipeline
/// would have evaluated them.
struct ClassifiedPred {
  const Expr* expr = nullptr;
  uint64_t mask = 0;
  bool opaque = false;
};

ClassifiedPred Classify(const Expr& expr, const Schema& combined,
                        const std::vector<SourceRel>& sources,
                        const EvalContext* outer) {
  ClassifiedPred out;
  out.expr = &expr;
  RefScan scan;
  ScanRefsInto(expr, &scan);
  if (scan.has_subquery || scan.has_aggregate) {
    out.opaque = true;
    return out;
  }
  for (const sql::ColumnRefExpr* ref : scan.refs) {
    Result<size_t> idx = combined.FindColumn(ref->name, ref->qualifier);
    if (idx.ok()) {
      size_t source = 0;
      while (source < sources.size() &&
             (*idx < sources[source].col_begin ||
              *idx >= sources[source].col_end)) {
        ++source;
      }
      if (source >= 64 || source >= sources.size()) {
        out.opaque = true;
        return out;
      }
      out.mask |= uint64_t{1} << source;
      continue;
    }
    if (idx.status().code() != StatusCode::kNotFound) {
      out.opaque = true;  // ambiguous: the final filter reports the error
      return out;
    }
    // Not in the combined schema: references into the enclosing query's
    // rows are constants for this pipeline; anything else must stay in
    // the final filter so evaluation reports the unknown column there.
    bool found_outer = false;
    for (const EvalContext* c = outer; c != nullptr; c = c->outer) {
      if (c->schema != nullptr &&
          c->schema->HasColumn(ref->name, ref->qualifier)) {
        found_outer = true;
        break;
      }
    }
    if (!found_outer) {
      out.opaque = true;
      return out;
    }
  }
  return out;
}

struct EquiKey {
  const Expr* acc = nullptr;    // side over already-joined sources
  const Expr* right = nullptr;  // side over the incoming source
};

bool TryExtractEqui(const ClassifiedPred& pred, uint64_t present,
                    uint64_t bit_i, const Schema& combined,
                    const std::vector<SourceRel>& sources, const Database& db,
                    const EvalContext* outer, EquiKey* out) {
  if (pred.opaque || pred.expr->kind != ExprKind::kBinary) return false;
  const auto& b = static_cast<const sql::BinaryExpr&>(*pred.expr);
  if (b.op != sql::BinaryOp::kEquals) return false;
  ClassifiedPred left = Classify(*b.left, combined, sources, outer);
  ClassifiedPred right = Classify(*b.right, combined, sources, outer);
  if (left.opaque || right.opaque) return false;
  const Expr* acc_side = nullptr;
  const Expr* right_side = nullptr;
  if (left.mask != 0 && (left.mask & ~present) == 0 && right.mask != 0 &&
      (right.mask & ~bit_i) == 0) {
    acc_side = b.left.get();
    right_side = b.right.get();
  } else if (right.mask != 0 && (right.mask & ~present) == 0 &&
             left.mask != 0 && (left.mask & ~bit_i) == 0) {
    acc_side = b.right.get();
    right_side = b.left.get();
  } else {
    return false;
  }
  EvalContext type_ctx;
  type_ctx.db = &db;
  type_ctx.schema = &combined;
  type_ctx.outer = outer;
  if (!HashCompatible(DeriveExprType(*acc_side, type_ctx),
                      DeriveExprType(*right_side, type_ctx))) {
    return false;
  }
  out->acc = acc_side;
  out->right = right_side;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedFromWhere
// ---------------------------------------------------------------------------

Result<PreparedFromWhere> PreparedFromWhere::Prepare(
    const SelectStatement& stmt, const Database& schema_db,
    const EvalContext* outer) {
  PreparedFromWhere plan;

  std::vector<SourceRel> sources;
  sources.reserve(stmt.from.size() + stmt.joins.size());
  for (const sql::TableRef& ref : stmt.from) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table,
                            schema_db.GetRelation(ref.table_name));
    SourceRel src;
    src.relation = ref.table_name;
    src.schema = table->schema().WithQualifier(ref.effective_alias());
    sources.push_back(std::move(src));
  }
  for (const sql::JoinClause& join : stmt.joins) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table,
                            schema_db.GetRelation(join.table.table_name));
    SourceRel src;
    src.kind = join.kind;
    src.on = join.on.get();
    src.relation = join.table.table_name;
    src.schema = table->schema().WithQualifier(join.table.effective_alias());
    sources.push_back(std::move(src));
  }

  // Predicate-free single-table pipeline — the shape the world-set layer
  // evaluates once per world for repair/choice inputs and simple
  // aggregates — borrows the base table's rows; no per-world copy.
  if (sources.size() == 1 && stmt.where == nullptr && stmt.joins.empty()) {
    plan.passthrough_ = true;
    plan.passthrough_relation_ = std::move(sources[0].relation);
    plan.output_schema_ = std::move(sources[0].schema);
    return plan;
  }

  // The combined all-sources schema exists purely to classify predicates.
  Schema combined;
  for (SourceRel& src : sources) {
    src.col_begin = combined.num_columns();
    combined = Schema::Concat(combined, src.schema);
    src.col_end = combined.num_columns();
  }

  // Classify each WHERE conjunct once against the full schema (the schema
  // the predicate is resolved with), then apply it at the earliest join
  // stage that binds every source it references. Sources beyond the mask
  // width disable pushdown but not correctness (everything stays in the
  // final filter).
  const bool maskable = sources.size() <= 64;
  struct WherePred {
    ClassifiedPred pred;
    bool consumed = false;
  };
  std::vector<WherePred> where_preds;
  if (stmt.where != nullptr) {
    for (const Expr* e : SplitConjuncts(*stmt.where)) {
      WherePred w;
      w.pred = maskable ? Classify(*e, combined, sources, outer)
                        : ClassifiedPred{e, 0, true};
      where_preds.push_back(std::move(w));
    }
  }

  Schema acc_schema;
  uint64_t present = 0;
  plan.stages_.reserve(sources.size());

  for (size_t i = 0; i < sources.size(); ++i) {
    SourceRel& src = sources[i];
    const uint64_t bit_i = maskable ? uint64_t{1} << i : 0;
    const uint64_t with_i = present | bit_i;
    Stage stage;
    stage.left_join = src.kind == sql::JoinKind::kLeftOuter;
    stage.relation = src.relation;
    stage.acc_schema = acc_schema;
    stage.stage_schema = Schema::Concat(acc_schema, src.schema);

    // Predicates deciding matches at this stage: WHERE conjuncts that
    // become fully bound here (inner stages only — a WHERE filter over a
    // LEFT-joined source applies after padding), plus the ON conjuncts.
    std::vector<ClassifiedPred> stage_preds;
    if (!stage.left_join && bit_i != 0) {
      for (WherePred& w : where_preds) {
        if (w.consumed || w.pred.opaque) continue;
        if ((w.pred.mask & bit_i) == 0) continue;
        if ((w.pred.mask & ~with_i) != 0) continue;
        stage_preds.push_back(w.pred);
        w.consumed = true;
      }
    }
    if (src.on != nullptr) {
      for (const Expr* e : SplitConjuncts(*src.on)) {
        stage_preds.push_back(maskable ? Classify(*e, combined, sources, outer)
                                       : ClassifiedPred{e, 0, true});
      }
    }

    // Single-source predicates filter the incoming table's scan; equality
    // conjuncts between the two sides become hash keys; everything else is
    // a residual evaluated per candidate pair.
    for (const ClassifiedPred& p : stage_preds) {
      if (!p.opaque && p.mask != 0 && (p.mask & ~bit_i) == 0) {
        stage.scan_filters.push_back(p.expr);
        continue;
      }
      EquiKey eq;
      if (TryExtractEqui(p, present, bit_i, combined, sources, schema_db,
                         outer, &eq)) {
        stage.acc_keys.push_back(eq.acc);
        stage.right_keys.push_back(eq.right);
        continue;
      }
      stage.residuals.push_back(p.expr);
    }

    stage.schema = std::move(src.schema);
    acc_schema = stage.stage_schema;
    present = with_i;
    plan.stages_.push_back(std::move(stage));
  }

  for (const WherePred& w : where_preds) {
    if (!w.consumed) plan.final_filters_.push_back(w.pred.expr);
  }
  plan.output_schema_ = std::move(acc_schema);
  return plan;
}

Result<PreparedFromWhere::View> PreparedFromWhere::ExecuteView(
    const Database& db, const EvalContext* outer) {
  View view;
  if (passthrough_) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table,
                            db.GetRelation(passthrough_relation_));
    view.schema = &output_schema_;
    view.borrowed = &table->rows();
    return view;
  }

  std::vector<Tuple> acc_rows;
  acc_rows.emplace_back();

  for (const Stage& stage : stages_) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table, db.GetRelation(stage.relation));

    if (acc_rows.empty()) {
      // Nothing to join against (and nothing to pad): skip the stage work.
      continue;
    }

    std::vector<size_t> right_rows;
    right_rows.reserve(table->num_rows());
    for (size_t r = 0; r < table->num_rows(); ++r) {
      if (!stage.scan_filters.empty()) {
        EvalContext ctx{&db, &stage.schema, &table->row(r), outer, nullptr,
                        nullptr};
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(stage.scan_filters, ctx));
        if (!pass) continue;
      }
      right_rows.push_back(r);
    }

    std::vector<Tuple> next_rows;
    auto pad_row = [&stage](const Tuple& left) {
      Tuple padded = left;
      for (size_t c = 0; c < stage.schema.num_columns(); ++c) {
        padded.Append(Value::Null());
      }
      return padded;
    };

    if (stage.acc_keys.empty()) {
      // No usable equi conjunct: nested loop over the (scan-filtered)
      // pair space.
      for (const Tuple& left : acc_rows) {
        bool matched = false;
        for (size_t r : right_rows) {
          Tuple combined_row = Tuple::Concat(left, table->row(r));
          EvalContext ctx{&db, &stage.stage_schema, &combined_row, outer,
                          nullptr, nullptr};
          MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(stage.residuals, ctx));
          if (!pass) continue;
          matched = true;
          next_rows.push_back(std::move(combined_row));
        }
        if (!matched && stage.left_join) next_rows.push_back(pad_row(left));
      }
    } else if (acc_rows.size() <= right_rows.size()) {
      // Build the hash table on the accumulated (smaller) side, probe with
      // the incoming table; matches are buffered per accumulated row so
      // the output keeps the nested-loop order (left-major, right rows in
      // table order).
      JoinIndex index;
      index.reserve(acc_rows.size());
      for (size_t l = 0; l < acc_rows.size(); ++l) {
        EvalContext ctx{&db, &stage.acc_schema, &acc_rows[l], outer, nullptr,
                        nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(stage.acc_keys, ctx));
        if (key.has_value()) index[std::move(*key)].push_back(l);
      }
      std::vector<std::vector<Tuple>> by_left(acc_rows.size());
      for (size_t r : right_rows) {
        const Tuple& right = table->row(r);
        EvalContext ctx{&db, &stage.schema, &right, outer, nullptr, nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(stage.right_keys, ctx));
        if (!key.has_value()) continue;
        auto it = index.find(*key);
        if (it == index.end()) continue;
        for (size_t l : it->second) {
          Tuple combined_row = Tuple::Concat(acc_rows[l], right);
          EvalContext rctx{&db, &stage.stage_schema, &combined_row, outer,
                           nullptr, nullptr};
          MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(stage.residuals, rctx));
          if (pass) by_left[l].push_back(std::move(combined_row));
        }
      }
      for (size_t l = 0; l < acc_rows.size(); ++l) {
        if (by_left[l].empty()) {
          if (stage.left_join) next_rows.push_back(pad_row(acc_rows[l]));
          continue;
        }
        for (Tuple& t : by_left[l]) next_rows.push_back(std::move(t));
      }
    } else {
      // Build on the (smaller) incoming table, stream the accumulated
      // side; output is naturally left-major.
      JoinIndex index;
      index.reserve(right_rows.size());
      for (size_t r : right_rows) {
        EvalContext ctx{&db, &stage.schema, &table->row(r), outer, nullptr,
                        nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(stage.right_keys, ctx));
        if (key.has_value()) index[std::move(*key)].push_back(r);
      }
      for (const Tuple& left : acc_rows) {
        EvalContext lctx{&db, &stage.acc_schema, &left, outer, nullptr,
                         nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(stage.acc_keys, lctx));
        bool matched = false;
        if (key.has_value()) {
          auto it = index.find(*key);
          if (it != index.end()) {
            for (size_t r : it->second) {
              Tuple combined_row = Tuple::Concat(left, table->row(r));
              EvalContext rctx{&db, &stage.stage_schema, &combined_row, outer,
                               nullptr, nullptr};
              MAYBMS_ASSIGN_OR_RETURN(bool pass,
                                      PassesAll(stage.residuals, rctx));
              if (!pass) continue;
              matched = true;
              next_rows.push_back(std::move(combined_row));
            }
          }
        }
        if (!matched && stage.left_join) next_rows.push_back(pad_row(left));
      }
    }

    acc_rows = std::move(next_rows);
  }

  // Final filter: conjuncts no join stage consumed (subquery predicates,
  // filters over LEFT-joined columns, outer-only or unresolvable
  // references). Subqueries evaluate through the decorrelation cache:
  // plans shared across executions, results scoped to this one.
  if (!final_filters_.empty()) {
    SubqueryCache cache(&final_plans_);
    std::vector<Tuple> filtered;
    filtered.reserve(acc_rows.size());
    for (Tuple& row : acc_rows) {
      EvalContext ctx{&db, &output_schema_, &row, outer, nullptr, &cache};
      MAYBMS_ASSIGN_OR_RETURN(bool keep, PassesAll(final_filters_, ctx));
      if (keep) filtered.push_back(std::move(row));
    }
    acc_rows = std::move(filtered);
  }

  view.owned_rows = std::move(acc_rows);
  view.schema = &output_schema_;
  return view;
}

Result<Table> PreparedFromWhere::Execute(const Database& db,
                                         const EvalContext* outer) {
  MAYBMS_ASSIGN_OR_RETURN(View view, ExecuteView(db, outer));
  if (view.borrowed != nullptr) return Table(output_schema_, *view.borrowed);
  return Table(output_schema_, std::move(view.owned_rows));
}

// ---------------------------------------------------------------------------
// Select-item resolution and static output typing
// ---------------------------------------------------------------------------

Result<std::vector<OutputItem>> ResolveItems(const SelectStatement& stmt,
                                             const Schema& source) {
  std::vector<OutputItem> items;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      bool any = false;
      for (size_t i = 0; i < source.num_columns(); ++i) {
        const Column& col = source.column(i);
        if (!item.star_qualifier.empty() &&
            !AsciiEqualsIgnoreCase(col.qualifier, item.star_qualifier)) {
          continue;
        }
        OutputItem out;
        out.source_column = i;
        out.name = col.name;
        items.push_back(std::move(out));
        any = true;
      }
      if (!any) {
        return Status::InvalidArgument(
            item.star_qualifier.empty()
                ? "SELECT * with no FROM relation"
                : "unknown table alias: " + item.star_qualifier + ".*");
      }
      continue;
    }
    OutputItem out;
    out.expr = item.expr.get();
    if (!item.alias.empty()) {
      out.name = item.alias;
    } else if (item.expr->kind == sql::ExprKind::kColumnRef) {
      out.name = static_cast<const sql::ColumnRefExpr&>(*item.expr).name;
    } else if (item.expr->kind == sql::ExprKind::kFunctionCall) {
      out.name = static_cast<const sql::FunctionCallExpr&>(*item.expr).name;
    } else {
      out.name = "column" + std::to_string(items.size() + 1);
    }
    items.push_back(std::move(out));
  }
  return items;
}

Schema InferOutputSchema(const std::vector<OutputItem>& items,
                         const Schema& source, const Database& db,
                         const EvalContext* outer) {
  EvalContext type_ctx;
  type_ctx.db = &db;
  type_ctx.schema = &source;
  type_ctx.outer = outer;
  Schema schema;
  for (const OutputItem& item : items) {
    DataType type = DataType::kText;
    if (item.expr == nullptr) {
      type = source.column(item.source_column).type;
    } else if (std::optional<DataType> derived =
                   DeriveExprType(*item.expr, type_ctx)) {
      type = *derived;
    }
    schema.AddColumn(Column(item.name, type));
  }
  return schema;
}

// ---------------------------------------------------------------------------
// PreparedSelect
// ---------------------------------------------------------------------------

Result<PreparedSelect::Branch> PreparedSelect::PrepareBranch(
    const SelectStatement& stmt, const Database& schema_db,
    const EvalContext* outer) {
  Branch branch;
  branch.stmt = &stmt;
  MAYBMS_ASSIGN_OR_RETURN(branch.from_where,
                          PreparedFromWhere::Prepare(stmt, schema_db, outer));
  const Schema& source = branch.from_where.output_schema();
  MAYBMS_ASSIGN_OR_RETURN(branch.items, ResolveItems(stmt, source));

  branch.grouped = !stmt.group_by.empty() || StatementHasAggregates(stmt);
  if (branch.grouped) {
    for (const OutputItem& item : branch.items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
    }
  }

  branch.out_schema = InferOutputSchema(branch.items, source, schema_db, outer);

  for (const sql::OrderItem& item : stmt.order_by) {
    OrderKeyPlan key;
    key.descending = item.descending;
    key.expr = item.expr.get();
    // ORDER BY <ordinal> names an output column (SQL-92 style). Range
    // violations are recorded but — matching unprepared evaluation, which
    // only inspected keys when sorting actual rows — reported at execution
    // time, and only when the result is non-empty.
    if (item.expr->kind == sql::ExprKind::kLiteral) {
      const Value& lit = static_cast<const sql::LiteralExpr&>(*item.expr).value;
      if (lit.type() == DataType::kInteger) {
        int64_t ordinal = lit.AsInteger();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(branch.out_schema.num_columns())) {
          key.kind = OrderKeyPlan::Kind::kOrdinal;
          key.bad_ordinal = ordinal;
        } else {
          key.kind = OrderKeyPlan::Kind::kOrdinal;
          key.index = static_cast<size_t>(ordinal - 1);
        }
        branch.order_keys.push_back(std::move(key));
        continue;
      }
    }
    if (item.expr->kind == sql::ExprKind::kColumnRef) {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      if (ref.qualifier.empty() && branch.out_schema.HasColumn(ref.name)) {
        MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                                branch.out_schema.FindColumn(ref.name));
        key.kind = OrderKeyPlan::Kind::kOutputColumn;
        key.index = idx;
        branch.order_keys.push_back(std::move(key));
        continue;
      }
    }
    key.kind = OrderKeyPlan::Kind::kExpr;
    branch.order_keys.push_back(std::move(key));
  }
  return branch;
}

Result<PreparedSelect> PreparedSelect::Prepare(const SelectStatement& stmt,
                                               const Database& schema_db,
                                               const EvalContext* outer) {
  if (HasWorldOps(stmt)) {
    return Status::Unsupported(
        "world-set operations (possible/certain/conf, repair by key, choice "
        "of, assert, group worlds by) cannot run inside the per-world "
        "executor");
  }
  PreparedSelect plan;
  for (const SelectStatement* link = &stmt; link != nullptr;
       link = link->union_next.get()) {
    MAYBMS_ASSIGN_OR_RETURN(Branch branch,
                            PrepareBranch(*link, schema_db, outer));
    if (!plan.branches_.empty() &&
        branch.out_schema.num_columns() !=
            plan.branches_.front().out_schema.num_columns()) {
      return Status::InvalidArgument(
          "set operation operands differ in column count: " +
          std::to_string(plan.branches_.front().out_schema.num_columns()) +
          " vs " + std::to_string(branch.out_schema.num_columns()));
    }
    plan.branches_.push_back(std::move(branch));
  }
  return plan;
}

Result<Table> PreparedSelect::ExecuteBranch(Branch& branch, const Database& db,
                                            const EvalContext* outer) {
  const SelectStatement& stmt = *branch.stmt;
  MAYBMS_ASSIGN_OR_RETURN(PreparedFromWhere::View view,
                          branch.from_where.ExecuteView(db, outer));
  const Schema& source = *view.schema;
  const std::vector<Tuple>& source_rows = view.rows();

  // One subquery result cache per execution; plans are shared via the
  // branch's SubqueryPlanCache across all executions of this statement.
  SubqueryCache subquery_cache(&branch.plans);

  // Representative source rows are only kept when an ORDER BY key must be
  // evaluated against them.
  bool needs_repr = false;
  for (const OrderKeyPlan& key : branch.order_keys) {
    needs_repr |= key.kind == OrderKeyPlan::Kind::kExpr;
  }

  std::vector<Tuple> out_rows;
  std::vector<Tuple> representative;

  auto emit_group = [&](const std::vector<Tuple>* rows) -> Status {
    const Tuple* first = rows->empty() ? nullptr : &(*rows)[0];
    EvalContext ctx{&db, rows->empty() ? nullptr : &source, first, outer,
                    rows, &subquery_cache};
    if (stmt.having) {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*stmt.having, ctx));
      if (keep != Trivalent::kTrue) return Status::OK();
    }
    Tuple out;
    for (const OutputItem& item : branch.items) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
      out.Append(std::move(v));
    }
    out_rows.push_back(std::move(out));
    if (needs_repr) representative.push_back(first ? *first : Tuple());
    return Status::OK();
  };

  if (branch.grouped) {
    if (stmt.group_by.empty()) {
      // One global group (maybe empty): aggregate directly over the
      // source rows, no copy.
      MAYBMS_RETURN_NOT_OK(emit_group(&source_rows));
    } else {
      // Partition rows into groups by the GROUP BY key.
      std::map<Tuple, std::vector<Tuple>> groups;
      for (const Tuple& row : source_rows) {
        EvalContext ctx{&db, &source, &row, outer, nullptr, &subquery_cache};
        Tuple key;
        for (const auto& g : stmt.group_by) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
          key.Append(std::move(v));
        }
        groups[std::move(key)].push_back(row);
      }
      for (auto& [key, rows] : groups) {
        MAYBMS_RETURN_NOT_OK(emit_group(&rows));
      }
    }
  } else {
    out_rows.reserve(source_rows.size());
    for (const Tuple& row : source_rows) {
      EvalContext ctx{&db, &source, &row, outer, nullptr, &subquery_cache};
      Tuple out;
      for (const OutputItem& item : branch.items) {
        if (item.expr == nullptr) {
          out.Append(row.value(item.source_column));
        } else {
          MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
          out.Append(std::move(v));
        }
      }
      out_rows.push_back(std::move(out));
      if (needs_repr) representative.push_back(row);
    }
  }

  // DISTINCT before ORDER BY (standard SQL evaluation order).
  if (stmt.distinct) {
    std::vector<size_t> order(out_rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      int c = out_rows[a].Compare(out_rows[b]);
      if (c != 0) return c < 0;
      // Among duplicate output rows, keep the smallest representative
      // source row: an ORDER BY expression key evaluated against the
      // survivor is then a function of the answer bag, not of scan
      // order (part of the docs/isql.md determinism guarantee).
      return needs_repr && representative[a] < representative[b];
    });
    std::vector<Tuple> kept_rows;
    std::vector<Tuple> kept_repr;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0 && out_rows[order[i]] == out_rows[order[i - 1]]) continue;
      kept_rows.push_back(out_rows[order[i]]);
      if (needs_repr) kept_repr.push_back(representative[order[i]]);
    }
    out_rows = std::move(kept_rows);
    representative = std::move(kept_repr);
  }

  if (!branch.order_keys.empty() && !out_rows.empty()) {
    std::vector<std::vector<Value>> keys(out_rows.size());
    for (size_t i = 0; i < out_rows.size(); ++i) {
      for (const OrderKeyPlan& key_plan : branch.order_keys) {
        Value key;
        switch (key_plan.kind) {
          case OrderKeyPlan::Kind::kOrdinal:
            if (key_plan.bad_ordinal.has_value()) {
              return Status::InvalidArgument(
                  "ORDER BY position " + std::to_string(*key_plan.bad_ordinal) +
                  " is out of range");
            }
            key = out_rows[i].value(key_plan.index);
            break;
          case OrderKeyPlan::Kind::kOutputColumn:
            key = out_rows[i].value(key_plan.index);
            break;
          case OrderKeyPlan::Kind::kExpr: {
            EvalContext ctx{&db, &source, &representative[i], outer, nullptr,
                            &subquery_cache};
            MAYBMS_ASSIGN_OR_RETURN(key, EvalExpr(*key_plan.expr, ctx));
            break;
          }
        }
        keys[i].push_back(std::move(key));
      }
    }
    std::vector<size_t> order(out_rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < branch.order_keys.size(); ++k) {
        int c = keys[a][k].TotalOrderCompare(keys[b][k]);
        if (c != 0) return branch.order_keys[k].descending ? c > 0 : c < 0;
      }
      // Deterministic tie-break (docs/isql.md): rows with equal ORDER BY
      // keys are ordered by the full output row under the value total
      // order, so the sorted sequence — and any LIMIT prefix — depends
      // only on the answer bag, never on scan or engine order.
      return out_rows[a].Compare(out_rows[b]) < 0;
    });
    std::vector<Tuple> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : order) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }

  if (stmt.limit.has_value() &&
      out_rows.size() > static_cast<size_t>(*stmt.limit)) {
    out_rows.resize(static_cast<size_t>(std::max<int64_t>(0, *stmt.limit)));
  }

  return Table(branch.out_schema, std::move(out_rows));
}

Result<Table> PreparedSelect::Execute(const Database& db,
                                      const EvalContext* outer) {
  MAYBMS_ASSIGN_OR_RETURN(Table acc, ExecuteBranch(branches_[0], db, outer));
  for (size_t b = 1; b < branches_.size(); ++b) {
    sql::SetOpKind op = branches_[b - 1].stmt->set_op;
    MAYBMS_ASSIGN_OR_RETURN(Table rhs, ExecuteBranch(branches_[b], db, outer));
    switch (op) {
      case sql::SetOpKind::kUnionAll:
        for (const Tuple& row : rhs.rows()) acc.AppendUnchecked(row);
        break;
      case sql::SetOpKind::kUnion:
        for (const Tuple& row : rhs.rows()) acc.AppendUnchecked(row);
        acc.DeduplicateRows();
        break;
      case sql::SetOpKind::kIntersect: {
        Table rhs_distinct = rhs.SortedDistinct();
        Table lhs_distinct = acc.SortedDistinct();
        Table kept(acc.schema());
        for (const Tuple& row : lhs_distinct.rows()) {
          if (rhs_distinct.ContainsTuple(row)) kept.AppendUnchecked(row);
        }
        acc = std::move(kept);
        break;
      }
      case sql::SetOpKind::kExcept: {
        Table rhs_distinct = rhs.SortedDistinct();
        Table lhs_distinct = acc.SortedDistinct();
        Table kept(acc.schema());
        for (const Tuple& row : lhs_distinct.rows()) {
          if (!rhs_distinct.ContainsTuple(row)) kept.AppendUnchecked(row);
        }
        acc = std::move(kept);
        break;
      }
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// PreparedProjection
// ---------------------------------------------------------------------------

Result<PreparedProjection> PreparedProjection::Prepare(
    const SelectStatement& stmt, const Database& schema_db,
    const Schema& source) {
  PreparedProjection plan;
  plan.stmt_ = &stmt;
  plan.source_ = source;
  MAYBMS_ASSIGN_OR_RETURN(plan.items_, ResolveItems(stmt, plan.source_));
  for (const OutputItem& item : plan.items_) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      return Status::Unsupported(
          "aggregates cannot be combined with repair by key / choice of");
    }
  }
  plan.out_schema_ =
      InferOutputSchema(plan.items_, plan.source_, schema_db, nullptr);
  return plan;
}

Result<Table> PreparedProjection::Execute(const Database& db,
                                          const std::vector<Tuple>& rows) {
  SubqueryCache subquery_cache(&plans_);
  std::vector<Tuple> out_rows;
  out_rows.reserve(rows.size());
  for (const Tuple& row : rows) {
    EvalContext ctx{&db, &source_, &row, nullptr, nullptr, &subquery_cache};
    Tuple out;
    for (const OutputItem& item : items_) {
      if (item.expr == nullptr) {
        out.Append(row.value(item.source_column));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        out.Append(std::move(v));
      }
    }
    out_rows.push_back(std::move(out));
  }
  return Table(out_schema_, std::move(out_rows));
}

}  // namespace maybms::engine
