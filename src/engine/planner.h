#ifndef MAYBMS_ENGINE_PLANNER_H_
#define MAYBMS_ENGINE_PLANNER_H_

// Planning primitives shared by the prepared-statement layer
// (engine/prepared.h) and the subquery decorrelator (this file's
// implementation): conjunct splitting, hash-join key helpers, and the
// two-level subquery cache.
//
// Ownership and invariants:
//  * A SubqueryPlanCache holds *schema-only* analysis per subquery AST
//    node — constant-vs-decorrelated classification, extracted equi-key
//    expressions, residual conjuncts, and a pre-built materialization
//    shell. Plans never capture world data, so one plan cache may be
//    shared across every world of a world-set (all worlds share one
//    schema catalog). It must NOT be shared across statements, across
//    scopes whose probe-row schema differs, or across databases with
//    different relation schemas.
//  * A SubqueryCache holds the *results* of one evaluation scope — one
//    world's materialized subquery rows, hash semi-join index, and
//    constant values. It references a plan cache (a shared one, or a
//    private one it owns) and must never outlive its scope: within a
//    scope the database and every enclosing (`outer`) row are fixed.
//
// Trivalent-logic / NULL-key rules: decorrelated evaluation preserves the
// per-row definition exactly. Hash keys are only extracted for statically
// type-compatible equality conjuncts; NULL and NaN key values never enter
// or match a hash index (SqlEquals can never return kTrue for them), and
// every remaining correlated conjunct is re-evaluated per candidate with
// full three-valued semantics.

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "engine/expr_eval.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "types/tuple.h"

namespace maybms::engine {

/// Splits `pred` into its top-level AND conjuncts, left to right
/// (borrowed pointers into the statement's AST).
std::vector<const sql::Expr*> SplitConjuncts(const sql::Expr& pred);

/// Hash index from join-key tuple to row positions; shared between the
/// prepared FROM/WHERE pipeline and subquery decorrelation.
using JoinIndex = std::unordered_map<Tuple, std::vector<size_t>, TupleHash>;

/// True if the two derived key types can be matched by Value's total-order
/// hash/equality exactly where SqlEquals would return kTrue. Mismatched
/// categories (where SqlEquals errors) disqualify a conjunct from hashing
/// so the error still surfaces from residual evaluation.
bool HashCompatible(std::optional<DataType> a, std::optional<DataType> b);

/// Evaluates join-key expressions over one row. Returns nullopt when any
/// key value is NULL or NaN: neither can ever compare kTrue under
/// SqlEquals, but both would unify under hash equality.
Result<std::optional<Tuple>> EvalJoinKey(
    const std::vector<const sql::Expr*>& keys, const EvalContext& ctx);

/// True when every predicate evaluates to kTrue (kFalse/kUnknown reject).
Result<bool> PassesAll(const std::vector<const sql::Expr*>& preds,
                       const EvalContext& ctx);

/// Schema-level subquery plans, keyed by AST node identity. Built lazily
/// on the first evaluation of each subquery node; shareable across all
/// worlds of a world-set (see the file comment for the exact rules).
class SubqueryPlanCache {
 public:
  SubqueryPlanCache();
  ~SubqueryPlanCache();
  SubqueryPlanCache(const SubqueryPlanCache&) = delete;
  SubqueryPlanCache& operator=(const SubqueryPlanCache&) = delete;
  SubqueryPlanCache(SubqueryPlanCache&&) noexcept;
  SubqueryPlanCache& operator=(SubqueryPlanCache&&) noexcept;

  struct Plan;

 private:
  friend Result<std::optional<Value>> EvalSubqueryViaCache(
      const sql::Expr& expr, const EvalContext& ctx);

  std::unordered_map<const sql::Expr*, std::unique_ptr<Plan>> plans_;
};

/// Per-scope cache of subquery evaluation *results*, keyed by AST node
/// identity. One cache covers one evaluation scope (a FROM/WHERE pipeline,
/// a select list, one DML statement — all against one fixed database):
/// within a scope a subquery's plan either evaluates a single time (no
/// correlation with the scope's varying row) or decorrelates into a hash
/// semi-join probed per row. A cache must never outlive its scope.
///
/// The default constructor owns a private plan cache (single-shot scopes);
/// the pointer constructor borrows a shared one so the per-statement
/// analysis is amortized across worlds while results stay per world.
class SubqueryCache {
 public:
  SubqueryCache();
  explicit SubqueryCache(SubqueryPlanCache* shared_plans);
  ~SubqueryCache();
  SubqueryCache(const SubqueryCache&) = delete;
  SubqueryCache& operator=(const SubqueryCache&) = delete;

  struct Entry;

 private:
  friend Result<std::optional<Value>> EvalSubqueryViaCache(
      const sql::Expr& expr, const EvalContext& ctx);

  SubqueryPlanCache owned_plans_;   // used when no shared cache is given
  SubqueryPlanCache* plans_;        // &owned_plans_ or the shared cache
  std::unordered_map<const sql::Expr*, std::unique_ptr<Entry>> entries_;
};

/// Evaluates a kExists / kInSubquery / kScalarSubquery node through
/// `ctx.cache`. Returns an engaged Value when the cached plan applies;
/// nullopt when the node is not amenable (the caller falls back to
/// per-row subquery execution). Requires ctx.cache != nullptr.
Result<std::optional<Value>> EvalSubqueryViaCache(const sql::Expr& expr,
                                                  const EvalContext& ctx);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_PLANNER_H_
