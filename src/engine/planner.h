#ifndef MAYBMS_ENGINE_PLANNER_H_
#define MAYBMS_ENGINE_PLANNER_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "engine/expr_eval.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace maybms::engine {

/// Splits `pred` into its top-level AND conjuncts, left to right
/// (borrowed pointers into the statement's AST).
std::vector<const sql::Expr*> SplitConjuncts(const sql::Expr& pred);

/// Per-query cache of subquery evaluation plans, keyed by AST node
/// identity. One cache covers one evaluation scope (a FROM/WHERE pipeline,
/// a select list, one DML statement): within a scope the database and
/// every enclosing (`outer`) row are fixed, so a subquery can be analyzed
/// once and either evaluated a single time (no correlation with the
/// scope's varying row) or decorrelated into a hash semi-join probed per
/// row. A cache must never outlive its scope.
///
/// Entries are built lazily by EvalSubqueryViaCache on the first
/// evaluation of each subquery node, so a query whose predicate never
/// reaches a subquery pays nothing.
class SubqueryCache {
 public:
  SubqueryCache();
  ~SubqueryCache();
  SubqueryCache(const SubqueryCache&) = delete;
  SubqueryCache& operator=(const SubqueryCache&) = delete;

  struct Entry;

 private:
  friend Result<std::optional<Value>> EvalSubqueryViaCache(
      const sql::Expr& expr, const EvalContext& ctx);

  std::unordered_map<const sql::Expr*, std::unique_ptr<Entry>> entries_;
};

/// Evaluates a kExists / kInSubquery / kScalarSubquery node through
/// `ctx.cache`. Returns an engaged Value when the cached plan applies;
/// nullopt when the node is not amenable (the caller falls back to
/// per-row subquery execution). Requires ctx.cache != nullptr.
Result<std::optional<Value>> EvalSubqueryViaCache(const sql::Expr& expr,
                                                  const EvalContext& ctx);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_PLANNER_H_
