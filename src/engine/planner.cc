// Physical planning for the per-world executor: hash equi-joins over the
// FROM/WHERE pipeline and one-shot decorrelation of EXISTS/IN/scalar
// subqueries. The planner only restructures *evaluation order*; every
// predicate is still decided by EvalPredicate/SqlEquals over candidate
// rows, so trivalent semantics (NULL join keys, UNKNOWN residuals,
// LEFT-join padding) are inherited from the nested-loop definition rather
// than re-implemented.
//
// What is deliberately NOT preserved is *which* predicate evaluations
// happen: pushdown evaluates single-source conjuncts on rows the naive
// pipeline might never reach, hash probing skips pairs whose equi-key
// cannot match, and decorrelated subqueries stop as soon as the answer is
// decided. A predicate whose evaluation errors (division by zero, type
// mismatch) can therefore error here where naive evaluation would not, or
// vice versa — standard SQL latitude, and identical across both engine
// backends since they share this code.

#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "engine/type_deriver.h"
#include "types/tuple.h"

namespace maybms::engine {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

void SplitConjunctsInto(const Expr& pred, std::vector<const Expr*>* out) {
  if (pred.kind == ExprKind::kBinary) {
    const auto& b = static_cast<const sql::BinaryExpr&>(pred);
    if (b.op == sql::BinaryOp::kAnd) {
      SplitConjunctsInto(*b.left, out);
      SplitConjunctsInto(*b.right, out);
      return;
    }
  }
  out->push_back(&pred);
}

// ---------------------------------------------------------------------------
// Reference analysis
// ---------------------------------------------------------------------------

/// What an expression references. Column refs inside nested subqueries are
/// not collected (their resolution is scoped to the subquery); the
/// presence of a subquery is reported instead.
struct RefScan {
  std::vector<const sql::ColumnRefExpr*> refs;
  bool has_subquery = false;
  bool has_aggregate = false;
};

void ScanRefsInto(const Expr& expr, RefScan* out) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      out->refs.push_back(static_cast<const sql::ColumnRefExpr*>(&expr));
      return;
    case ExprKind::kFunctionCall:
      if (IsAggregateFunction(
              static_cast<const sql::FunctionCallExpr&>(expr).name)) {
        out->has_aggregate = true;
      }
      break;
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
      out->has_subquery = true;
      break;
    default:
      break;
  }
  ForEachChildExpr(expr,
                   [out](const Expr& child) { ScanRefsInto(child, out); });
}

// ---------------------------------------------------------------------------
// FROM/WHERE pipeline
// ---------------------------------------------------------------------------

/// One FROM item or JOIN clause with its alias-qualified schema and column
/// range inside the combined (all-sources) schema.
struct SourceRel {
  sql::JoinKind kind = sql::JoinKind::kInner;
  const Expr* on = nullptr;  // JOIN ... ON predicate; null for comma items
  const Table* table = nullptr;
  Schema schema;
  size_t col_begin = 0;
  size_t col_end = 0;
};

/// A predicate with the set of sources it references. `opaque` predicates
/// (subqueries, aggregates, ambiguous or unresolvable references) are
/// never moved: they evaluate exactly where the nested-loop pipeline
/// would have evaluated them.
struct ClassifiedPred {
  const Expr* expr = nullptr;
  uint64_t mask = 0;
  bool opaque = false;
};

ClassifiedPred Classify(const Expr& expr, const Schema& combined,
                        const std::vector<SourceRel>& sources,
                        const EvalContext* outer) {
  ClassifiedPred out;
  out.expr = &expr;
  RefScan scan;
  ScanRefsInto(expr, &scan);
  if (scan.has_subquery || scan.has_aggregate) {
    out.opaque = true;
    return out;
  }
  for (const sql::ColumnRefExpr* ref : scan.refs) {
    Result<size_t> idx = combined.FindColumn(ref->name, ref->qualifier);
    if (idx.ok()) {
      size_t source = 0;
      while (source < sources.size() &&
             (*idx < sources[source].col_begin ||
              *idx >= sources[source].col_end)) {
        ++source;
      }
      if (source >= 64 || source >= sources.size()) {
        out.opaque = true;
        return out;
      }
      out.mask |= uint64_t{1} << source;
      continue;
    }
    if (idx.status().code() != StatusCode::kNotFound) {
      out.opaque = true;  // ambiguous: the final filter reports the error
      return out;
    }
    // Not in the combined schema: references into the enclosing query's
    // rows are constants for this pipeline; anything else must stay in
    // the final filter so evaluation reports the unknown column there.
    bool found_outer = false;
    for (const EvalContext* c = outer; c != nullptr; c = c->outer) {
      if (c->schema != nullptr &&
          c->schema->HasColumn(ref->name, ref->qualifier)) {
        found_outer = true;
        break;
      }
    }
    if (!found_outer) {
      out.opaque = true;
      return out;
    }
  }
  return out;
}

/// True if the two derived key types can be matched by Value's total-order
/// hash/equality exactly where SqlEquals would return kTrue. Mismatched
/// categories (where SqlEquals errors) disqualify a conjunct from hashing
/// so the error still surfaces from residual evaluation.
bool HashCompatible(std::optional<DataType> a, std::optional<DataType> b) {
  if (!a.has_value() || !b.has_value()) return false;
  if (*a == *b) return true;
  auto numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kReal;
  };
  return numeric(*a) && numeric(*b);
}

struct EquiKey {
  const Expr* acc = nullptr;    // side over already-joined sources
  const Expr* right = nullptr;  // side over the incoming source
};

bool TryExtractEqui(const ClassifiedPred& pred, uint64_t present,
                    uint64_t bit_i, const Schema& combined,
                    const std::vector<SourceRel>& sources, const Database& db,
                    const EvalContext* outer, EquiKey* out) {
  if (pred.opaque || pred.expr->kind != ExprKind::kBinary) return false;
  const auto& b = static_cast<const sql::BinaryExpr&>(*pred.expr);
  if (b.op != sql::BinaryOp::kEquals) return false;
  ClassifiedPred left = Classify(*b.left, combined, sources, outer);
  ClassifiedPred right = Classify(*b.right, combined, sources, outer);
  if (left.opaque || right.opaque) return false;
  const Expr* acc_side = nullptr;
  const Expr* right_side = nullptr;
  if (left.mask != 0 && (left.mask & ~present) == 0 && right.mask != 0 &&
      (right.mask & ~bit_i) == 0) {
    acc_side = b.left.get();
    right_side = b.right.get();
  } else if (right.mask != 0 && (right.mask & ~present) == 0 &&
             left.mask != 0 && (left.mask & ~bit_i) == 0) {
    acc_side = b.right.get();
    right_side = b.left.get();
  } else {
    return false;
  }
  EvalContext type_ctx;
  type_ctx.db = &db;
  type_ctx.schema = &combined;
  type_ctx.outer = outer;
  if (!HashCompatible(DeriveExprType(*acc_side, type_ctx),
                      DeriveExprType(*right_side, type_ctx))) {
    return false;
  }
  out->acc = acc_side;
  out->right = right_side;
  return true;
}

Result<bool> PassesAll(const std::vector<const Expr*>& preds,
                       const EvalContext& ctx) {
  for (const Expr* p : preds) {
    MAYBMS_ASSIGN_OR_RETURN(Trivalent t, EvalPredicate(*p, ctx));
    if (t != Trivalent::kTrue) return false;
  }
  return true;
}

/// Evaluates join-key expressions over one row. Returns nullopt when any
/// key value is NULL or NaN: neither can ever compare kTrue under
/// SqlEquals, but both would unify under hash equality.
Result<std::optional<Tuple>> EvalJoinKey(const std::vector<const Expr*>& keys,
                                         const EvalContext& ctx) {
  Tuple key;
  for (const Expr* e : keys) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
    if (v.is_null()) return std::optional<Tuple>();
    if (v.type() == DataType::kReal && std::isnan(v.AsReal())) {
      return std::optional<Tuple>();
    }
    key.Append(std::move(v));
  }
  return std::optional<Tuple>(std::move(key));
}

using JoinIndex = std::unordered_map<Tuple, std::vector<size_t>, TupleHash>;

}  // namespace

std::vector<const Expr*> SplitConjuncts(const Expr& pred) {
  std::vector<const Expr*> out;
  SplitConjunctsInto(pred, &out);
  return out;
}

Result<Table> ExecuteFromWhere(const SelectStatement& stmt, const Database& db,
                               const EvalContext* outer) {
  std::vector<SourceRel> sources;
  sources.reserve(stmt.from.size() + stmt.joins.size());
  for (const sql::TableRef& ref : stmt.from) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table, db.GetRelation(ref.table_name));
    SourceRel src;
    src.table = table;
    src.schema = table->schema().WithQualifier(ref.effective_alias());
    sources.push_back(std::move(src));
  }
  for (const sql::JoinClause& join : stmt.joins) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table,
                            db.GetRelation(join.table.table_name));
    SourceRel src;
    src.kind = join.kind;
    src.on = join.on.get();
    src.table = table;
    src.schema = table->schema().WithQualifier(join.table.effective_alias());
    sources.push_back(std::move(src));
  }
  // Predicate-free single-table pipeline — the shape the world-set layer
  // evaluates once per world for repair/choice inputs and simple
  // aggregates — is a plain qualified copy.
  if (sources.size() == 1 && stmt.where == nullptr && stmt.joins.empty()) {
    return Table(std::move(sources[0].schema), sources[0].table->rows());
  }

  // The combined all-sources schema exists purely to classify predicates;
  // predicate-free pipelines (the per-world repair/choice hot path) skip
  // building it.
  Schema combined;
  if (stmt.where != nullptr || !stmt.joins.empty()) {
    for (SourceRel& src : sources) {
      src.col_begin = combined.num_columns();
      combined = Schema::Concat(combined, src.schema);
      src.col_end = combined.num_columns();
    }
  }

  // Classify each WHERE conjunct once against the full schema (the schema
  // the predicate is resolved with), then apply it at the earliest join
  // stage that binds every source it references. Sources beyond the mask
  // width disable pushdown but not correctness (everything stays in the
  // final filter).
  const bool maskable = sources.size() <= 64;
  struct WherePred {
    ClassifiedPred pred;
    bool consumed = false;
  };
  std::vector<WherePred> where_preds;
  if (stmt.where != nullptr) {
    for (const Expr* e : SplitConjuncts(*stmt.where)) {
      WherePred w;
      w.pred = maskable ? Classify(*e, combined, sources, outer)
                        : ClassifiedPred{e, 0, true};
      where_preds.push_back(std::move(w));
    }
  }

  Schema acc_schema;
  std::vector<Tuple> acc_rows;
  acc_rows.emplace_back();
  uint64_t present = 0;

  for (size_t i = 0; i < sources.size(); ++i) {
    const SourceRel& src = sources[i];
    const uint64_t bit_i = maskable ? uint64_t{1} << i : 0;
    const uint64_t with_i = present | bit_i;
    const bool left_join = src.kind == sql::JoinKind::kLeftOuter;
    Schema stage_schema = Schema::Concat(acc_schema, src.schema);

    // Predicates deciding matches at this stage: WHERE conjuncts that
    // become fully bound here (inner stages only — a WHERE filter over a
    // LEFT-joined source applies after padding), plus the ON conjuncts.
    std::vector<ClassifiedPred> stage;
    if (!left_join && bit_i != 0) {
      for (WherePred& w : where_preds) {
        if (w.consumed || w.pred.opaque) continue;
        if ((w.pred.mask & bit_i) == 0) continue;
        if ((w.pred.mask & ~with_i) != 0) continue;
        stage.push_back(w.pred);
        w.consumed = true;
      }
    }
    if (src.on != nullptr) {
      for (const Expr* e : SplitConjuncts(*src.on)) {
        stage.push_back(maskable ? Classify(*e, combined, sources, outer)
                                 : ClassifiedPred{e, 0, true});
      }
    }

    // Single-source predicates filter the incoming table's scan; equality
    // conjuncts between the two sides become hash keys; everything else is
    // a residual evaluated per candidate pair.
    std::vector<const Expr*> scan_filters;
    std::vector<const Expr*> acc_keys;
    std::vector<const Expr*> right_keys;
    std::vector<const Expr*> residuals;
    for (const ClassifiedPred& p : stage) {
      if (!p.opaque && p.mask != 0 && (p.mask & ~bit_i) == 0) {
        scan_filters.push_back(p.expr);
        continue;
      }
      EquiKey eq;
      if (TryExtractEqui(p, present, bit_i, combined, sources, db, outer,
                         &eq)) {
        acc_keys.push_back(eq.acc);
        right_keys.push_back(eq.right);
        continue;
      }
      residuals.push_back(p.expr);
    }

    if (acc_rows.empty()) {
      // Nothing to join against (and nothing to pad): skip the stage work.
      acc_schema = std::move(stage_schema);
      present = with_i;
      continue;
    }

    std::vector<size_t> right_rows;
    right_rows.reserve(src.table->num_rows());
    for (size_t r = 0; r < src.table->num_rows(); ++r) {
      if (!scan_filters.empty()) {
        EvalContext ctx{&db, &src.schema, &src.table->row(r), outer, nullptr,
                        nullptr};
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(scan_filters, ctx));
        if (!pass) continue;
      }
      right_rows.push_back(r);
    }

    std::vector<Tuple> next_rows;
    auto pad_row = [&src](const Tuple& left) {
      Tuple padded = left;
      for (size_t c = 0; c < src.schema.num_columns(); ++c) {
        padded.Append(Value::Null());
      }
      return padded;
    };

    if (acc_keys.empty()) {
      // No usable equi conjunct: nested loop over the (scan-filtered)
      // pair space.
      for (const Tuple& left : acc_rows) {
        bool matched = false;
        for (size_t r : right_rows) {
          Tuple combined_row = Tuple::Concat(left, src.table->row(r));
          EvalContext ctx{&db, &stage_schema, &combined_row, outer, nullptr,
                          nullptr};
          MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(residuals, ctx));
          if (!pass) continue;
          matched = true;
          next_rows.push_back(std::move(combined_row));
        }
        if (!matched && left_join) next_rows.push_back(pad_row(left));
      }
    } else if (acc_rows.size() <= right_rows.size()) {
      // Build the hash table on the accumulated (smaller) side, probe with
      // the incoming table; matches are buffered per accumulated row so
      // the output keeps the nested-loop order (left-major, right rows in
      // table order).
      JoinIndex index;
      index.reserve(acc_rows.size());
      for (size_t l = 0; l < acc_rows.size(); ++l) {
        EvalContext ctx{&db, &acc_schema, &acc_rows[l], outer, nullptr,
                        nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(acc_keys, ctx));
        if (key.has_value()) index[std::move(*key)].push_back(l);
      }
      std::vector<std::vector<Tuple>> by_left(acc_rows.size());
      for (size_t r : right_rows) {
        const Tuple& right = src.table->row(r);
        EvalContext ctx{&db, &src.schema, &right, outer, nullptr, nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(right_keys, ctx));
        if (!key.has_value()) continue;
        auto it = index.find(*key);
        if (it == index.end()) continue;
        for (size_t l : it->second) {
          Tuple combined_row = Tuple::Concat(acc_rows[l], right);
          EvalContext rctx{&db, &stage_schema, &combined_row, outer, nullptr,
                           nullptr};
          MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(residuals, rctx));
          if (pass) by_left[l].push_back(std::move(combined_row));
        }
      }
      for (size_t l = 0; l < acc_rows.size(); ++l) {
        if (by_left[l].empty()) {
          if (left_join) next_rows.push_back(pad_row(acc_rows[l]));
          continue;
        }
        for (Tuple& t : by_left[l]) next_rows.push_back(std::move(t));
      }
    } else {
      // Build on the (smaller) incoming table, stream the accumulated
      // side; output is naturally left-major.
      JoinIndex index;
      index.reserve(right_rows.size());
      for (size_t r : right_rows) {
        EvalContext ctx{&db, &src.schema, &src.table->row(r), outer, nullptr,
                        nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(right_keys, ctx));
        if (key.has_value()) index[std::move(*key)].push_back(r);
      }
      for (const Tuple& left : acc_rows) {
        EvalContext lctx{&db, &acc_schema, &left, outer, nullptr, nullptr};
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                                EvalJoinKey(acc_keys, lctx));
        bool matched = false;
        if (key.has_value()) {
          auto it = index.find(*key);
          if (it != index.end()) {
            for (size_t r : it->second) {
              Tuple combined_row = Tuple::Concat(left, src.table->row(r));
              EvalContext rctx{&db, &stage_schema, &combined_row, outer,
                               nullptr, nullptr};
              MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(residuals, rctx));
              if (!pass) continue;
              matched = true;
              next_rows.push_back(std::move(combined_row));
            }
          }
        }
        if (!matched && left_join) next_rows.push_back(pad_row(left));
      }
    }

    acc_schema = std::move(stage_schema);
    acc_rows = std::move(next_rows);
    present = with_i;
  }

  // Final filter: conjuncts no join stage consumed (subquery predicates,
  // filters over LEFT-joined columns, outer-only or unresolvable
  // references). Subqueries evaluate through a per-pipeline decorrelation
  // cache instead of re-executing per row.
  bool any_final = false;
  for (const WherePred& w : where_preds) any_final |= !w.consumed;
  if (any_final) {
    SubqueryCache cache;
    std::vector<Tuple> filtered;
    filtered.reserve(acc_rows.size());
    for (Tuple& row : acc_rows) {
      EvalContext ctx{&db, &acc_schema, &row, outer, nullptr, &cache};
      bool keep = true;
      for (const WherePred& w : where_preds) {
        if (w.consumed) continue;
        MAYBMS_ASSIGN_OR_RETURN(Trivalent t, EvalPredicate(*w.pred.expr, ctx));
        if (t != Trivalent::kTrue) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(std::move(row));
    }
    acc_rows = std::move(filtered);
  }

  return Table(std::move(acc_schema), std::move(acc_rows));
}

// ---------------------------------------------------------------------------
// Subquery decorrelation
// ---------------------------------------------------------------------------

/// One cached subquery plan. Two shapes exist:
///  - constant: the subquery never references the probed row, so the
///    original evaluation runs once and the result is reused per probe;
///  - decorrelated: correlation is confined to WHERE conjuncts, the
///    equi-conjuncts become a hash key over the one-shot materialized
///    FROM/WHERE rows, and the remaining correlated conjuncts are
///    evaluated per bucket candidate (preserving trivalent semantics).
struct SubqueryCache::Entry {
  enum class Kind { kExists, kIn, kScalar };

  bool usable = false;
  bool constant = false;

  Kind kind = Kind::kExists;
  const sql::SelectStatement* sub = nullptr;
  bool negated = false;
  const sql::Expr* operand = nullptr;  // IN only
  const sql::Expr* item = nullptr;     // single select item (IN / scalar)
  bool grouped = false;                // global-aggregate select list

  // Constant shape.
  bool const_ready = false;
  Value const_value;
  std::vector<Value> in_values;

  // Decorrelated shape.
  std::vector<const sql::Expr*> local;       // applied at materialization
  std::vector<const sql::Expr*> inner_keys;  // over the subquery's rows
  std::vector<const sql::Expr*> outer_keys;  // over the probed row
  std::vector<const sql::Expr*> residuals;   // correlated, per candidate
  bool materialized = false;
  Schema inner_schema;
  std::vector<Tuple> inner_rows;
  JoinIndex index;
};

SubqueryCache::SubqueryCache() = default;
SubqueryCache::~SubqueryCache() = default;

namespace {

/// Result of scanning an expression for references relative to a subquery
/// nesting chain (`local`, the schemas between the expression and the
/// probed query) and the probed row schema (`probe`).
struct CorrelationScan {
  bool ok = true;           // false: analysis impossible, caller must bail
  bool correlated = false;  // some ref resolves to the probed row schema
  bool has_inner = false;   // some ref resolves in the local chain
  bool has_subquery = false;
  bool has_aggregate = false;
};

void ScanStatementCorrelation(const SelectStatement& stmt,
                              std::vector<const Schema*>& local,
                              const Schema* probe, const Database& db,
                              CorrelationScan* out);

void ScanCorrelation(const Expr& expr, std::vector<const Schema*>& local,
                     const Schema* probe, const Database& db,
                     CorrelationScan* out) {
  if (!out->ok) return;
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      for (const Schema* s : local) {
        if (s->HasColumn(ref.name, ref.qualifier)) {
          out->has_inner = true;
          return;
        }
      }
      if (probe != nullptr && probe->HasColumn(ref.name, ref.qualifier)) {
        out->correlated = true;
      }
      // Anything else resolves above the probed query (or errors); both
      // are fixed for the lifetime of one pipeline.
      return;
    }
    case ExprKind::kFunctionCall:
      if (IsAggregateFunction(
              static_cast<const sql::FunctionCallExpr&>(expr).name)) {
        out->has_aggregate = true;
      }
      break;
    case ExprKind::kInSubquery:
      out->has_subquery = true;
      ScanStatementCorrelation(
          *static_cast<const sql::InSubqueryExpr&>(expr).subquery, local,
          probe, db, out);
      break;  // the operand (enclosing scope) is a child below
    case ExprKind::kExists:
      out->has_subquery = true;
      ScanStatementCorrelation(
          *static_cast<const sql::ExistsExpr&>(expr).subquery, local, probe,
          db, out);
      break;
    case ExprKind::kScalarSubquery:
      out->has_subquery = true;
      ScanStatementCorrelation(
          *static_cast<const sql::ScalarSubqueryExpr&>(expr).subquery, local,
          probe, db, out);
      break;
    default:
      break;
  }
  ForEachChildExpr(expr, [&](const Expr& child) {
    ScanCorrelation(child, local, probe, db, out);
  });
}

void ScanStatementCorrelation(const SelectStatement& stmt,
                              std::vector<const Schema*>& local,
                              const Schema* probe, const Database& db,
                              CorrelationScan* out) {
  if (!out->ok) return;
  if (HasWorldOps(stmt)) {
    out->ok = false;
    return;
  }
  std::optional<Schema> source = DeriveSourceSchema(stmt, db);
  if (!source.has_value()) {
    out->ok = false;
    return;
  }
  local.push_back(&*source);
  auto scan = [&](const sql::Expr* e) {
    if (e != nullptr && out->ok) ScanCorrelation(*e, local, probe, db, out);
  };
  for (const sql::SelectItem& item : stmt.items) scan(item.expr.get());
  for (const sql::JoinClause& join : stmt.joins) scan(join.on.get());
  scan(stmt.where.get());
  for (const auto& g : stmt.group_by) scan(g.get());
  scan(stmt.having.get());
  for (const auto& o : stmt.order_by) scan(o.expr.get());
  local.pop_back();
  if (stmt.union_next != nullptr) {
    ScanStatementCorrelation(*stmt.union_next, local, probe, db, out);
  }
}

using Entry = SubqueryCache::Entry;

void AnalyzeEntry(Entry& e, const Expr& node, const EvalContext& ctx) {
  switch (node.kind) {
    case ExprKind::kExists: {
      const auto& ex = static_cast<const sql::ExistsExpr&>(node);
      e.kind = Entry::Kind::kExists;
      e.sub = ex.subquery.get();
      e.negated = ex.negated;
      break;
    }
    case ExprKind::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(node);
      e.kind = Entry::Kind::kIn;
      e.sub = in.subquery.get();
      e.negated = in.negated;
      e.operand = in.operand.get();
      break;
    }
    case ExprKind::kScalarSubquery: {
      const auto& sub = static_cast<const sql::ScalarSubqueryExpr&>(node);
      e.kind = Entry::Kind::kScalar;
      e.sub = sub.subquery.get();
      break;
    }
    default:
      return;
  }
  if (ctx.db == nullptr || e.sub == nullptr) return;

  const Schema* probe = ctx.schema;
  std::vector<const Schema*> chain;
  CorrelationScan whole;
  ScanStatementCorrelation(*e.sub, chain, probe, *ctx.db, &whole);
  if (!whole.ok) return;  // unanalyzable: keep the per-row fallback
  if (!whole.correlated) {
    // Independent of the probed row: evaluate once, reuse per probe.
    e.constant = true;
    e.usable = true;
    return;
  }

  const SelectStatement& sub = *e.sub;
  if (sub.union_next != nullptr || !sub.group_by.empty() ||
      sub.having != nullptr || sub.limit.has_value() ||
      !sub.order_by.empty()) {
    return;
  }
  e.grouped = StatementHasAggregates(sub);
  // A correlated global aggregate always yields exactly one row, so a
  // decorrelated EXISTS would skip evaluating it; keep the fallback.
  if (e.kind == Entry::Kind::kExists && e.grouped) return;
  if (e.kind != Entry::Kind::kExists) {
    if (sub.items.size() != 1 || sub.items[0].star ||
        sub.items[0].expr == nullptr) {
      return;
    }
    e.item = sub.items[0].expr.get();
  }
  if (e.kind == Entry::Kind::kScalar && sub.distinct) return;

  std::optional<Schema> inner = DeriveSourceSchema(sub, *ctx.db);
  if (!inner.has_value()) return;

  // Correlation must be confined to WHERE conjuncts (and the select item,
  // which is evaluated per probe anyway): a correlated JOIN ... ON cannot
  // be materialized up front.
  for (const sql::JoinClause& join : sub.joins) {
    CorrelationScan on_scan;
    std::vector<const Schema*> on_chain{&*inner};
    ScanCorrelation(*join.on, on_chain, probe, *ctx.db, &on_scan);
    if (!on_scan.ok || on_scan.correlated) return;
  }

  if (sub.where != nullptr) {
    for (const Expr* conjunct : SplitConjuncts(*sub.where)) {
      CorrelationScan cs;
      std::vector<const Schema*> c_chain{&*inner};
      ScanCorrelation(*conjunct, c_chain, probe, *ctx.db, &cs);
      if (!cs.ok) return;
      if (!cs.correlated) {
        e.local.push_back(conjunct);
        continue;
      }
      bool extracted = false;
      if (!cs.has_subquery && conjunct->kind == ExprKind::kBinary) {
        const auto& b = static_cast<const sql::BinaryExpr&>(*conjunct);
        if (b.op == sql::BinaryOp::kEquals) {
          auto side_scan = [&](const Expr& side) {
            CorrelationScan s;
            std::vector<const Schema*> s_chain{&*inner};
            ScanCorrelation(side, s_chain, probe, *ctx.db, &s);
            return s;
          };
          CorrelationScan ls = side_scan(*b.left);
          CorrelationScan rs = side_scan(*b.right);
          auto is_inner_side = [](const CorrelationScan& s) {
            return s.ok && s.has_inner && !s.correlated && !s.has_subquery &&
                   !s.has_aggregate;
          };
          auto is_outer_side = [](const CorrelationScan& s) {
            return s.ok && !s.has_inner && !s.has_subquery && !s.has_aggregate;
          };
          const Expr* inner_side = nullptr;
          const Expr* outer_side = nullptr;
          if (is_inner_side(ls) && is_outer_side(rs)) {
            inner_side = b.left.get();
            outer_side = b.right.get();
          } else if (is_inner_side(rs) && is_outer_side(ls)) {
            inner_side = b.right.get();
            outer_side = b.left.get();
          }
          if (inner_side != nullptr) {
            EvalContext inner_tctx;
            inner_tctx.db = ctx.db;
            inner_tctx.schema = &*inner;
            inner_tctx.outer = &ctx;
            if (HashCompatible(DeriveExprType(*inner_side, inner_tctx),
                               DeriveExprType(*outer_side, ctx))) {
              e.inner_keys.push_back(inner_side);
              e.outer_keys.push_back(outer_side);
              extracted = true;
            }
          }
        }
      }
      if (!extracted) e.residuals.push_back(conjunct);
    }
  }
  e.usable = true;
}

/// One-shot materialization of the subquery's FROM/WHERE under the local
/// (non-correlated) conjuncts, plus the hash index over the equi keys.
Status MaterializeEntry(Entry& e, const EvalContext& ctx) {
  std::unique_ptr<SelectStatement> shell = e.sub->Clone();
  sql::ExprPtr where;
  for (const Expr* conjunct : e.local) {
    sql::ExprPtr clone = conjunct->Clone();
    where = where ? std::make_unique<sql::BinaryExpr>(
                        sql::BinaryOp::kAnd, std::move(where), std::move(clone))
                  : std::move(clone);
  }
  shell->where = std::move(where);
  MAYBMS_ASSIGN_OR_RETURN(Table t,
                          ExecuteFromWhere(*shell, *ctx.db, ctx.outer));
  e.inner_schema = t.schema();
  e.inner_rows = std::move(*t.mutable_rows());
  if (!e.inner_keys.empty()) {
    for (size_t r = 0; r < e.inner_rows.size(); ++r) {
      EvalContext ictx{ctx.db, &e.inner_schema, &e.inner_rows[r], ctx.outer,
                       nullptr, nullptr};
      MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                              EvalJoinKey(e.inner_keys, ictx));
      if (key.has_value()) e.index[std::move(*key)].push_back(r);
    }
  }
  e.materialized = true;
  return Status::OK();
}

Result<Value> ProbeEntry(Entry& e, const EvalContext& ctx) {
  if (!e.materialized) MAYBMS_RETURN_NOT_OK(MaterializeEntry(e, ctx));

  // For IN, the operand evaluates before the subquery (EvalExpr's order).
  std::optional<Value> operand;
  if (e.kind == Entry::Kind::kIn) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.operand, ctx));
    operand = std::move(v);
  }

  static const std::vector<size_t> kNoCandidates;
  const std::vector<size_t>* candidates = &kNoCandidates;
  std::vector<size_t> all;
  if (e.inner_keys.empty()) {
    all.resize(e.inner_rows.size());
    std::iota(all.begin(), all.end(), size_t{0});
    candidates = &all;
  } else {
    MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                            EvalJoinKey(e.outer_keys, ctx));
    if (key.has_value()) {
      auto it = e.index.find(*key);
      if (it != e.index.end()) candidates = &it->second;
    }
  }

  auto inner_ctx = [&ctx, &e](const Tuple& row) {
    return EvalContext{ctx.db, &e.inner_schema, &row, &ctx, nullptr, nullptr};
  };

  if (e.grouped) {
    // Global aggregate: the surviving candidates form the one group.
    std::vector<Tuple> rows;
    for (size_t r : *candidates) {
      EvalContext ictx = inner_ctx(e.inner_rows[r]);
      MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(e.residuals, ictx));
      if (pass) rows.push_back(e.inner_rows[r]);
    }
    EvalContext gctx{ctx.db, rows.empty() ? nullptr : &e.inner_schema,
                     rows.empty() ? nullptr : &rows[0], &ctx, &rows, nullptr};
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.item, gctx));
    if (e.kind == Entry::Kind::kScalar) return v;
    MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand->SqlEquals(v));
    return TrivalentToValue(e.negated ? TrivalentNot(eq) : eq);
  }

  switch (e.kind) {
    case Entry::Kind::kExists: {
      bool exists = false;
      for (size_t r : *candidates) {
        EvalContext ictx = inner_ctx(e.inner_rows[r]);
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(e.residuals, ictx));
        if (pass) {
          exists = true;
          break;
        }
      }
      return Value::Boolean(e.negated ? !exists : exists);
    }
    case Entry::Kind::kIn: {
      Trivalent found = Trivalent::kFalse;
      for (size_t r : *candidates) {
        EvalContext ictx = inner_ctx(e.inner_rows[r]);
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(e.residuals, ictx));
        if (!pass) continue;
        MAYBMS_ASSIGN_OR_RETURN(Value item, EvalExpr(*e.item, ictx));
        MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand->SqlEquals(item));
        found = TrivalentOr(found, eq);
        if (found == Trivalent::kTrue) break;
      }
      return TrivalentToValue(e.negated ? TrivalentNot(found) : found);
    }
    case Entry::Kind::kScalar: {
      std::optional<size_t> match;
      for (size_t r : *candidates) {
        EvalContext ictx = inner_ctx(e.inner_rows[r]);
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(e.residuals, ictx));
        if (!pass) continue;
        if (match.has_value()) {
          return Status::RuntimeError(
              "scalar subquery returned more than one row");
        }
        match = r;
      }
      if (!match.has_value()) return Value::Null();
      EvalContext ictx = inner_ctx(e.inner_rows[*match]);
      return EvalExpr(*e.item, ictx);
    }
  }
  return Status::RuntimeError("unhandled cached subquery kind");
}

/// Evaluates a subquery that never references the probed row: the
/// original evaluation runs once (against the first probing context,
/// whose enclosing chain is fixed for the cache's lifetime) and the
/// result is reused for every subsequent probe.
Result<Value> EvalConstantEntry(Entry& e, const EvalContext& ctx) {
  switch (e.kind) {
    case Entry::Kind::kExists: {
      if (!e.const_ready) {
        MAYBMS_ASSIGN_OR_RETURN(Table result,
                                ExecuteSelect(*e.sub, *ctx.db, &ctx));
        e.const_value = Value::Boolean(!result.empty());
        e.const_ready = true;
      }
      bool exists = e.const_value.AsBoolean();
      return Value::Boolean(e.negated ? !exists : exists);
    }
    case Entry::Kind::kIn: {
      MAYBMS_ASSIGN_OR_RETURN(Value operand, EvalExpr(*e.operand, ctx));
      if (!e.const_ready) {
        MAYBMS_ASSIGN_OR_RETURN(Table result,
                                ExecuteSelect(*e.sub, *ctx.db, &ctx));
        if (result.schema().num_columns() != 1) {
          return Status::InvalidArgument(
              "IN subquery must return exactly one column");
        }
        e.in_values.reserve(result.num_rows());
        for (const Tuple& row : result.rows()) {
          e.in_values.push_back(row.value(0));
        }
        e.const_ready = true;
      }
      Trivalent found = Trivalent::kFalse;
      for (const Value& v : e.in_values) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand.SqlEquals(v));
        found = TrivalentOr(found, eq);
        if (found == Trivalent::kTrue) break;
      }
      return TrivalentToValue(e.negated ? TrivalentNot(found) : found);
    }
    case Entry::Kind::kScalar: {
      if (!e.const_ready) {
        MAYBMS_ASSIGN_OR_RETURN(Table result,
                                ExecuteSelect(*e.sub, *ctx.db, &ctx));
        if (result.schema().num_columns() != 1) {
          return Status::InvalidArgument(
              "scalar subquery must return exactly one column");
        }
        if (result.num_rows() > 1) {
          return Status::RuntimeError(
              "scalar subquery returned more than one row");
        }
        e.const_value =
            result.empty() ? Value::Null() : result.row(0).value(0);
        e.const_ready = true;
      }
      return e.const_value;
    }
  }
  return Status::RuntimeError("unhandled cached subquery kind");
}

}  // namespace

Result<std::optional<Value>> EvalSubqueryViaCache(const sql::Expr& expr,
                                                  const EvalContext& ctx) {
  std::unique_ptr<Entry>& slot = ctx.cache->entries_[&expr];
  if (slot == nullptr) {
    slot = std::make_unique<Entry>();
    AnalyzeEntry(*slot, expr, ctx);
  }
  Entry& e = *slot;
  if (!e.usable) return std::optional<Value>();
  Result<Value> v = e.constant ? EvalConstantEntry(e, ctx) : ProbeEntry(e, ctx);
  MAYBMS_RETURN_NOT_OK(v.status());
  return std::optional<Value>(std::move(*v));
}

}  // namespace maybms::engine
