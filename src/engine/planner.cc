// Subquery decorrelation for the per-world executor, on top of the
// two-level cache declared in planner.h: schema-level plans (shared across
// worlds) and per-scope results. The decorrelator only restructures
// *evaluation order*; every predicate is still decided by
// EvalPredicate/SqlEquals over candidate rows, so trivalent semantics
// (NULL join keys, UNKNOWN residuals) are inherited from the per-row
// definition rather than re-implemented.
//
// What is deliberately NOT preserved is *which* predicate evaluations
// happen: decorrelated subqueries stop as soon as the answer is decided,
// and hash probing skips candidates whose equi-key cannot match. A
// predicate whose evaluation errors (division by zero, type mismatch) can
// therefore error here where naive evaluation would not, or vice versa —
// standard SQL latitude, and identical across both engine backends since
// they share this code.

#include "engine/planner.h"

#include <cmath>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "engine/prepared.h"
#include "engine/type_deriver.h"
#include "types/tuple.h"

namespace maybms::engine {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

void SplitConjunctsInto(const Expr& pred, std::vector<const Expr*>* out) {
  if (pred.kind == ExprKind::kBinary) {
    const auto& b = static_cast<const sql::BinaryExpr&>(pred);
    if (b.op == sql::BinaryOp::kAnd) {
      SplitConjunctsInto(*b.left, out);
      SplitConjunctsInto(*b.right, out);
      return;
    }
  }
  out->push_back(&pred);
}

}  // namespace

std::vector<const Expr*> SplitConjuncts(const Expr& pred) {
  std::vector<const Expr*> out;
  SplitConjunctsInto(pred, &out);
  return out;
}

bool HashCompatible(std::optional<DataType> a, std::optional<DataType> b) {
  if (!a.has_value() || !b.has_value()) return false;
  if (*a == *b) return true;
  auto numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kReal;
  };
  return numeric(*a) && numeric(*b);
}

Result<bool> PassesAll(const std::vector<const Expr*>& preds,
                       const EvalContext& ctx) {
  for (const Expr* p : preds) {
    MAYBMS_ASSIGN_OR_RETURN(Trivalent t, EvalPredicate(*p, ctx));
    if (t != Trivalent::kTrue) return false;
  }
  return true;
}

Result<std::optional<Tuple>> EvalJoinKey(const std::vector<const Expr*>& keys,
                                         const EvalContext& ctx) {
  Tuple key;
  for (const Expr* e : keys) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
    if (v.is_null()) return std::optional<Tuple>();
    if (v.type() == DataType::kReal && std::isnan(v.AsReal())) {
      return std::optional<Tuple>();
    }
    key.Append(std::move(v));
  }
  return std::optional<Tuple>(std::move(key));
}

// ---------------------------------------------------------------------------
// Subquery decorrelation
// ---------------------------------------------------------------------------

/// One schema-level subquery plan. Two shapes exist:
///  - constant: the subquery never references the probed row, so the
///    original evaluation runs once per scope and the result is reused
///    per probe;
///  - decorrelated: correlation is confined to WHERE conjuncts, the
///    equi-conjuncts become a hash key over the one-shot materialized
///    FROM/WHERE rows, and the remaining correlated conjuncts are
///    evaluated per bucket candidate (preserving trivalent semantics).
/// Plans hold borrowed AST pointers and a pre-built materialization shell
/// only — never rows or per-world values (see planner.h).
struct SubqueryPlanCache::Plan {
  enum class Kind { kExists, kIn, kScalar };

  bool usable = false;
  bool constant = false;

  Kind kind = Kind::kExists;
  const sql::SelectStatement* sub = nullptr;
  bool negated = false;
  const sql::Expr* operand = nullptr;  // IN only
  const sql::Expr* item = nullptr;     // single select item (IN / scalar)
  bool grouped = false;                // global-aggregate select list

  // Decorrelated shape.
  std::vector<const sql::Expr*> inner_keys;  // over the subquery's rows
  std::vector<const sql::Expr*> outer_keys;  // over the probed row
  std::vector<const sql::Expr*> residuals;   // correlated, per candidate
  // The subquery with only its local (non-correlated) WHERE conjuncts,
  // cloned once at analysis; each scope materializes its FROM/WHERE from
  // this shell through `shell_plan`, prepared lazily on the first
  // materialization and reused by every scope (schema-only, like the
  // plan itself).
  std::unique_ptr<sql::SelectStatement> shell;
  std::optional<PreparedFromWhere> shell_plan;

  // Constant shape: the subquery prepared once, executed once per scope.
  std::optional<PreparedSelect> const_plan;
};

/// Per-scope results for one subquery plan: the constant value / IN list
/// (constant shape) or the one-shot materialized rows plus their hash
/// semi-join index (decorrelated shape). All of this is world data and
/// dies with its SubqueryCache.
struct SubqueryCache::Entry {
  // Constant shape.
  bool const_ready = false;
  Value const_value;
  std::vector<Value> in_values;

  // Decorrelated shape.
  bool materialized = false;
  Schema inner_schema;
  std::vector<Tuple> inner_rows;
  JoinIndex index;
};

SubqueryPlanCache::SubqueryPlanCache() = default;
SubqueryPlanCache::~SubqueryPlanCache() = default;
SubqueryPlanCache::SubqueryPlanCache(SubqueryPlanCache&&) noexcept = default;
SubqueryPlanCache& SubqueryPlanCache::operator=(SubqueryPlanCache&&) noexcept =
    default;

SubqueryCache::SubqueryCache() : plans_(&owned_plans_) {}
SubqueryCache::SubqueryCache(SubqueryPlanCache* shared_plans)
    : plans_(shared_plans != nullptr ? shared_plans : &owned_plans_) {}
SubqueryCache::~SubqueryCache() = default;

namespace {

/// Result of scanning an expression for references relative to a subquery
/// nesting chain (`local`, the schemas between the expression and the
/// probed query) and the probed row schema (`probe`).
struct CorrelationScan {
  bool ok = true;           // false: analysis impossible, caller must bail
  bool correlated = false;  // some ref resolves to the probed row schema
  bool has_inner = false;   // some ref resolves in the local chain
  bool has_subquery = false;
  bool has_aggregate = false;
};

void ScanStatementCorrelation(const SelectStatement& stmt,
                              std::vector<const Schema*>& local,
                              const Schema* probe, const Database& db,
                              CorrelationScan* out);

void ScanCorrelation(const Expr& expr, std::vector<const Schema*>& local,
                     const Schema* probe, const Database& db,
                     CorrelationScan* out) {
  if (!out->ok) return;
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      for (const Schema* s : local) {
        if (s->HasColumn(ref.name, ref.qualifier)) {
          out->has_inner = true;
          return;
        }
      }
      if (probe != nullptr && probe->HasColumn(ref.name, ref.qualifier)) {
        out->correlated = true;
      }
      // Anything else resolves above the probed query (or errors); both
      // are fixed for the lifetime of one pipeline.
      return;
    }
    case ExprKind::kFunctionCall:
      if (IsAggregateFunction(
              static_cast<const sql::FunctionCallExpr&>(expr).name)) {
        out->has_aggregate = true;
      }
      break;
    case ExprKind::kInSubquery:
      out->has_subquery = true;
      ScanStatementCorrelation(
          *static_cast<const sql::InSubqueryExpr&>(expr).subquery, local,
          probe, db, out);
      break;  // the operand (enclosing scope) is a child below
    case ExprKind::kExists:
      out->has_subquery = true;
      ScanStatementCorrelation(
          *static_cast<const sql::ExistsExpr&>(expr).subquery, local, probe,
          db, out);
      break;
    case ExprKind::kScalarSubquery:
      out->has_subquery = true;
      ScanStatementCorrelation(
          *static_cast<const sql::ScalarSubqueryExpr&>(expr).subquery, local,
          probe, db, out);
      break;
    default:
      break;
  }
  ForEachChildExpr(expr, [&](const Expr& child) {
    ScanCorrelation(child, local, probe, db, out);
  });
}

void ScanStatementCorrelation(const SelectStatement& stmt,
                              std::vector<const Schema*>& local,
                              const Schema* probe, const Database& db,
                              CorrelationScan* out) {
  if (!out->ok) return;
  if (HasWorldOps(stmt)) {
    out->ok = false;
    return;
  }
  std::optional<Schema> source = DeriveSourceSchema(stmt, db);
  if (!source.has_value()) {
    out->ok = false;
    return;
  }
  local.push_back(&*source);
  auto scan = [&](const sql::Expr* e) {
    if (e != nullptr && out->ok) ScanCorrelation(*e, local, probe, db, out);
  };
  for (const sql::SelectItem& item : stmt.items) scan(item.expr.get());
  for (const sql::JoinClause& join : stmt.joins) scan(join.on.get());
  scan(stmt.where.get());
  for (const auto& g : stmt.group_by) scan(g.get());
  scan(stmt.having.get());
  for (const auto& o : stmt.order_by) scan(o.expr.get());
  local.pop_back();
  if (stmt.union_next != nullptr) {
    ScanStatementCorrelation(*stmt.union_next, local, probe, db, out);
  }
}

using Plan = SubqueryPlanCache::Plan;
using Entry = SubqueryCache::Entry;

void AnalyzePlan(Plan& e, const Expr& node, const EvalContext& ctx) {
  switch (node.kind) {
    case ExprKind::kExists: {
      const auto& ex = static_cast<const sql::ExistsExpr&>(node);
      e.kind = Plan::Kind::kExists;
      e.sub = ex.subquery.get();
      e.negated = ex.negated;
      break;
    }
    case ExprKind::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(node);
      e.kind = Plan::Kind::kIn;
      e.sub = in.subquery.get();
      e.negated = in.negated;
      e.operand = in.operand.get();
      break;
    }
    case ExprKind::kScalarSubquery: {
      const auto& sub = static_cast<const sql::ScalarSubqueryExpr&>(node);
      e.kind = Plan::Kind::kScalar;
      e.sub = sub.subquery.get();
      break;
    }
    default:
      return;
  }
  if (ctx.db == nullptr || e.sub == nullptr) return;

  const Schema* probe = ctx.schema;
  std::vector<const Schema*> chain;
  CorrelationScan whole;
  ScanStatementCorrelation(*e.sub, chain, probe, *ctx.db, &whole);
  if (!whole.ok) return;  // unanalyzable: keep the per-row fallback
  if (!whole.correlated) {
    // Independent of the probed row: evaluate once per scope, reuse per
    // probe.
    e.constant = true;
    e.usable = true;
    return;
  }

  const SelectStatement& sub = *e.sub;
  if (sub.union_next != nullptr || !sub.group_by.empty() ||
      sub.having != nullptr || sub.limit.has_value() ||
      !sub.order_by.empty()) {
    return;
  }
  e.grouped = StatementHasAggregates(sub);
  // A correlated global aggregate always yields exactly one row, so a
  // decorrelated EXISTS would skip evaluating it; keep the fallback.
  if (e.kind == Plan::Kind::kExists && e.grouped) return;
  if (e.kind != Plan::Kind::kExists) {
    if (sub.items.size() != 1 || sub.items[0].star ||
        sub.items[0].expr == nullptr) {
      return;
    }
    e.item = sub.items[0].expr.get();
  }
  if (e.kind == Plan::Kind::kScalar && sub.distinct) return;

  std::optional<Schema> inner = DeriveSourceSchema(sub, *ctx.db);
  if (!inner.has_value()) return;

  // Correlation must be confined to WHERE conjuncts (and the select item,
  // which is evaluated per probe anyway): a correlated JOIN ... ON cannot
  // be materialized up front.
  for (const sql::JoinClause& join : sub.joins) {
    CorrelationScan on_scan;
    std::vector<const Schema*> on_chain{&*inner};
    ScanCorrelation(*join.on, on_chain, probe, *ctx.db, &on_scan);
    if (!on_scan.ok || on_scan.correlated) return;
  }

  std::vector<const Expr*> local;  // applied at materialization
  if (sub.where != nullptr) {
    for (const Expr* conjunct : SplitConjuncts(*sub.where)) {
      CorrelationScan cs;
      std::vector<const Schema*> c_chain{&*inner};
      ScanCorrelation(*conjunct, c_chain, probe, *ctx.db, &cs);
      if (!cs.ok) return;
      if (!cs.correlated) {
        local.push_back(conjunct);
        continue;
      }
      bool extracted = false;
      if (!cs.has_subquery && conjunct->kind == ExprKind::kBinary) {
        const auto& b = static_cast<const sql::BinaryExpr&>(*conjunct);
        if (b.op == sql::BinaryOp::kEquals) {
          auto side_scan = [&](const Expr& side) {
            CorrelationScan s;
            std::vector<const Schema*> s_chain{&*inner};
            ScanCorrelation(side, s_chain, probe, *ctx.db, &s);
            return s;
          };
          CorrelationScan ls = side_scan(*b.left);
          CorrelationScan rs = side_scan(*b.right);
          auto is_inner_side = [](const CorrelationScan& s) {
            return s.ok && s.has_inner && !s.correlated && !s.has_subquery &&
                   !s.has_aggregate;
          };
          auto is_outer_side = [](const CorrelationScan& s) {
            return s.ok && !s.has_inner && !s.has_subquery && !s.has_aggregate;
          };
          const Expr* inner_side = nullptr;
          const Expr* outer_side = nullptr;
          if (is_inner_side(ls) && is_outer_side(rs)) {
            inner_side = b.left.get();
            outer_side = b.right.get();
          } else if (is_inner_side(rs) && is_outer_side(ls)) {
            inner_side = b.right.get();
            outer_side = b.left.get();
          }
          if (inner_side != nullptr) {
            EvalContext inner_tctx;
            inner_tctx.db = ctx.db;
            inner_tctx.schema = &*inner;
            inner_tctx.outer = &ctx;
            if (HashCompatible(DeriveExprType(*inner_side, inner_tctx),
                               DeriveExprType(*outer_side, ctx))) {
              e.inner_keys.push_back(inner_side);
              e.outer_keys.push_back(outer_side);
              extracted = true;
            }
          }
        }
      }
      if (!extracted) e.residuals.push_back(conjunct);
    }
  }

  // Pre-build the materialization shell: the subquery with only its local
  // conjuncts. Built once here so per-scope materialization never clones
  // the AST again.
  std::unique_ptr<SelectStatement> shell = e.sub->Clone();
  sql::ExprPtr where;
  for (const Expr* conjunct : local) {
    sql::ExprPtr clone = conjunct->Clone();
    where = where ? std::make_unique<sql::BinaryExpr>(
                        sql::BinaryOp::kAnd, std::move(where), std::move(clone))
                  : std::move(clone);
  }
  shell->where = std::move(where);
  e.shell = std::move(shell);
  e.usable = true;
}

/// One-shot materialization of the subquery's FROM/WHERE under the local
/// (non-correlated) conjuncts, plus the hash index over the equi keys.
/// The shell's pipeline plan is prepared on the first scope and reused by
/// every later one (the plan cache is only ever shared across scopes with
/// identical schemas).
Status MaterializeEntry(Plan& p, Entry& e, const EvalContext& ctx) {
  if (!p.shell_plan.has_value()) {
    MAYBMS_ASSIGN_OR_RETURN(
        p.shell_plan,
        PreparedFromWhere::Prepare(*p.shell, *ctx.db, ctx.outer));
  }
  MAYBMS_ASSIGN_OR_RETURN(Table t, p.shell_plan->Execute(*ctx.db, ctx.outer));
  e.inner_schema = t.schema();
  e.inner_rows = std::move(*t.mutable_rows());
  if (!p.inner_keys.empty()) {
    for (size_t r = 0; r < e.inner_rows.size(); ++r) {
      EvalContext ictx{ctx.db, &e.inner_schema, &e.inner_rows[r], ctx.outer,
                       nullptr, nullptr};
      MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                              EvalJoinKey(p.inner_keys, ictx));
      if (key.has_value()) e.index[std::move(*key)].push_back(r);
    }
  }
  e.materialized = true;
  return Status::OK();
}

Result<Value> ProbeEntry(Plan& p, Entry& e, const EvalContext& ctx) {
  if (!e.materialized) MAYBMS_RETURN_NOT_OK(MaterializeEntry(p, e, ctx));

  // For IN, the operand evaluates before the subquery (EvalExpr's order).
  std::optional<Value> operand;
  if (p.kind == Plan::Kind::kIn) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.operand, ctx));
    operand = std::move(v);
  }

  static const std::vector<size_t> kNoCandidates;
  const std::vector<size_t>* candidates = &kNoCandidates;
  std::vector<size_t> all;
  if (p.inner_keys.empty()) {
    all.resize(e.inner_rows.size());
    std::iota(all.begin(), all.end(), size_t{0});
    candidates = &all;
  } else {
    MAYBMS_ASSIGN_OR_RETURN(std::optional<Tuple> key,
                            EvalJoinKey(p.outer_keys, ctx));
    if (key.has_value()) {
      auto it = e.index.find(*key);
      if (it != e.index.end()) candidates = &it->second;
    }
  }

  auto inner_ctx = [&ctx, &e](const Tuple& row) {
    return EvalContext{ctx.db, &e.inner_schema, &row, &ctx, nullptr, nullptr};
  };

  if (p.grouped) {
    // Global aggregate: the surviving candidates form the one group.
    std::vector<Tuple> rows;
    for (size_t r : *candidates) {
      EvalContext ictx = inner_ctx(e.inner_rows[r]);
      MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(p.residuals, ictx));
      if (pass) rows.push_back(e.inner_rows[r]);
    }
    EvalContext gctx{ctx.db, rows.empty() ? nullptr : &e.inner_schema,
                     rows.empty() ? nullptr : &rows[0], &ctx, &rows, nullptr};
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*p.item, gctx));
    if (p.kind == Plan::Kind::kScalar) return v;
    MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand->SqlEquals(v));
    return TrivalentToValue(p.negated ? TrivalentNot(eq) : eq);
  }

  switch (p.kind) {
    case Plan::Kind::kExists: {
      bool exists = false;
      for (size_t r : *candidates) {
        EvalContext ictx = inner_ctx(e.inner_rows[r]);
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(p.residuals, ictx));
        if (pass) {
          exists = true;
          break;
        }
      }
      return Value::Boolean(p.negated ? !exists : exists);
    }
    case Plan::Kind::kIn: {
      Trivalent found = Trivalent::kFalse;
      for (size_t r : *candidates) {
        EvalContext ictx = inner_ctx(e.inner_rows[r]);
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(p.residuals, ictx));
        if (!pass) continue;
        MAYBMS_ASSIGN_OR_RETURN(Value item, EvalExpr(*p.item, ictx));
        MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand->SqlEquals(item));
        found = TrivalentOr(found, eq);
        if (found == Trivalent::kTrue) break;
      }
      return TrivalentToValue(p.negated ? TrivalentNot(found) : found);
    }
    case Plan::Kind::kScalar: {
      std::optional<size_t> match;
      for (size_t r : *candidates) {
        EvalContext ictx = inner_ctx(e.inner_rows[r]);
        MAYBMS_ASSIGN_OR_RETURN(bool pass, PassesAll(p.residuals, ictx));
        if (!pass) continue;
        if (match.has_value()) {
          return Status::RuntimeError(
              "scalar subquery returned more than one row");
        }
        match = r;
      }
      if (!match.has_value()) return Value::Null();
      EvalContext ictx = inner_ctx(e.inner_rows[*match]);
      return EvalExpr(*p.item, ictx);
    }
  }
  return Status::RuntimeError("unhandled cached subquery kind");
}

/// Executes the constant subquery for one scope through the plan-level
/// PreparedSelect (prepared on the first scope, schema-only, reused by
/// every later one).
Result<Table> ExecuteConstantSub(Plan& p, const EvalContext& ctx) {
  if (!p.const_plan.has_value()) {
    MAYBMS_ASSIGN_OR_RETURN(p.const_plan,
                            PreparedSelect::Prepare(*p.sub, *ctx.db, &ctx));
  }
  return p.const_plan->Execute(*ctx.db, &ctx);
}

/// Evaluates a subquery that never references the probed row: the
/// original evaluation runs once per scope (against the first probing
/// context, whose enclosing chain is fixed for the scope's lifetime) and
/// the result is reused for every subsequent probe.
Result<Value> EvalConstantEntry(Plan& p, Entry& e, const EvalContext& ctx) {
  switch (p.kind) {
    case Plan::Kind::kExists: {
      if (!e.const_ready) {
        MAYBMS_ASSIGN_OR_RETURN(Table result, ExecuteConstantSub(p, ctx));
        e.const_value = Value::Boolean(!result.empty());
        e.const_ready = true;
      }
      bool exists = e.const_value.AsBoolean();
      return Value::Boolean(p.negated ? !exists : exists);
    }
    case Plan::Kind::kIn: {
      MAYBMS_ASSIGN_OR_RETURN(Value operand, EvalExpr(*p.operand, ctx));
      if (!e.const_ready) {
        MAYBMS_ASSIGN_OR_RETURN(Table result, ExecuteConstantSub(p, ctx));
        if (result.schema().num_columns() != 1) {
          return Status::InvalidArgument(
              "IN subquery must return exactly one column");
        }
        e.in_values.reserve(result.num_rows());
        for (const Tuple& row : result.rows()) {
          e.in_values.push_back(row.value(0));
        }
        e.const_ready = true;
      }
      Trivalent found = Trivalent::kFalse;
      for (const Value& v : e.in_values) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand.SqlEquals(v));
        found = TrivalentOr(found, eq);
        if (found == Trivalent::kTrue) break;
      }
      return TrivalentToValue(p.negated ? TrivalentNot(found) : found);
    }
    case Plan::Kind::kScalar: {
      if (!e.const_ready) {
        MAYBMS_ASSIGN_OR_RETURN(Table result, ExecuteConstantSub(p, ctx));
        if (result.schema().num_columns() != 1) {
          return Status::InvalidArgument(
              "scalar subquery must return exactly one column");
        }
        if (result.num_rows() > 1) {
          return Status::RuntimeError(
              "scalar subquery returned more than one row");
        }
        e.const_value =
            result.empty() ? Value::Null() : result.row(0).value(0);
        e.const_ready = true;
      }
      return e.const_value;
    }
  }
  return Status::RuntimeError("unhandled cached subquery kind");
}

}  // namespace

Result<std::optional<Value>> EvalSubqueryViaCache(const sql::Expr& expr,
                                                  const EvalContext& ctx) {
  std::unique_ptr<Plan>& plan_slot = ctx.cache->plans_->plans_[&expr];
  if (plan_slot == nullptr) {
    plan_slot = std::make_unique<Plan>();
    AnalyzePlan(*plan_slot, expr, ctx);
  }
  Plan& plan = *plan_slot;
  if (!plan.usable) return std::optional<Value>();
  std::unique_ptr<Entry>& entry_slot = ctx.cache->entries_[&expr];
  if (entry_slot == nullptr) entry_slot = std::make_unique<Entry>();
  Result<Value> v = plan.constant
                        ? EvalConstantEntry(plan, *entry_slot, ctx)
                        : ProbeEntry(plan, *entry_slot, ctx);
  MAYBMS_RETURN_NOT_OK(v.status());
  return std::optional<Value>(std::move(*v));
}

}  // namespace maybms::engine
