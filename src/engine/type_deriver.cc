#include "engine/type_deriver.h"

#include <vector>

#include "engine/executor.h"

namespace maybms::engine {

namespace {

using sql::BinaryOp;
using sql::ExprKind;

/// Merges the types a multi-branch construct (CASE, COALESCE) can produce.
/// Branches that are literal NULLs never contribute a value type and are
/// skipped by the caller; any remaining underivable branch makes the whole
/// construct underivable. Equal types merge to themselves; mixed numeric
/// types widen to REAL; anything else is unknown.
std::optional<DataType> MergeBranchTypes(
    const std::vector<std::optional<DataType>>& branches) {
  std::optional<DataType> merged;
  for (const std::optional<DataType>& t : branches) {
    if (!t.has_value()) return std::nullopt;
    if (!merged.has_value()) {
      merged = t;
    } else if (*merged != *t) {
      bool both_numeric =
          (*merged == DataType::kInteger || *merged == DataType::kReal) &&
          (*t == DataType::kInteger || *t == DataType::kReal);
      if (!both_numeric) return std::nullopt;
      merged = DataType::kReal;
    }
  }
  return merged;
}

bool IsNullLiteral(const sql::Expr& expr) {
  return expr.kind == ExprKind::kLiteral &&
         static_cast<const sql::LiteralExpr&>(expr).value.is_null();
}

std::optional<DataType> DeriveColumnRef(const sql::ColumnRefExpr& ref,
                                        const EvalContext& ctx) {
  for (const EvalContext* c = &ctx; c != nullptr; c = c->outer) {
    if (c->schema == nullptr) continue;
    if (c->schema->HasColumn(ref.name, ref.qualifier)) {
      Result<size_t> idx = c->schema->FindColumn(ref.name, ref.qualifier);
      if (!idx.ok()) return std::nullopt;  // ambiguous: evaluation will error
      return c->schema->column(*idx).type;
    }
  }
  return std::nullopt;
}

std::optional<DataType> DeriveFunctionCall(const sql::FunctionCallExpr& call,
                                           const EvalContext& ctx) {
  if (IsAggregateFunction(call.name)) {
    if (call.name == "count") return DataType::kInteger;
    if (call.name == "avg") return DataType::kReal;
    if (call.args.size() != 1) return std::nullopt;
    std::optional<DataType> arg = DeriveExprType(*call.args[0], ctx);
    if (call.name == "sum") {
      // EvalAggregate returns Integer iff every input is an integer.
      if (arg == DataType::kInteger || arg == DataType::kReal) return arg;
      return std::nullopt;
    }
    return arg;  // min/max preserve the argument type
  }

  if (call.name == "abs") {
    if (call.args.size() != 1) return std::nullopt;
    std::optional<DataType> arg = DeriveExprType(*call.args[0], ctx);
    if (arg == DataType::kInteger || arg == DataType::kReal) return arg;
    return std::nullopt;
  }
  if (call.name == "round") return DataType::kReal;
  if (call.name == "lower" || call.name == "upper" || call.name == "substr" ||
      call.name == "substring" || call.name == "replace" ||
      call.name == "concat") {
    return DataType::kText;
  }
  if (call.name == "length" || call.name == "floor" || call.name == "ceil" ||
      call.name == "ceiling" || call.name == "sign" || call.name == "mod") {
    return DataType::kInteger;
  }
  if (call.name == "coalesce") {
    std::vector<std::optional<DataType>> branches;
    for (const auto& a : call.args) {
      if (IsNullLiteral(*a)) continue;
      branches.push_back(DeriveExprType(*a, ctx));
    }
    return MergeBranchTypes(branches);
  }
  if (call.name == "nullif") {
    if (call.args.size() != 2) return std::nullopt;
    return DeriveExprType(*call.args[0], ctx);
  }
  return std::nullopt;  // unknown function: evaluation will error
}

std::optional<DataType> DeriveScalarSubquery(const sql::SelectStatement& sub,
                                             const EvalContext& ctx) {
  if (HasWorldOps(sub)) return std::nullopt;
  // Set-operation chains take the head statement's schema (ExecuteSelect).
  if (sub.items.size() != 1 || sub.items[0].star) return std::nullopt;
  if (ctx.db == nullptr) return std::nullopt;
  std::optional<Schema> source = DeriveSourceSchema(sub, *ctx.db);
  if (!source.has_value()) return std::nullopt;
  EvalContext sub_ctx;
  sub_ctx.db = ctx.db;
  sub_ctx.schema = &*source;
  sub_ctx.outer = &ctx;
  return DeriveExprType(*sub.items[0].expr, sub_ctx);
}

}  // namespace

std::optional<Schema> DeriveSourceSchema(const sql::SelectStatement& stmt,
                                         const Database& db) {
  Schema schema;
  for (const sql::TableRef& ref : stmt.from) {
    Result<const Table*> table = db.GetRelation(ref.table_name);
    if (!table.ok()) return std::nullopt;
    schema = Schema::Concat(
        schema, (*table)->schema().WithQualifier(ref.effective_alias()));
  }
  for (const sql::JoinClause& join : stmt.joins) {
    Result<const Table*> table = db.GetRelation(join.table.table_name);
    if (!table.ok()) return std::nullopt;
    schema = Schema::Concat(
        schema,
        (*table)->schema().WithQualifier(join.table.effective_alias()));
  }
  return schema;
}

std::optional<DataType> DeriveExprType(const sql::Expr& expr,
                                       const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const sql::LiteralExpr&>(expr).value;
      if (v.is_null()) return std::nullopt;
      return v.type();
    }

    case ExprKind::kColumnRef:
      return DeriveColumnRef(static_cast<const sql::ColumnRefExpr&>(expr),
                             ctx);

    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      if (u.op == sql::UnaryOp::kNot) return DataType::kBoolean;
      std::optional<DataType> operand = DeriveExprType(*u.operand, ctx);
      if (operand == DataType::kInteger || operand == DataType::kReal) {
        return operand;
      }
      return std::nullopt;
    }

    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      switch (b.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEquals:
        case BinaryOp::kNotEquals:
        case BinaryOp::kLess:
        case BinaryOp::kLessEquals:
        case BinaryOp::kGreater:
        case BinaryOp::kGreaterEquals:
        case BinaryOp::kLike:
          return DataType::kBoolean;
        case BinaryOp::kDivide:
          return DataType::kReal;  // division is always real (EvalBinary)
        case BinaryOp::kModulo:
          return DataType::kInteger;
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply: {
          std::optional<DataType> left = DeriveExprType(*b.left, ctx);
          std::optional<DataType> right = DeriveExprType(*b.right, ctx);
          if (!left.has_value() || !right.has_value()) return std::nullopt;
          if (*left == DataType::kInteger && *right == DataType::kInteger) {
            return DataType::kInteger;
          }
          bool left_num =
              *left == DataType::kInteger || *left == DataType::kReal;
          bool right_num =
              *right == DataType::kInteger || *right == DataType::kReal;
          if (left_num && right_num) return DataType::kReal;
          if (b.op == BinaryOp::kAdd && *left == DataType::kText &&
              *right == DataType::kText) {
            return DataType::kText;  // '+' concatenates two texts
          }
          return std::nullopt;  // evaluation will error
        }
      }
      return std::nullopt;
    }

    case ExprKind::kFunctionCall:
      return DeriveFunctionCall(static_cast<const sql::FunctionCallExpr&>(expr),
                                ctx);

    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kBetween:
      return DataType::kBoolean;

    case ExprKind::kScalarSubquery:
      return DeriveScalarSubquery(
          *static_cast<const sql::ScalarSubqueryExpr&>(expr).subquery, ctx);

    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      std::vector<std::optional<DataType>> branches;
      for (const auto& w : c.whens) {
        if (IsNullLiteral(*w.result)) continue;
        branches.push_back(DeriveExprType(*w.result, ctx));
      }
      if (c.else_result && !IsNullLiteral(*c.else_result)) {
        branches.push_back(DeriveExprType(*c.else_result, ctx));
      }
      return MergeBranchTypes(branches);
    }

    case ExprKind::kCast:
      return static_cast<const sql::CastExpr&>(expr).target;
  }
  return std::nullopt;
}

}  // namespace maybms::engine
