// Per-world executor entry points. Since the prepared-statement layer
// (engine/prepared.h) landed, these are single-shot wrappers: prepare the
// statement against the target database's schemas, execute once. Callers
// that evaluate one statement against many worlds (the world-set layer,
// Monte-Carlo sampling) hold a PreparedSelect/PreparedFromWhere directly
// and skip the per-call preparation.

#include "engine/executor.h"

#include "engine/prepared.h"

namespace maybms::engine {

bool HasWorldOps(const sql::SelectStatement& stmt) {
  if (stmt.quantifier != sql::WorldQuantifier::kNone) return true;
  if (stmt.repair.has_value() || stmt.choice.has_value()) return true;
  if (stmt.assert_condition || stmt.group_worlds_by) return true;
  if (stmt.union_next && HasWorldOps(*stmt.union_next)) return true;
  return false;
}

bool StatementHasAggregates(const sql::SelectStatement& stmt) {
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) return true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) return true;
  return false;
}

Result<Table> ExecuteFromWhere(const sql::SelectStatement& stmt,
                               const Database& db, const EvalContext* outer) {
  MAYBMS_ASSIGN_OR_RETURN(PreparedFromWhere plan,
                          PreparedFromWhere::Prepare(stmt, db, outer));
  return plan.Execute(db, outer);
}

Result<Table> ExecuteSelect(const sql::SelectStatement& stmt,
                            const Database& db, const EvalContext* outer) {
  MAYBMS_ASSIGN_OR_RETURN(PreparedSelect plan,
                          PreparedSelect::Prepare(stmt, db, outer));
  return plan.Execute(db, outer);
}

}  // namespace maybms::engine
