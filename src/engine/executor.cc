#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>

#include "base/string_util.h"
#include "engine/planner.h"
#include "engine/type_deriver.h"

namespace maybms::engine {

namespace {

using sql::SelectStatement;

/// A fully resolved select item: either a source column range (star) or an
/// expression with an output name.
struct OutputItem {
  const sql::Expr* expr = nullptr;  // null for star columns
  size_t source_column = 0;         // used when expr == nullptr
  std::string name;
};

Result<std::vector<OutputItem>> ResolveItems(const SelectStatement& stmt,
                                             const Schema& source) {
  std::vector<OutputItem> items;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      bool any = false;
      for (size_t i = 0; i < source.num_columns(); ++i) {
        const Column& col = source.column(i);
        if (!item.star_qualifier.empty() &&
            !AsciiEqualsIgnoreCase(col.qualifier, item.star_qualifier)) {
          continue;
        }
        OutputItem out;
        out.source_column = i;
        out.name = col.name;
        items.push_back(std::move(out));
        any = true;
      }
      if (!any) {
        return Status::InvalidArgument(
            item.star_qualifier.empty()
                ? "SELECT * with no FROM relation"
                : "unknown table alias: " + item.star_qualifier + ".*");
      }
      continue;
    }
    OutputItem out;
    out.expr = item.expr.get();
    if (!item.alias.empty()) {
      out.name = item.alias;
    } else if (item.expr->kind == sql::ExprKind::kColumnRef) {
      out.name = static_cast<const sql::ColumnRefExpr&>(*item.expr).name;
    } else if (item.expr->kind == sql::ExprKind::kFunctionCall) {
      out.name = static_cast<const sql::FunctionCallExpr&>(*item.expr).name;
    } else {
      out.name = "column" + std::to_string(items.size() + 1);
    }
    items.push_back(std::move(out));
  }
  return items;
}

/// Infers output column types statically: declared source type for star
/// columns, the type deriver (engine/type_deriver.h) for expressions, a
/// deterministic kText default where nothing can be derived. Produced rows
/// are never consulted: sampling would type an empty result differently
/// from a populated one — and, worse, differently across the two engine
/// representations (an empty partition vs. an empty enumerated world), so
/// static derivation is a correctness requirement, not a precision nicety.
/// NULL-padded LEFT-join columns likewise keep the joined table's declared
/// types because derivation reads the schema, never the padded values.
Schema InferOutputSchema(const std::vector<OutputItem>& items,
                         const Schema& source, const Database& db,
                         const EvalContext* outer) {
  EvalContext type_ctx;
  type_ctx.db = &db;
  type_ctx.schema = &source;
  type_ctx.outer = outer;
  Schema schema;
  for (const OutputItem& item : items) {
    DataType type = DataType::kText;
    if (item.expr == nullptr) {
      type = source.column(item.source_column).type;
    } else if (std::optional<DataType> derived =
                   DeriveExprType(*item.expr, type_ctx)) {
      type = *derived;
    }
    schema.AddColumn(Column(item.name, type));
  }
  return schema;
}

/// Evaluates the core (no UNION) of a select statement in one world.
Result<Table> ExecuteSimpleSelect(const SelectStatement& stmt,
                                  const Database& db,
                                  const EvalContext* outer) {
  MAYBMS_ASSIGN_OR_RETURN(Table joined, ExecuteFromWhere(stmt, db, outer));
  const Schema& source = joined.schema();

  MAYBMS_ASSIGN_OR_RETURN(std::vector<OutputItem> items,
                          ResolveItems(stmt, source));

  bool grouped = !stmt.group_by.empty() || StatementHasAggregates(stmt);

  // One subquery plan cache per select evaluation: EXISTS/IN/scalar
  // subqueries in the select list, HAVING, or ORDER BY are decorrelated or
  // evaluated once instead of re-executed per row (engine/planner.h).
  SubqueryCache subquery_cache;

  std::vector<Tuple> out_rows;
  // For ORDER BY we keep, per output row, a representative source row
  // (the row itself, or the group's first row).
  std::vector<Tuple> representative;

  if (grouped) {
    for (const OutputItem& item : items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
    }
    // Partition rows into groups by the GROUP BY key.
    std::map<Tuple, std::vector<Tuple>> groups;
    if (stmt.group_by.empty()) {
      groups.emplace(Tuple(), joined.rows());  // one global group (maybe empty)
    } else {
      for (const Tuple& row : joined.rows()) {
        EvalContext ctx{&db, &source, &row, outer, nullptr, &subquery_cache};
        Tuple key;
        for (const auto& g : stmt.group_by) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
          key.Append(std::move(v));
        }
        groups[std::move(key)].push_back(row);
      }
    }
    for (auto& [key, rows] : groups) {
      const Tuple* first = rows.empty() ? nullptr : &rows[0];
      EvalContext ctx{&db, rows.empty() ? nullptr : &source, first, outer,
                      &rows, &subquery_cache};
      if (stmt.having) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*stmt.having, ctx));
        if (keep != Trivalent::kTrue) continue;
      }
      Tuple out;
      for (const OutputItem& item : items) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        out.Append(std::move(v));
      }
      out_rows.push_back(std::move(out));
      representative.push_back(first ? *first : Tuple());
    }
  } else {
    for (const Tuple& row : joined.rows()) {
      EvalContext ctx{&db, &source, &row, outer, nullptr, &subquery_cache};
      Tuple out;
      for (const OutputItem& item : items) {
        if (item.expr == nullptr) {
          out.Append(row.value(item.source_column));
        } else {
          MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
          out.Append(std::move(v));
        }
      }
      out_rows.push_back(std::move(out));
      representative.push_back(row);
    }
  }

  Schema out_schema = InferOutputSchema(items, source, db, outer);

  // DISTINCT before ORDER BY (standard SQL evaluation order).
  if (stmt.distinct) {
    std::vector<size_t> order(out_rows.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return out_rows[a] < out_rows[b];
    });
    std::vector<Tuple> kept_rows;
    std::vector<Tuple> kept_repr;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0 && out_rows[order[i]] == out_rows[order[i - 1]]) continue;
      kept_rows.push_back(out_rows[order[i]]);
      kept_repr.push_back(representative[order[i]]);
    }
    out_rows = std::move(kept_rows);
    representative = std::move(kept_repr);
  }

  if (!stmt.order_by.empty()) {
    // Keys: each ORDER BY expression evaluated against the output row if it
    // names an output column, otherwise against the representative source
    // row.
    std::vector<std::vector<Value>> keys(out_rows.size());
    for (size_t i = 0; i < out_rows.size(); ++i) {
      for (const sql::OrderItem& item : stmt.order_by) {
        Value key;
        bool resolved = false;
        // ORDER BY <ordinal> names an output column (SQL-92 style).
        if (item.expr->kind == sql::ExprKind::kLiteral) {
          const Value& lit =
              static_cast<const sql::LiteralExpr&>(*item.expr).value;
          if (lit.type() == DataType::kInteger) {
            int64_t ordinal = lit.AsInteger();
            if (ordinal < 1 ||
                ordinal > static_cast<int64_t>(out_schema.num_columns())) {
              return Status::InvalidArgument(
                  "ORDER BY position " + std::to_string(ordinal) +
                  " is out of range");
            }
            key = out_rows[i].value(static_cast<size_t>(ordinal - 1));
            resolved = true;
          }
        }
        if (!resolved && item.expr->kind == sql::ExprKind::kColumnRef) {
          const auto& ref =
              static_cast<const sql::ColumnRefExpr&>(*item.expr);
          if (ref.qualifier.empty() && out_schema.HasColumn(ref.name)) {
            MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                                    out_schema.FindColumn(ref.name));
            key = out_rows[i].value(idx);
            resolved = true;
          }
        }
        if (!resolved) {
          EvalContext ctx{&db, &source, &representative[i], outer, nullptr,
                          &subquery_cache};
          MAYBMS_ASSIGN_OR_RETURN(key, EvalExpr(*item.expr, ctx));
        }
        keys[i].push_back(std::move(key));
      }
    }
    std::vector<size_t> order(out_rows.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        int c = keys[a][k].TotalOrderCompare(keys[b][k]);
        if (c != 0) return stmt.order_by[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Tuple> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : order) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }

  if (stmt.limit.has_value() &&
      out_rows.size() > static_cast<size_t>(*stmt.limit)) {
    out_rows.resize(static_cast<size_t>(std::max<int64_t>(0, *stmt.limit)));
  }

  return Table(std::move(out_schema), std::move(out_rows));
}

}  // namespace

bool HasWorldOps(const SelectStatement& stmt) {
  if (stmt.quantifier != sql::WorldQuantifier::kNone) return true;
  if (stmt.repair.has_value() || stmt.choice.has_value()) return true;
  if (stmt.assert_condition || stmt.group_worlds_by) return true;
  if (stmt.union_next && HasWorldOps(*stmt.union_next)) return true;
  return false;
}

bool StatementHasAggregates(const SelectStatement& stmt) {
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) return true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) return true;
  return false;
}

// ExecuteFromWhere — the hash-join FROM/WHERE pipeline — lives in
// engine/planner.cc.

Result<Table> ProjectTuples(const sql::SelectStatement& stmt,
                            const Database& db, const Schema& source,
                            const std::vector<Tuple>& rows) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<OutputItem> items,
                          ResolveItems(stmt, source));
  for (const OutputItem& item : items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      return Status::Unsupported(
          "aggregates cannot be combined with repair by key / choice of");
    }
  }
  SubqueryCache subquery_cache;
  std::vector<Tuple> out_rows;
  out_rows.reserve(rows.size());
  for (const Tuple& row : rows) {
    EvalContext ctx{&db, &source, &row, nullptr, nullptr, &subquery_cache};
    Tuple out;
    for (const OutputItem& item : items) {
      if (item.expr == nullptr) {
        out.Append(row.value(item.source_column));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        out.Append(std::move(v));
      }
    }
    out_rows.push_back(std::move(out));
  }
  Schema out_schema = InferOutputSchema(items, source, db, nullptr);
  return Table(std::move(out_schema), std::move(out_rows));
}

Result<Table> ExecuteSelect(const SelectStatement& stmt, const Database& db,
                            const EvalContext* outer) {
  if (HasWorldOps(stmt)) {
    return Status::Unsupported(
        "world-set operations (possible/certain/conf, repair by key, choice "
        "of, assert, group worlds by) cannot run inside the per-world "
        "executor");
  }

  MAYBMS_ASSIGN_OR_RETURN(Table result, ExecuteSimpleSelect(stmt, db, outer));

  const SelectStatement* link = &stmt;
  Table acc = std::move(result);
  while (link->union_next) {
    sql::SetOpKind op = link->set_op;
    const SelectStatement& next = *link->union_next;
    MAYBMS_ASSIGN_OR_RETURN(Table rhs, ExecuteSimpleSelect(next, db, outer));
    if (rhs.schema().num_columns() != acc.schema().num_columns()) {
      return Status::InvalidArgument(
          "set operation operands differ in column count: " +
          std::to_string(acc.schema().num_columns()) + " vs " +
          std::to_string(rhs.schema().num_columns()));
    }
    switch (op) {
      case sql::SetOpKind::kUnionAll:
        for (const Tuple& row : rhs.rows()) acc.AppendUnchecked(row);
        break;
      case sql::SetOpKind::kUnion:
        for (const Tuple& row : rhs.rows()) acc.AppendUnchecked(row);
        acc.DeduplicateRows();
        break;
      case sql::SetOpKind::kIntersect: {
        Table rhs_distinct = rhs.SortedDistinct();
        Table lhs_distinct = acc.SortedDistinct();
        Table kept(acc.schema());
        for (const Tuple& row : lhs_distinct.rows()) {
          if (rhs_distinct.ContainsTuple(row)) kept.AppendUnchecked(row);
        }
        acc = std::move(kept);
        break;
      }
      case sql::SetOpKind::kExcept: {
        Table rhs_distinct = rhs.SortedDistinct();
        Table lhs_distinct = acc.SortedDistinct();
        Table kept(acc.schema());
        for (const Tuple& row : lhs_distinct.rows()) {
          if (!rhs_distinct.ContainsTuple(row)) kept.AppendUnchecked(row);
        }
        acc = std::move(kept);
        break;
      }
    }
    link = &next;
  }
  return acc;
}

}  // namespace maybms::engine
