#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>

#include "base/string_util.h"

namespace maybms::engine {

namespace {

using sql::SelectStatement;

/// A fully resolved select item: either a source column range (star) or an
/// expression with an output name.
struct OutputItem {
  const sql::Expr* expr = nullptr;  // null for star columns
  size_t source_column = 0;         // used when expr == nullptr
  std::string name;
};

Result<std::vector<OutputItem>> ResolveItems(const SelectStatement& stmt,
                                             const Schema& source) {
  std::vector<OutputItem> items;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      bool any = false;
      for (size_t i = 0; i < source.num_columns(); ++i) {
        const Column& col = source.column(i);
        if (!item.star_qualifier.empty() &&
            !AsciiEqualsIgnoreCase(col.qualifier, item.star_qualifier)) {
          continue;
        }
        OutputItem out;
        out.source_column = i;
        out.name = col.name;
        items.push_back(std::move(out));
        any = true;
      }
      if (!any) {
        return Status::InvalidArgument(
            item.star_qualifier.empty()
                ? "SELECT * with no FROM relation"
                : "unknown table alias: " + item.star_qualifier + ".*");
      }
      continue;
    }
    OutputItem out;
    out.expr = item.expr.get();
    if (!item.alias.empty()) {
      out.name = item.alias;
    } else if (item.expr->kind == sql::ExprKind::kColumnRef) {
      out.name = static_cast<const sql::ColumnRefExpr&>(*item.expr).name;
    } else if (item.expr->kind == sql::ExprKind::kFunctionCall) {
      out.name = static_cast<const sql::FunctionCallExpr&>(*item.expr).name;
    } else {
      out.name = "column" + std::to_string(items.size() + 1);
    }
    items.push_back(std::move(out));
  }
  return items;
}

/// Static type of an expression where it can be known without evaluating
/// rows: declared source type for column references, the literal's type,
/// the cast target. Returns nullopt for everything else.
std::optional<DataType> StaticExprType(const sql::Expr& expr,
                                       const Schema& source) {
  switch (expr.kind) {
    case sql::ExprKind::kLiteral: {
      const Value& v = static_cast<const sql::LiteralExpr&>(expr).value;
      if (v.is_null()) return std::nullopt;
      return v.type();
    }
    case sql::ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      Result<size_t> idx = source.FindColumn(ref.name, ref.qualifier);
      if (!idx.ok()) return std::nullopt;  // unknown/ambiguous: fall back
      return source.column(*idx).type;
    }
    case sql::ExprKind::kCast:
      return static_cast<const sql::CastExpr&>(expr).target;
    default:
      return std::nullopt;
  }
}

/// Infers output column types: declared source type for star columns and
/// statically typed expressions; first non-null produced value otherwise.
/// The static path matters for correctness, not just precision: a derived
/// relation materialized from an empty (partition of a) source must still
/// carry the source's declared column types, or later inserts/queries
/// would see a schema that disagrees across engine representations.
Schema InferOutputSchema(const std::vector<OutputItem>& items,
                         const Schema& source,
                         const std::vector<Tuple>& rows) {
  Schema schema;
  for (size_t i = 0; i < items.size(); ++i) {
    DataType type = DataType::kText;
    if (items[i].expr == nullptr) {
      type = source.column(items[i].source_column).type;
    } else if (std::optional<DataType> static_type =
                   StaticExprType(*items[i].expr, source)) {
      type = *static_type;
    } else {
      for (const Tuple& row : rows) {
        if (!row.value(i).is_null()) {
          type = row.value(i).type();
          break;
        }
      }
    }
    schema.AddColumn(Column(items[i].name, type));
  }
  return schema;
}

bool StatementHasAggregates(const SelectStatement& stmt) {
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) return true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) return true;
  return false;
}

/// Evaluates the core (no UNION) of a select statement in one world.
Result<Table> ExecuteSimpleSelect(const SelectStatement& stmt,
                                  const Database& db,
                                  const EvalContext* outer) {
  MAYBMS_ASSIGN_OR_RETURN(Table joined, ExecuteFromWhere(stmt, db, outer));
  const Schema& source = joined.schema();

  MAYBMS_ASSIGN_OR_RETURN(std::vector<OutputItem> items,
                          ResolveItems(stmt, source));

  bool grouped = !stmt.group_by.empty() || StatementHasAggregates(stmt);

  std::vector<Tuple> out_rows;
  // For ORDER BY we keep, per output row, a representative source row
  // (the row itself, or the group's first row).
  std::vector<Tuple> representative;

  if (grouped) {
    for (const OutputItem& item : items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
    }
    // Partition rows into groups by the GROUP BY key.
    std::map<Tuple, std::vector<Tuple>> groups;
    if (stmt.group_by.empty()) {
      groups.emplace(Tuple(), joined.rows());  // one global group (maybe empty)
    } else {
      for (const Tuple& row : joined.rows()) {
        EvalContext ctx{&db, &source, &row, outer, nullptr};
        Tuple key;
        for (const auto& g : stmt.group_by) {
          MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
          key.Append(std::move(v));
        }
        groups[std::move(key)].push_back(row);
      }
    }
    for (auto& [key, rows] : groups) {
      const Tuple* first = rows.empty() ? nullptr : &rows[0];
      EvalContext ctx{&db, rows.empty() ? nullptr : &source, first, outer,
                      &rows};
      if (stmt.having) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*stmt.having, ctx));
        if (keep != Trivalent::kTrue) continue;
      }
      Tuple out;
      for (const OutputItem& item : items) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        out.Append(std::move(v));
      }
      out_rows.push_back(std::move(out));
      representative.push_back(first ? *first : Tuple());
    }
  } else {
    for (const Tuple& row : joined.rows()) {
      EvalContext ctx{&db, &source, &row, outer, nullptr};
      Tuple out;
      for (const OutputItem& item : items) {
        if (item.expr == nullptr) {
          out.Append(row.value(item.source_column));
        } else {
          MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
          out.Append(std::move(v));
        }
      }
      out_rows.push_back(std::move(out));
      representative.push_back(row);
    }
  }

  Schema out_schema = InferOutputSchema(items, source, out_rows);

  // DISTINCT before ORDER BY (standard SQL evaluation order).
  if (stmt.distinct) {
    std::vector<size_t> order(out_rows.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return out_rows[a] < out_rows[b];
    });
    std::vector<Tuple> kept_rows;
    std::vector<Tuple> kept_repr;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0 && out_rows[order[i]] == out_rows[order[i - 1]]) continue;
      kept_rows.push_back(out_rows[order[i]]);
      kept_repr.push_back(representative[order[i]]);
    }
    out_rows = std::move(kept_rows);
    representative = std::move(kept_repr);
  }

  if (!stmt.order_by.empty()) {
    // Keys: each ORDER BY expression evaluated against the output row if it
    // names an output column, otherwise against the representative source
    // row.
    std::vector<std::vector<Value>> keys(out_rows.size());
    for (size_t i = 0; i < out_rows.size(); ++i) {
      for (const sql::OrderItem& item : stmt.order_by) {
        Value key;
        bool resolved = false;
        // ORDER BY <ordinal> names an output column (SQL-92 style).
        if (item.expr->kind == sql::ExprKind::kLiteral) {
          const Value& lit =
              static_cast<const sql::LiteralExpr&>(*item.expr).value;
          if (lit.type() == DataType::kInteger) {
            int64_t ordinal = lit.AsInteger();
            if (ordinal < 1 ||
                ordinal > static_cast<int64_t>(out_schema.num_columns())) {
              return Status::InvalidArgument(
                  "ORDER BY position " + std::to_string(ordinal) +
                  " is out of range");
            }
            key = out_rows[i].value(static_cast<size_t>(ordinal - 1));
            resolved = true;
          }
        }
        if (!resolved && item.expr->kind == sql::ExprKind::kColumnRef) {
          const auto& ref =
              static_cast<const sql::ColumnRefExpr&>(*item.expr);
          if (ref.qualifier.empty() && out_schema.HasColumn(ref.name)) {
            MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                                    out_schema.FindColumn(ref.name));
            key = out_rows[i].value(idx);
            resolved = true;
          }
        }
        if (!resolved) {
          EvalContext ctx{&db, &source, &representative[i], outer, nullptr};
          MAYBMS_ASSIGN_OR_RETURN(key, EvalExpr(*item.expr, ctx));
        }
        keys[i].push_back(std::move(key));
      }
    }
    std::vector<size_t> order(out_rows.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        int c = keys[a][k].TotalOrderCompare(keys[b][k]);
        if (c != 0) return stmt.order_by[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Tuple> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : order) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }

  if (stmt.limit.has_value() &&
      out_rows.size() > static_cast<size_t>(*stmt.limit)) {
    out_rows.resize(static_cast<size_t>(std::max<int64_t>(0, *stmt.limit)));
  }

  return Table(std::move(out_schema), std::move(out_rows));
}

}  // namespace

bool HasWorldOps(const SelectStatement& stmt) {
  if (stmt.quantifier != sql::WorldQuantifier::kNone) return true;
  if (stmt.repair.has_value() || stmt.choice.has_value()) return true;
  if (stmt.assert_condition || stmt.group_worlds_by) return true;
  if (stmt.union_next && HasWorldOps(*stmt.union_next)) return true;
  return false;
}

Result<Table> ExecuteFromWhere(const SelectStatement& stmt, const Database& db,
                               const EvalContext* outer) {
  Schema schema;
  std::vector<Tuple> rows = {Tuple()};

  for (const sql::TableRef& ref : stmt.from) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table, db.GetRelation(ref.table_name));
    Schema qualified = table->schema().WithQualifier(ref.effective_alias());
    Schema next_schema = Schema::Concat(schema, qualified);
    std::vector<Tuple> next_rows;
    next_rows.reserve(rows.size() * std::max<size_t>(1, table->num_rows()));
    for (const Tuple& left : rows) {
      for (const Tuple& right : table->rows()) {
        next_rows.push_back(Tuple::Concat(left, right));
      }
    }
    schema = std::move(next_schema);
    rows = std::move(next_rows);
  }

  // Explicit JOIN ... ON clauses (nested-loop; LEFT joins pad with NULLs).
  for (const sql::JoinClause& join : stmt.joins) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table,
                            db.GetRelation(join.table.table_name));
    Schema qualified =
        table->schema().WithQualifier(join.table.effective_alias());
    Schema next_schema = Schema::Concat(schema, qualified);
    std::vector<Tuple> next_rows;
    for (const Tuple& left : rows) {
      bool matched = false;
      for (const Tuple& right : table->rows()) {
        Tuple combined = Tuple::Concat(left, right);
        EvalContext ctx{&db, &next_schema, &combined, outer, nullptr};
        MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*join.on, ctx));
        if (keep == Trivalent::kTrue) {
          matched = true;
          next_rows.push_back(std::move(combined));
        }
      }
      if (!matched && join.kind == sql::JoinKind::kLeftOuter) {
        Tuple padded = left;
        for (size_t i = 0; i < qualified.num_columns(); ++i) {
          padded.Append(Value::Null());
        }
        next_rows.push_back(std::move(padded));
      }
    }
    schema = std::move(next_schema);
    rows = std::move(next_rows);
  }

  if (stmt.where) {
    std::vector<Tuple> filtered;
    for (Tuple& row : rows) {
      EvalContext ctx{&db, &schema, &row, outer, nullptr};
      MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*stmt.where, ctx));
      if (keep == Trivalent::kTrue) filtered.push_back(std::move(row));
    }
    rows = std::move(filtered);
  }

  return Table(std::move(schema), std::move(rows));
}

Result<Table> ProjectTuples(const sql::SelectStatement& stmt,
                            const Database& db, const Schema& source,
                            const std::vector<Tuple>& rows) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<OutputItem> items,
                          ResolveItems(stmt, source));
  for (const OutputItem& item : items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      return Status::Unsupported(
          "aggregates cannot be combined with repair by key / choice of");
    }
  }
  std::vector<Tuple> out_rows;
  out_rows.reserve(rows.size());
  for (const Tuple& row : rows) {
    EvalContext ctx{&db, &source, &row, nullptr, nullptr};
    Tuple out;
    for (const OutputItem& item : items) {
      if (item.expr == nullptr) {
        out.Append(row.value(item.source_column));
      } else {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        out.Append(std::move(v));
      }
    }
    out_rows.push_back(std::move(out));
  }
  Schema out_schema = InferOutputSchema(items, source, out_rows);
  return Table(std::move(out_schema), std::move(out_rows));
}

Result<Table> ExecuteSelect(const SelectStatement& stmt, const Database& db,
                            const EvalContext* outer) {
  if (HasWorldOps(stmt)) {
    return Status::Unsupported(
        "world-set operations (possible/certain/conf, repair by key, choice "
        "of, assert, group worlds by) cannot run inside the per-world "
        "executor");
  }

  MAYBMS_ASSIGN_OR_RETURN(Table result, ExecuteSimpleSelect(stmt, db, outer));

  const SelectStatement* link = &stmt;
  Table acc = std::move(result);
  while (link->union_next) {
    sql::SetOpKind op = link->set_op;
    const SelectStatement& next = *link->union_next;
    MAYBMS_ASSIGN_OR_RETURN(Table rhs, ExecuteSimpleSelect(next, db, outer));
    if (rhs.schema().num_columns() != acc.schema().num_columns()) {
      return Status::InvalidArgument(
          "set operation operands differ in column count: " +
          std::to_string(acc.schema().num_columns()) + " vs " +
          std::to_string(rhs.schema().num_columns()));
    }
    switch (op) {
      case sql::SetOpKind::kUnionAll:
        for (const Tuple& row : rhs.rows()) acc.AppendUnchecked(row);
        break;
      case sql::SetOpKind::kUnion:
        for (const Tuple& row : rhs.rows()) acc.AppendUnchecked(row);
        acc.DeduplicateRows();
        break;
      case sql::SetOpKind::kIntersect: {
        Table rhs_distinct = rhs.SortedDistinct();
        Table lhs_distinct = acc.SortedDistinct();
        Table kept(acc.schema());
        for (const Tuple& row : lhs_distinct.rows()) {
          if (rhs_distinct.ContainsTuple(row)) kept.AppendUnchecked(row);
        }
        acc = std::move(kept);
        break;
      }
      case sql::SetOpKind::kExcept: {
        Table rhs_distinct = rhs.SortedDistinct();
        Table lhs_distinct = acc.SortedDistinct();
        Table kept(acc.schema());
        for (const Tuple& row : lhs_distinct.rows()) {
          if (!rhs_distinct.ContainsTuple(row)) kept.AppendUnchecked(row);
        }
        acc = std::move(kept);
        break;
      }
    }
    link = &next;
  }
  return acc;
}

}  // namespace maybms::engine
