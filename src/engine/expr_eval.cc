#include "engine/expr_eval.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/string_util.h"
#include "engine/executor.h"
#include "engine/planner.h"

namespace maybms::engine {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

Trivalent ValueToTrivalent(const Value& v) {
  if (v.is_null()) return Trivalent::kUnknown;
  if (v.type() == DataType::kBoolean) {
    return v.AsBoolean() ? Trivalent::kTrue : Trivalent::kFalse;
  }
  // Non-boolean non-null values are truthy only if numeric non-zero
  // (lenient, PostgreSQL would reject; we accept for convenience).
  if (v.IsNumeric()) {
    return v.NumericValue() != 0 ? Trivalent::kTrue : Trivalent::kFalse;
  }
  return Trivalent::kTrue;
}

/// Looks `qualifier.name` up through the context chain.
Result<Value> ResolveColumn(const sql::ColumnRefExpr& ref,
                            const EvalContext& ctx) {
  for (const EvalContext* c = &ctx; c != nullptr; c = c->outer) {
    if (c->schema == nullptr || c->row == nullptr) continue;
    if (c->schema->HasColumn(ref.name, ref.qualifier)) {
      MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                              c->schema->FindColumn(ref.name, ref.qualifier));
      return c->row->value(idx);
    }
  }
  return Status::NotFound("column not found: " +
                          (ref.qualifier.empty()
                               ? ref.name
                               : ref.qualifier + "." + ref.name));
}

Result<Value> EvalBinary(const sql::BinaryExpr& expr, const EvalContext& ctx) {
  // AND/OR need lazy semantics for three-valued logic.
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    MAYBMS_ASSIGN_OR_RETURN(Trivalent left, EvalPredicate(*expr.left, ctx));
    if (expr.op == BinaryOp::kAnd && left == Trivalent::kFalse) {
      return Value::Boolean(false);
    }
    if (expr.op == BinaryOp::kOr && left == Trivalent::kTrue) {
      return Value::Boolean(true);
    }
    MAYBMS_ASSIGN_OR_RETURN(Trivalent right, EvalPredicate(*expr.right, ctx));
    Trivalent result = expr.op == BinaryOp::kAnd ? TrivalentAnd(left, right)
                                                 : TrivalentOr(left, right);
    return TrivalentToValue(result);
  }

  MAYBMS_ASSIGN_OR_RETURN(Value left, EvalExpr(*expr.left, ctx));
  MAYBMS_ASSIGN_OR_RETURN(Value right, EvalExpr(*expr.right, ctx));

  switch (expr.op) {
    case BinaryOp::kEquals: {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent t, left.SqlEquals(right));
      return TrivalentToValue(t);
    }
    case BinaryOp::kNotEquals: {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent t, left.SqlEquals(right));
      return TrivalentToValue(TrivalentNot(t));
    }
    case BinaryOp::kLess: {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent t, left.SqlLess(right));
      return TrivalentToValue(t);
    }
    case BinaryOp::kGreaterEquals: {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent t, left.SqlLess(right));
      return TrivalentToValue(TrivalentNot(t));
    }
    case BinaryOp::kGreater: {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent t, right.SqlLess(left));
      return TrivalentToValue(t);
    }
    case BinaryOp::kLessEquals: {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent t, right.SqlLess(left));
      return TrivalentToValue(TrivalentNot(t));
    }
    case BinaryOp::kLike: {
      if (left.is_null() || right.is_null()) return Value::Null();
      if (left.type() != DataType::kText || right.type() != DataType::kText) {
        return Status::TypeError("LIKE requires text operands");
      }
      return Value::Boolean(LikeMatch(left.AsText(), right.AsText()));
    }
    default:
      break;
  }

  // Arithmetic.
  if (left.is_null() || right.is_null()) return Value::Null();
  if (!left.IsNumeric() || !right.IsNumeric()) {
    // Allow '+' as concatenation of two texts for convenience.
    if (expr.op == BinaryOp::kAdd && left.type() == DataType::kText &&
        right.type() == DataType::kText) {
      return Value::Text(left.AsText() + right.AsText());
    }
    return Status::TypeError(std::string("arithmetic on non-numeric types: ") +
                             DataTypeToString(left.type()) + " " +
                             sql::BinaryOpToString(expr.op) + " " +
                             DataTypeToString(right.type()));
  }
  bool both_int = left.type() == DataType::kInteger &&
                  right.type() == DataType::kInteger;
  switch (expr.op) {
    case BinaryOp::kAdd:
      return both_int ? Value::Integer(left.AsInteger() + right.AsInteger())
                      : Value::Real(left.NumericValue() + right.NumericValue());
    case BinaryOp::kSubtract:
      return both_int ? Value::Integer(left.AsInteger() - right.AsInteger())
                      : Value::Real(left.NumericValue() - right.NumericValue());
    case BinaryOp::kMultiply:
      return both_int ? Value::Integer(left.AsInteger() * right.AsInteger())
                      : Value::Real(left.NumericValue() * right.NumericValue());
    case BinaryOp::kDivide:
      // Division is always real to avoid silent truncation in weight
      // arithmetic (documented deviation from PostgreSQL int division).
      if (right.NumericValue() == 0) {
        return Status::RuntimeError("division by zero");
      }
      return Value::Real(left.NumericValue() / right.NumericValue());
    case BinaryOp::kModulo:
      if (!both_int) return Status::TypeError("% requires integer operands");
      if (right.AsInteger() == 0) {
        return Status::RuntimeError("modulo by zero");
      }
      return Value::Integer(left.AsInteger() % right.AsInteger());
    default:
      return Status::RuntimeError("unhandled binary operator");
  }
}

bool IsDistinctSensitive(const std::string& name) {
  return name == "sum" || name == "count" || name == "avg";
}

Result<Value> EvalAggregate(const sql::FunctionCallExpr& call,
                            const EvalContext& ctx) {
  if (ctx.group_rows == nullptr) {
    return Status::InvalidArgument("aggregate function " + call.name +
                                   " used outside of an aggregate query");
  }
  const std::vector<Tuple>& rows = *ctx.group_rows;

  if (call.star) {
    if (call.name != "count") {
      return Status::InvalidArgument(call.name + "(*) is not valid");
    }
    return Value::Integer(static_cast<int64_t>(rows.size()));
  }
  if (call.args.size() != 1) {
    return Status::InvalidArgument("aggregate " + call.name +
                                   " takes exactly one argument");
  }

  // Evaluate the argument once per group row (with group_rows masked so a
  // nested column ref reads the row, not the group).
  std::vector<Value> inputs;
  inputs.reserve(rows.size());
  for (const Tuple& row : rows) {
    EvalContext row_ctx = ctx;
    row_ctx.row = &row;
    row_ctx.group_rows = nullptr;
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*call.args[0], row_ctx));
    if (!v.is_null()) inputs.push_back(std::move(v));
  }

  if (call.distinct && IsDistinctSensitive(call.name)) {
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  }

  if (call.name == "count") {
    return Value::Integer(static_cast<int64_t>(inputs.size()));
  }
  if (inputs.empty()) return Value::Null();

  if (call.name == "min" || call.name == "max") {
    Value best = inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent less, inputs[i].SqlLess(best));
      bool take = call.name == "min" ? less == Trivalent::kTrue
                                     : less == Trivalent::kFalse;
      if (call.name == "max") {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent greater, best.SqlLess(inputs[i]));
        take = greater == Trivalent::kTrue;
      }
      if (take) best = inputs[i];
    }
    return best;
  }

  // sum / avg need numerics.
  bool all_int = true;
  double sum = 0;
  int64_t isum = 0;
  for (const Value& v : inputs) {
    if (!v.IsNumeric()) {
      return Status::TypeError(call.name + " over non-numeric values");
    }
    if (v.type() == DataType::kInteger) {
      isum += v.AsInteger();
    } else {
      all_int = false;
    }
    sum += v.NumericValue();
  }
  if (call.name == "sum") {
    return all_int ? Value::Integer(isum) : Value::Real(sum);
  }
  if (call.name == "avg") {
    return Value::Real(sum / static_cast<double>(inputs.size()));
  }
  return Status::InvalidArgument("unknown aggregate: " + call.name);
}

Result<Value> EvalScalarFunction(const sql::FunctionCallExpr& call,
                                 const EvalContext& ctx) {
  std::vector<Value> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, ctx));
    args.push_back(std::move(v));
  }
  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(call.name + " takes " +
                                     std::to_string(n) + " argument(s)");
    }
    return Status::OK();
  };

  if (call.name == "abs") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kInteger) {
      return Value::Integer(std::llabs(args[0].AsInteger()));
    }
    if (args[0].type() == DataType::kReal) {
      return Value::Real(std::fabs(args[0].AsReal()));
    }
    return Status::TypeError("abs requires a numeric argument");
  }
  if (call.name == "round") {
    if (args.size() != 1 && args.size() != 2) {
      return Status::InvalidArgument("round takes 1 or 2 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    if (!args[0].IsNumeric()) {
      return Status::TypeError("round requires a numeric argument");
    }
    double scale = 1;
    if (args.size() == 2) {
      if (!args[1].IsNumeric()) {
        return Status::TypeError("round digit count must be numeric");
      }
      scale = std::pow(10.0, args[1].NumericValue());
    }
    return Value::Real(std::round(args[0].NumericValue() * scale) / scale);
  }
  if (call.name == "lower" || call.name == "upper") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != DataType::kText) {
      return Status::TypeError(call.name + " requires a text argument");
    }
    return Value::Text(call.name == "lower" ? AsciiToLower(args[0].AsText())
                                            : AsciiToUpper(args[0].AsText()));
  }
  if (call.name == "length") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != DataType::kText) {
      return Status::TypeError("length requires a text argument");
    }
    return Value::Integer(static_cast<int64_t>(args[0].AsText().size()));
  }
  if (call.name == "coalesce") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (call.name == "nullif") {
    MAYBMS_RETURN_NOT_OK(require_args(2));
    if (args[0].is_null()) return Value::Null();
    MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, args[0].SqlEquals(args[1]));
    return eq == Trivalent::kTrue ? Value::Null() : args[0];
  }
  if (call.name == "floor" || call.name == "ceil" || call.name == "ceiling") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].IsNumeric()) {
      return Status::TypeError(call.name + " requires a numeric argument");
    }
    double v = args[0].NumericValue();
    return Value::Integer(static_cast<int64_t>(
        call.name == "floor" ? std::floor(v) : std::ceil(v)));
  }
  if (call.name == "sign") {
    MAYBMS_RETURN_NOT_OK(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].IsNumeric()) {
      return Status::TypeError("sign requires a numeric argument");
    }
    double v = args[0].NumericValue();
    return Value::Integer(v > 0 ? 1 : (v < 0 ? -1 : 0));
  }
  if (call.name == "mod") {
    MAYBMS_RETURN_NOT_OK(require_args(2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (args[0].type() != DataType::kInteger ||
        args[1].type() != DataType::kInteger) {
      return Status::TypeError("mod requires integer arguments");
    }
    if (args[1].AsInteger() == 0) {
      return Status::RuntimeError("modulo by zero");
    }
    return Value::Integer(args[0].AsInteger() % args[1].AsInteger());
  }
  if (call.name == "substr" || call.name == "substring") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::InvalidArgument("substr takes 2 or 3 arguments");
    }
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (args[0].type() != DataType::kText || !args[1].IsNumeric()) {
      return Status::TypeError("substr(text, start [, length])");
    }
    const std::string& s = args[0].AsText();
    // 1-based start, clamped to the string (PostgreSQL-like).
    int64_t start = static_cast<int64_t>(args[1].NumericValue());
    int64_t len = args.size() == 3 && !args[2].is_null()
                      ? static_cast<int64_t>(args[2].NumericValue())
                      : static_cast<int64_t>(s.size()) + 1;
    if (len < 0) return Status::InvalidArgument("negative substr length");
    int64_t begin = std::max<int64_t>(start, 1);
    int64_t end = start + len;  // exclusive, 1-based
    if (begin >= end || begin > static_cast<int64_t>(s.size())) {
      return Value::Text("");
    }
    end = std::min<int64_t>(end, static_cast<int64_t>(s.size()) + 1);
    return Value::Text(s.substr(static_cast<size_t>(begin - 1),
                                static_cast<size_t>(end - begin)));
  }
  if (call.name == "replace") {
    MAYBMS_RETURN_NOT_OK(require_args(3));
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      if (v.type() != DataType::kText) {
        return Status::TypeError("replace requires text arguments");
      }
    }
    const std::string& from = args[1].AsText();
    if (from.empty()) return args[0];
    std::string out;
    const std::string& s = args[0].AsText();
    size_t pos = 0;
    while (true) {
      size_t next = s.find(from, pos);
      if (next == std::string::npos) {
        out += s.substr(pos);
        break;
      }
      out += s.substr(pos, next - pos);
      out += args[2].AsText();
      pos = next + from.size();
    }
    return Value::Text(std::move(out));
  }
  if (call.name == "concat") {
    std::string out;
    for (const Value& v : args) {
      if (!v.is_null()) out += v.ToString();
    }
    return Value::Text(std::move(out));
  }
  return Status::InvalidArgument("unknown function: " + call.name);
}

}  // namespace

Value TrivalentToValue(Trivalent t) {
  switch (t) {
    case Trivalent::kTrue:
      return Value::Boolean(true);
    case Trivalent::kFalse:
      return Value::Boolean(false);
    case Trivalent::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

void ForEachChildExpr(const sql::Expr& expr,
                      const std::function<void(const sql::Expr&)>& fn) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
      return;  // leaves (subquery statements are scoped separately)
    case ExprKind::kUnary:
      fn(*static_cast<const sql::UnaryExpr&>(expr).operand);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      fn(*b.left);
      fn(*b.right);
      return;
    }
    case ExprKind::kFunctionCall:
      for (const auto& a : static_cast<const sql::FunctionCallExpr&>(expr).args) {
        fn(*a);
      }
      return;
    case ExprKind::kIsNull:
      fn(*static_cast<const sql::IsNullExpr&>(expr).operand);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      fn(*in.operand);
      for (const auto& i : in.items) fn(*i);
      return;
    }
    case ExprKind::kInSubquery:
      fn(*static_cast<const sql::InSubqueryExpr&>(expr).operand);
      return;
    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(expr);
      fn(*b.operand);
      fn(*b.low);
      fn(*b.high);
      return;
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& w : c.whens) {
        fn(*w.condition);
        fn(*w.result);
      }
      if (c.else_result) fn(*c.else_result);
      return;
    }
    case ExprKind::kCast:
      fn(*static_cast<const sql::CastExpr&>(expr).operand);
      return;
  }
}

bool IsAggregateFunction(const std::string& name) {
  return name == "sum" || name == "count" || name == "avg" || name == "min" ||
         name == "max";
}

bool ContainsAggregate(const sql::Expr& expr) {
  if (expr.kind == ExprKind::kFunctionCall &&
      IsAggregateFunction(
          static_cast<const sql::FunctionCallExpr&>(expr).name)) {
    return true;
  }
  // Subquery statements are not descended into: they aggregate
  // independently (ForEachChildExpr still visits the IN operand).
  bool found = false;
  ForEachChildExpr(expr, [&found](const sql::Expr& child) {
    if (!found) found = ContainsAggregate(child);
  });
  return found;
}

Result<Trivalent> EvalPredicate(const sql::Expr& expr,
                                const EvalContext& ctx) {
  MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, ctx));
  return ValueToTrivalent(v);
}

Result<Value> EvalExpr(const sql::Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const sql::LiteralExpr&>(expr).value;

    case ExprKind::kColumnRef:
      return ResolveColumn(static_cast<const sql::ColumnRefExpr&>(expr), ctx);

    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      if (u.op == UnaryOp::kNot) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent t, EvalPredicate(*u.operand, ctx));
        return TrivalentToValue(TrivalentNot(t));
      }
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*u.operand, ctx));
      if (v.is_null()) return Value::Null();
      if (v.type() == DataType::kInteger) return Value::Integer(-v.AsInteger());
      if (v.type() == DataType::kReal) return Value::Real(-v.AsReal());
      return Status::TypeError("unary minus on non-numeric value");
    }

    case ExprKind::kBinary:
      return EvalBinary(static_cast<const sql::BinaryExpr&>(expr), ctx);

    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const sql::FunctionCallExpr&>(expr);
      if (IsAggregateFunction(f.name)) return EvalAggregate(f, ctx);
      return EvalScalarFunction(f, ctx);
    }

    case ExprKind::kIsNull: {
      const auto& n = static_cast<const sql::IsNullExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*n.operand, ctx));
      return Value::Boolean(n.negated ? !v.is_null() : v.is_null());
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Value operand, EvalExpr(*in.operand, ctx));
      Trivalent found = Trivalent::kFalse;
      for (const auto& item : in.items) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item, ctx));
        MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand.SqlEquals(v));
        found = TrivalentOr(found, eq);
        if (found == Trivalent::kTrue) break;
      }
      return TrivalentToValue(in.negated ? TrivalentNot(found) : found);
    }

    case ExprKind::kInSubquery: {
      if (ctx.cache != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Value> cached,
                                EvalSubqueryViaCache(expr, ctx));
        if (cached.has_value()) return std::move(*cached);
      }
      const auto& in = static_cast<const sql::InSubqueryExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Value operand, EvalExpr(*in.operand, ctx));
      MAYBMS_ASSIGN_OR_RETURN(Table result,
                              ExecuteSelect(*in.subquery, *ctx.db, &ctx));
      if (result.schema().num_columns() != 1) {
        return Status::InvalidArgument(
            "IN subquery must return exactly one column");
      }
      Trivalent found = Trivalent::kFalse;
      for (const Tuple& row : result.rows()) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent eq, operand.SqlEquals(row.value(0)));
        found = TrivalentOr(found, eq);
        if (found == Trivalent::kTrue) break;
      }
      return TrivalentToValue(in.negated ? TrivalentNot(found) : found);
    }

    case ExprKind::kExists: {
      if (ctx.cache != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Value> cached,
                                EvalSubqueryViaCache(expr, ctx));
        if (cached.has_value()) return std::move(*cached);
      }
      const auto& ex = static_cast<const sql::ExistsExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Table result,
                              ExecuteSelect(*ex.subquery, *ctx.db, &ctx));
      bool exists = !result.empty();
      return Value::Boolean(ex.negated ? !exists : exists);
    }

    case ExprKind::kScalarSubquery: {
      if (ctx.cache != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(std::optional<Value> cached,
                                EvalSubqueryViaCache(expr, ctx));
        if (cached.has_value()) return std::move(*cached);
      }
      const auto& sub = static_cast<const sql::ScalarSubqueryExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Table result,
                              ExecuteSelect(*sub.subquery, *ctx.db, &ctx));
      if (result.schema().num_columns() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must return exactly one column");
      }
      if (result.empty()) return Value::Null();
      if (result.num_rows() > 1) {
        return Status::RuntimeError(
            "scalar subquery returned more than one row");
      }
      return result.row(0).value(0);
    }

    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*b.operand, ctx));
      MAYBMS_ASSIGN_OR_RETURN(Value lo, EvalExpr(*b.low, ctx));
      MAYBMS_ASSIGN_OR_RETURN(Value hi, EvalExpr(*b.high, ctx));
      MAYBMS_ASSIGN_OR_RETURN(Trivalent below, v.SqlLess(lo));
      MAYBMS_ASSIGN_OR_RETURN(Trivalent above, hi.SqlLess(v));
      Trivalent in_range =
          TrivalentAnd(TrivalentNot(below), TrivalentNot(above));
      return TrivalentToValue(b.negated ? TrivalentNot(in_range) : in_range);
    }

    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& w : c.whens) {
        MAYBMS_ASSIGN_OR_RETURN(Trivalent t, EvalPredicate(*w.condition, ctx));
        if (t == Trivalent::kTrue) return EvalExpr(*w.result, ctx);
      }
      if (c.else_result) return EvalExpr(*c.else_result, ctx);
      return Value::Null();
    }

    case ExprKind::kCast: {
      const auto& c = static_cast<const sql::CastExpr&>(expr);
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*c.operand, ctx));
      return v.CastTo(c.target);
    }
  }
  return Status::RuntimeError("unhandled expression kind");
}

}  // namespace maybms::engine
