#ifndef MAYBMS_ENGINE_PREPARED_H_
#define MAYBMS_ENGINE_PREPARED_H_

// Prepared statements: plan once per statement, execute once per world.
//
// Everything in this header is built from *schema-level* information only
// — relation schemas from a representative database, the statement's AST,
// and statically derived expression types. A prepared plan never captures
// world data: no rows, no hash tables over tuples, no per-world subquery
// results. That is the file's core invariant, and it is what makes a plan
// reusable across every world of a world-set (both backends guarantee all
// worlds share one schema catalog; only relation *contents* differ per
// world).
//
// Ownership and lifetime rules:
//  * A prepared plan borrows the statement's AST (`const Expr*` /
//    `const SelectStatement*` pointers). The statement must outlive the
//    plan.
//  * `Prepare` takes a "schema database": any database whose relation
//    schemas match those the plan will execute against (for a world-set,
//    any single world, or the decomposed engine's certain core).
//    Executing a plan against a database with different schemas is
//    undefined.
//  * The `outer` evaluation-context chain passed to Execute must be
//    schema-compatible with the one passed to Prepare (the world-set
//    layer always passes null for both).
//  * Plans own the per-statement SubqueryPlanCache instances (see
//    engine/planner.h): subquery *analysis* is shared across executions,
//    subquery *results* (materialized rows, hash semi-join maps, constant
//    values) live in a per-execution SubqueryCache and die with it.
//
// Trivalent-logic / NULL-key rules are inherited wholesale from the
// planner (engine/planner.h): preparation only decides *where* each
// conjunct is evaluated (scan filter, hash key, residual, final filter);
// every predicate decision is still made by EvalPredicate/SqlEquals, NULL
// or NaN join keys never match, and LEFT-join padding applies on empty
// match sets exactly as in the nested-loop definition.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "engine/expr_eval.h"
#include "engine/planner.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace maybms::engine {

/// A fully resolved select item: either a source column (star expansion)
/// or an expression with an output name.
struct OutputItem {
  const sql::Expr* expr = nullptr;  // null for star columns
  size_t source_column = 0;         // used when expr == nullptr
  std::string name;
};

/// The FROM/WHERE pipeline of one statement, planned against schemas:
/// conjuncts classified per join stage into scan filters, hash-join keys,
/// and residuals; unconsumed conjuncts routed to the final filter. Tables
/// are re-resolved by name on every Execute, so one plan serves any
/// number of schema-compatible worlds.
class PreparedFromWhere {
 public:
  static Result<PreparedFromWhere> Prepare(const sql::SelectStatement& stmt,
                                           const Database& schema_db,
                                           const EvalContext* outer = nullptr);

  PreparedFromWhere(PreparedFromWhere&&) = default;
  PreparedFromWhere& operator=(PreparedFromWhere&&) = default;

  /// One execution's result rows without forcing a materialized copy:
  /// the rows either borrow the base table (single-table predicate-free
  /// statements — the per-world repair/choice and simple aggregate hot
  /// path) or live in `owned_rows`; the schema always points into the
  /// plan. The borrow goes through Database::GetRelation's raw pointer,
  /// i.e. straight through the copy-on-write shared-table handle with no
  /// refcount churn in the per-world loop (storage/catalog.h). A View
  /// must not outlive the plan or the database it was executed against.
  struct View {
    std::vector<Tuple> owned_rows;
    const Schema* schema = nullptr;
    const std::vector<Tuple>* borrowed = nullptr;  // null: rows are owned

    const std::vector<Tuple>& rows() const {
      return borrowed != nullptr ? *borrowed : owned_rows;
    }
  };

  Result<View> ExecuteView(const Database& db,
                           const EvalContext* outer = nullptr);

  /// Materializing wrapper (copies the passthrough case).
  Result<Table> Execute(const Database& db, const EvalContext* outer = nullptr);

  /// The alias-qualified output schema (statically known).
  const Schema& output_schema() const { return output_schema_; }

 private:
  friend class PreparedSelect;  // branches hold a default-constructed plan

  PreparedFromWhere() = default;

  /// One FROM item or JOIN clause with everything preparation decided for
  /// its join stage.
  struct Stage {
    bool left_join = false;
    std::string relation;  // resolved per world by name
    Schema schema;         // alias-qualified
    Schema acc_schema;     // accumulated schema before this stage
    Schema stage_schema;   // accumulated schema including this stage
    std::vector<const sql::Expr*> scan_filters;
    std::vector<const sql::Expr*> acc_keys;
    std::vector<const sql::Expr*> right_keys;
    std::vector<const sql::Expr*> residuals;
  };

  bool passthrough_ = false;  // single table, no WHERE, no JOINs
  std::string passthrough_relation_;
  std::vector<Stage> stages_;
  std::vector<const sql::Expr*> final_filters_;
  Schema output_schema_;
  SubqueryPlanCache final_plans_;  // subqueries in the final filter
};

/// A select statement (including its UNION/set-op chain) planned against
/// schemas: per-branch FROM/WHERE plan, resolved select items, statically
/// derived output schema, ORDER BY key resolution, and shared subquery
/// plans. Executing against N worlds performs the schema-level work once
/// instead of N times.
class PreparedSelect {
 public:
  static Result<PreparedSelect> Prepare(const sql::SelectStatement& stmt,
                                        const Database& schema_db,
                                        const EvalContext* outer = nullptr);

  PreparedSelect(PreparedSelect&&) = default;
  PreparedSelect& operator=(PreparedSelect&&) = default;

  Result<Table> Execute(const Database& db, const EvalContext* outer = nullptr);

  const Schema& output_schema() const { return branches_.front().out_schema; }

 private:
  PreparedSelect() = default;

  /// How one ORDER BY key resolves (SQL-92 ordinal, output column, or an
  /// expression over the representative source row). Ordinal range
  /// violations are detected at preparation but — matching the unprepared
  /// evaluation order — only reported when a row is actually sorted.
  struct OrderKeyPlan {
    enum class Kind { kOrdinal, kOutputColumn, kExpr } kind = Kind::kExpr;
    size_t index = 0;                  // ordinal / output column index
    const sql::Expr* expr = nullptr;   // kExpr
    bool descending = false;
    std::optional<int64_t> bad_ordinal;  // out-of-range ordinal, if any
  };

  struct Branch {
    const sql::SelectStatement* stmt = nullptr;
    PreparedFromWhere from_where;
    std::vector<OutputItem> items;
    Schema out_schema;
    bool grouped = false;
    std::vector<OrderKeyPlan> order_keys;
    SubqueryPlanCache plans;  // select list / HAVING / GROUP BY / ORDER BY
  };

  static Result<Branch> PrepareBranch(const sql::SelectStatement& stmt,
                                      const Database& schema_db,
                                      const EvalContext* outer);
  Result<Table> ExecuteBranch(Branch& branch, const Database& db,
                              const EvalContext* outer);

  std::vector<Branch> branches_;  // head + UNION chain, in order
};

/// The projection of `repair by key` / `choice of` statements, applied to
/// chosen tuple subsets: resolved items + static output schema, prepared
/// once per statement instead of once per world (or per world combination).
class PreparedProjection {
 public:
  /// `source` is the qualified FROM/WHERE output schema the chosen rows
  /// carry. Aggregates are rejected (they cannot be combined with
  /// repair/choice).
  static Result<PreparedProjection> Prepare(const sql::SelectStatement& stmt,
                                            const Database& schema_db,
                                            const Schema& source);

  PreparedProjection(PreparedProjection&&) = default;
  PreparedProjection& operator=(PreparedProjection&&) = default;

  Result<Table> Execute(const Database& db, const std::vector<Tuple>& rows);

  const Schema& output_schema() const { return out_schema_; }

 private:
  PreparedProjection() = default;

  const sql::SelectStatement* stmt_ = nullptr;
  Schema source_;
  std::vector<OutputItem> items_;
  Schema out_schema_;
  SubqueryPlanCache plans_;
};

/// Resolves the statement's select list against `source` (star expansion,
/// output names). Shared by PreparedSelect/PreparedProjection and exposed
/// for the executor.
Result<std::vector<OutputItem>> ResolveItems(const sql::SelectStatement& stmt,
                                             const Schema& source);

/// Statically types the resolved items (declared source type for star
/// columns, the type deriver for expressions, kText where nothing can be
/// derived). Rows are never consulted, so the result is identical for
/// empty and populated inputs and across both engine backends.
Schema InferOutputSchema(const std::vector<OutputItem>& items,
                         const Schema& source, const Database& db,
                         const EvalContext* outer);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_PREPARED_H_
