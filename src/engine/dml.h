#ifndef MAYBMS_ENGINE_DML_H_
#define MAYBMS_ENGINE_DML_H_

#include "base/result.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace maybms::engine {

/// Verifies every declared constraint of `table` (primary key uniqueness +
/// NOT NULL, UNIQUE, NOT NULL columns). Returns ConstraintViolation with a
/// description of the first violated constraint.
Status CheckTableConstraints(const Table& table,
                             const std::vector<Constraint>& constraints);

/// Executes INSERT against one world. Values are type-checked/coerced to
/// the column types; constraints from `catalog` are verified afterwards.
/// On any error the world is left unmodified.
Status ExecuteInsert(const sql::InsertStatement& stmt, Database* db,
                     const Catalog& catalog);

/// Executes UPDATE against one world; constraint-checked like insert.
Status ExecuteUpdate(const sql::UpdateStatement& stmt, Database* db,
                     const Catalog& catalog);

/// Executes DELETE against one world.
Status ExecuteDelete(const sql::DeleteStatement& stmt, Database* db);

/// Creates an empty table with the declared schema in one world and
/// registers its constraints in `catalog` (idempotent per world; the
/// caller registers constraints once).
Result<Table> BuildTableFromDefinition(const sql::CreateTableStatement& stmt);

/// Collects the constraints declared by a CREATE TABLE statement (column
/// shorthands plus table-level constraints).
std::vector<Constraint> CollectConstraints(
    const sql::CreateTableStatement& stmt);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_DML_H_
