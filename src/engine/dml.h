#ifndef MAYBMS_ENGINE_DML_H_
#define MAYBMS_ENGINE_DML_H_

#include <memory>
#include <vector>

#include "base/result.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace maybms::engine {

class PreparedDmlImpl;

/// One INSERT/UPDATE/DELETE statement planned against schemas: target
/// columns and SET assignments resolved, the INSERT ... SELECT source
/// prepared, and the statement's constraint list looked up — once per
/// statement instead of once per world. Execute applies the statement to
/// one world's database; like the prepared select plans (engine/
/// prepared.h), a PreparedDml captures schema-level state only and may be
/// executed against every world of a world-set. The statement and the
/// catalog must outlive the plan.
class PreparedDml {
 public:
  /// `catalog` may be null for DELETE (which checks no constraints); it is
  /// required for INSERT/UPDATE.
  static Result<PreparedDml> Prepare(const sql::Statement& stmt,
                                     const Database& schema_db,
                                     const Catalog* catalog);

  PreparedDml(PreparedDml&&) noexcept;
  PreparedDml& operator=(PreparedDml&&) noexcept;
  ~PreparedDml();

  /// Applies the statement to one world. On any error the world is left
  /// unmodified: the new contents of the target relation are computed on
  /// the side and published with a single PutRelation handle swap
  /// (storage/catalog.h) — the stored instance is never mutated in
  /// place, so executing against a copy-on-write snapshot can never leak
  /// partial results into worlds sharing the same table.
  Status Execute(Database* db);

 private:
  PreparedDml();
  std::unique_ptr<PreparedDmlImpl> impl_;
};

/// Verifies every declared constraint of `table` (primary key uniqueness +
/// NOT NULL, UNIQUE, NOT NULL columns). Returns ConstraintViolation with a
/// description of the first violated constraint.
Status CheckTableConstraints(const Table& table,
                             const std::vector<Constraint>& constraints);

/// Executes INSERT against one world. Values are type-checked/coerced to
/// the column types; constraints from `catalog` are verified afterwards.
/// On any error the world is left unmodified. Single-shot wrapper over
/// PreparedDml.
Status ExecuteInsert(const sql::InsertStatement& stmt, Database* db,
                     const Catalog& catalog);

/// Executes UPDATE against one world; constraint-checked like insert.
Status ExecuteUpdate(const sql::UpdateStatement& stmt, Database* db,
                     const Catalog& catalog);

/// Executes DELETE against one world.
Status ExecuteDelete(const sql::DeleteStatement& stmt, Database* db);

/// Creates an empty table with the declared schema in one world and
/// registers its constraints in `catalog` (idempotent per world; the
/// caller registers constraints once).
Result<Table> BuildTableFromDefinition(const sql::CreateTableStatement& stmt);

/// Collects the constraints declared by a CREATE TABLE statement (column
/// shorthands plus table-level constraints).
std::vector<Constraint> CollectConstraints(
    const sql::CreateTableStatement& stmt);

}  // namespace maybms::engine

#endif  // MAYBMS_ENGINE_DML_H_
