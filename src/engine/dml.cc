#include "engine/dml.h"

#include <optional>
#include <set>
#include <utility>

#include "base/string_util.h"
#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "engine/planner.h"
#include "engine/prepared.h"

namespace maybms::engine {

namespace {

/// Coerces `v` for storage into a column of type `target`: exact type or
/// NULL passes through; integers widen to real. Anything else is an error
/// (no silent lossy conversions on the write path).
Result<Value> CoerceForColumn(const Value& v, DataType target,
                              const std::string& column_name) {
  if (v.is_null() || v.type() == target) return v;
  if (target == DataType::kReal && v.type() == DataType::kInteger) {
    return Value::Real(static_cast<double>(v.AsInteger()));
  }
  return Status::TypeError("value " + v.ToString() + " of type " +
                           DataTypeToString(v.type()) +
                           " cannot be stored in column " + column_name +
                           " of type " + DataTypeToString(target));
}

Result<std::vector<size_t>> ResolveTargetColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  if (names.empty()) {
    indices.resize(schema.num_columns());
    for (size_t i = 0; i < schema.num_columns(); ++i) indices[i] = i;
    return indices;
  }
  for (const std::string& name : names) {
    MAYBMS_ASSIGN_OR_RETURN(size_t idx, schema.FindColumn(name));
    indices.push_back(idx);
  }
  return indices;
}

const std::vector<Constraint>& NoConstraints() {
  static const std::vector<Constraint> empty;
  return empty;
}

}  // namespace

Status CheckTableConstraints(const Table& table,
                             const std::vector<Constraint>& constraints) {
  for (const Constraint& c : constraints) {
    std::vector<size_t> indices;
    for (const std::string& col : c.columns) {
      auto idx = table.schema().FindColumn(col);
      if (!idx.ok()) return idx.status();
      indices.push_back(*idx);
    }
    if (c.kind == ConstraintKind::kNotNull ||
        c.kind == ConstraintKind::kPrimaryKey) {
      for (const Tuple& row : table.rows()) {
        for (size_t i : indices) {
          if (row.value(i).is_null()) {
            return Status::ConstraintViolation(
                "NULL value in column " + c.columns[0] +
                " violates a NOT NULL / PRIMARY KEY constraint");
          }
        }
      }
    }
    if (c.kind == ConstraintKind::kPrimaryKey ||
        c.kind == ConstraintKind::kUnique) {
      std::set<Tuple> seen;
      for (const Tuple& row : table.rows()) {
        Tuple key = row.Project(indices);
        if (!seen.insert(key).second) {
          return Status::ConstraintViolation(
              "duplicate key " + key.ToString() + " violates " +
              (c.kind == ConstraintKind::kPrimaryKey ? "PRIMARY KEY"
                                                     : "UNIQUE") +
              " (" + Join(c.columns, ", ") + ")");
        }
      }
    }
  }
  return Status::OK();
}

/// Schema-level plan for one DML statement. All members are resolved
/// against the schema database at preparation; Execute re-reads the
/// target relation from the world it is applied to.
class PreparedDmlImpl {
 public:
  sql::StatementKind kind = sql::StatementKind::kInsert;
  const sql::InsertStatement* insert = nullptr;
  const sql::UpdateStatement* update = nullptr;
  const sql::DeleteStatement* del = nullptr;

  // Constraints of the target relation (borrowed from the catalog; the
  // empty list for DELETE).
  const std::vector<Constraint>* constraints = &NoConstraints();

  // INSERT: resolved target column indices + the prepared SELECT source.
  std::vector<size_t> targets;
  std::optional<PreparedSelect> insert_query;

  // UPDATE: resolved (column index, value expression) assignments.
  std::vector<std::pair<size_t, const sql::Expr*>> assignments;

  // Subquery plans for VALUES expressions / WHERE clauses, shared across
  // every world this statement executes in (results stay per world).
  SubqueryPlanCache plans;

  Status ExecuteInsert(Database* db);
  Status ExecuteUpdate(Database* db);
  Status ExecuteDelete(Database* db);
};

Status PreparedDmlImpl::ExecuteInsert(Database* db) {
  const sql::InsertStatement& stmt = *insert;
  MAYBMS_ASSIGN_OR_RETURN(const Table* existing,
                          db->GetRelation(stmt.table_name));
  Table updated = *existing;
  const Schema& schema = updated.schema();

  std::vector<Tuple> new_rows;
  if (insert_query.has_value()) {
    MAYBMS_ASSIGN_OR_RETURN(Table result, insert_query->Execute(*db));
    new_rows = std::move(*result.mutable_rows());
  } else {
    SubqueryCache subquery_cache(&plans);
    for (const auto& row_exprs : stmt.rows) {
      if (row_exprs.size() != targets.size()) {
        return Status::InvalidArgument("INSERT row arity mismatch: expected " +
                                       std::to_string(targets.size()));
      }
      Tuple row;
      EvalContext ctx{db, nullptr, nullptr, nullptr, nullptr,
                      &subquery_cache};
      for (const auto& e : row_exprs) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
        row.Append(std::move(v));
      }
      new_rows.push_back(std::move(row));
    }
  }

  for (const Tuple& source : new_rows) {
    std::vector<Value> values(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < targets.size(); ++i) {
      size_t col = targets[i];
      MAYBMS_ASSIGN_OR_RETURN(
          values[col], CoerceForColumn(source.value(i), schema.column(col).type,
                                       schema.column(col).name));
    }
    MAYBMS_RETURN_NOT_OK(updated.Append(Tuple(std::move(values))));
  }

  MAYBMS_RETURN_NOT_OK(CheckTableConstraints(updated, *constraints));
  db->PutRelation(stmt.table_name, std::move(updated));
  return Status::OK();
}

Status PreparedDmlImpl::ExecuteUpdate(Database* db) {
  const sql::UpdateStatement& stmt = *update;
  MAYBMS_ASSIGN_OR_RETURN(const Table* existing,
                          db->GetRelation(stmt.table_name));
  Table updated = *existing;
  const Schema& schema = updated.schema();

  // The cache reads the pre-update relation in `db` (the copy is only
  // published at the end), so one cache serves the whole row loop.
  SubqueryCache subquery_cache(&plans);
  for (Tuple& row : *updated.mutable_rows()) {
    EvalContext ctx{db, &schema, &row, nullptr, nullptr, &subquery_cache};
    if (stmt.where) {
      MAYBMS_ASSIGN_OR_RETURN(Trivalent match, EvalPredicate(*stmt.where, ctx));
      if (match != Trivalent::kTrue) continue;
    }
    // Evaluate all assignments against the pre-update row, then apply.
    std::vector<Value> new_values;
    new_values.reserve(assignments.size());
    for (const auto& [idx, expr] : assignments) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, ctx));
      MAYBMS_ASSIGN_OR_RETURN(
          Value coerced,
          CoerceForColumn(v, schema.column(idx).type, schema.column(idx).name));
      new_values.push_back(std::move(coerced));
    }
    for (size_t i = 0; i < assignments.size(); ++i) {
      row.value(assignments[i].first) = std::move(new_values[i]);
    }
  }

  MAYBMS_RETURN_NOT_OK(CheckTableConstraints(updated, *constraints));
  db->PutRelation(stmt.table_name, std::move(updated));
  return Status::OK();
}

Status PreparedDmlImpl::ExecuteDelete(Database* db) {
  const sql::DeleteStatement& stmt = *del;
  MAYBMS_ASSIGN_OR_RETURN(const Table* existing,
                          db->GetRelation(stmt.table_name));
  Table updated(existing->schema());
  const Schema& schema = existing->schema();
  SubqueryCache subquery_cache(&plans);
  for (const Tuple& row : existing->rows()) {
    bool remove = true;
    if (stmt.where) {
      EvalContext ctx{db, &schema, &row, nullptr, nullptr, &subquery_cache};
      MAYBMS_ASSIGN_OR_RETURN(Trivalent match, EvalPredicate(*stmt.where, ctx));
      remove = match == Trivalent::kTrue;
    }
    if (!remove) updated.AppendUnchecked(row);
  }
  db->PutRelation(stmt.table_name, std::move(updated));
  return Status::OK();
}

PreparedDml::PreparedDml() : impl_(std::make_unique<PreparedDmlImpl>()) {}
PreparedDml::PreparedDml(PreparedDml&&) noexcept = default;
PreparedDml& PreparedDml::operator=(PreparedDml&&) noexcept = default;
PreparedDml::~PreparedDml() = default;

Result<PreparedDml> PreparedDml::Prepare(const sql::Statement& stmt,
                                         const Database& schema_db,
                                         const Catalog* catalog) {
  PreparedDml plan;
  PreparedDmlImpl& impl = *plan.impl_;
  impl.kind = stmt.kind;
  switch (stmt.kind) {
    case sql::StatementKind::kInsert: {
      const auto& insert = static_cast<const sql::InsertStatement&>(stmt);
      impl.insert = &insert;
      if (catalog == nullptr) {
        return Status::InvalidArgument("INSERT requires a catalog");
      }
      impl.constraints = &catalog->ConstraintsFor(insert.table_name);
      MAYBMS_ASSIGN_OR_RETURN(const Table* existing,
                              schema_db.GetRelation(insert.table_name));
      MAYBMS_ASSIGN_OR_RETURN(
          impl.targets,
          ResolveTargetColumns(existing->schema(), insert.columns));
      if (insert.query) {
        MAYBMS_ASSIGN_OR_RETURN(
            PreparedSelect query,
            PreparedSelect::Prepare(*insert.query, schema_db));
        if (query.output_schema().num_columns() != impl.targets.size()) {
          return Status::InvalidArgument(
              "INSERT ... SELECT column count mismatch");
        }
        impl.insert_query = std::move(query);
      }
      return plan;
    }
    case sql::StatementKind::kUpdate: {
      const auto& update = static_cast<const sql::UpdateStatement&>(stmt);
      impl.update = &update;
      if (catalog == nullptr) {
        return Status::InvalidArgument("UPDATE requires a catalog");
      }
      impl.constraints = &catalog->ConstraintsFor(update.table_name);
      MAYBMS_ASSIGN_OR_RETURN(const Table* existing,
                              schema_db.GetRelation(update.table_name));
      for (const auto& [col, expr] : update.assignments) {
        MAYBMS_ASSIGN_OR_RETURN(size_t idx,
                                existing->schema().FindColumn(col));
        impl.assignments.emplace_back(idx, expr.get());
      }
      return plan;
    }
    case sql::StatementKind::kDelete: {
      const auto& del = static_cast<const sql::DeleteStatement&>(stmt);
      impl.del = &del;
      MAYBMS_RETURN_NOT_OK(
          schema_db.GetRelation(del.table_name).status());
      return plan;
    }
    default:
      return Status::InvalidArgument("not a DML statement");
  }
}

Status PreparedDml::Execute(Database* db) {
  switch (impl_->kind) {
    case sql::StatementKind::kInsert:
      return impl_->ExecuteInsert(db);
    case sql::StatementKind::kUpdate:
      return impl_->ExecuteUpdate(db);
    case sql::StatementKind::kDelete:
      return impl_->ExecuteDelete(db);
    default:
      return Status::InvalidArgument("not a DML statement");
  }
}

Status ExecuteInsert(const sql::InsertStatement& stmt, Database* db,
                     const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(PreparedDml plan,
                          PreparedDml::Prepare(stmt, *db, &catalog));
  return plan.Execute(db);
}

Status ExecuteUpdate(const sql::UpdateStatement& stmt, Database* db,
                     const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(PreparedDml plan,
                          PreparedDml::Prepare(stmt, *db, &catalog));
  return plan.Execute(db);
}

Status ExecuteDelete(const sql::DeleteStatement& stmt, Database* db) {
  MAYBMS_ASSIGN_OR_RETURN(PreparedDml plan,
                          PreparedDml::Prepare(stmt, *db, nullptr));
  return plan.Execute(db);
}

Result<Table> BuildTableFromDefinition(const sql::CreateTableStatement& stmt) {
  Schema schema;
  for (const sql::ColumnDef& col : stmt.columns) {
    schema.AddColumn(Column(col.name, col.type));
  }
  return Table(std::move(schema));
}

std::vector<Constraint> CollectConstraints(
    const sql::CreateTableStatement& stmt) {
  std::vector<Constraint> constraints;
  for (const sql::ColumnDef& col : stmt.columns) {
    if (col.primary_key) {
      constraints.push_back(Constraint{ConstraintKind::kPrimaryKey, {col.name}});
    }
    if (col.unique) {
      constraints.push_back(Constraint{ConstraintKind::kUnique, {col.name}});
    }
    if (col.not_null && !col.primary_key) {
      constraints.push_back(Constraint{ConstraintKind::kNotNull, {col.name}});
    }
  }
  for (const Constraint& c : stmt.table_constraints) constraints.push_back(c);
  return constraints;
}

}  // namespace maybms::engine
