#include "server/server.h"

#include "isql/formatter.h"
#include "sql/parser.h"

namespace maybms::server {

Server::Server(ServerOptions options)
    : options_(std::move(options)), session_(options_.session) {}

Server::~Server() { Shutdown(); }

std::string Server::BusyMessage(size_t max_connections) {
  return "server at connection capacity (" +
         std::to_string(max_connections) + " sessions); retry later";
}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  // The reader path pins published snapshots; without this the server
  // would race readers against in-place writes.
  options.session.publish_snapshots = true;
  std::unique_ptr<Server> server(new Server(std::move(options)));
  MAYBMS_ASSIGN_OR_RETURN(server->wake_, WakePipe::Create());
  MAYBMS_ASSIGN_OR_RETURN(
      server->listener_,
      ListenOn(server->options_.host, server->options_.port, &server->port_));
  server->accept_thread_ =
      WorkerThread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void Server::AcceptLoop() {
  for (;;) {
    Result<WaitStatus> wait =
        WaitReadable(listener_.get(), wake_.wake_fd(), -1);
    if (!wait.ok() || *wait == WaitStatus::kWake) return;
    if (*wait == WaitStatus::kTimeout) continue;
    Result<Fd> accepted = Accept(listener_);
    if (!accepted.ok()) return;  // fatal listener failure
    if (!accepted->valid()) continue;  // spurious wakeup / aborted peer
    if (draining_.load(std::memory_order_acquire)) return;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    bool refused = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_ >= options_.max_connections) {
        refused = true;
      } else {
        ++active_;
        queue_.push_back(std::move(*accepted));
        // One worker per concurrently served connection, spawned lazily
        // (ThreadPool::EnsureWorkers style) and reused across
        // connections; never more than max_connections.
        if (workers_.size() < active_) {
          workers_.emplace_back([this] { WorkerLoop(); });
        }
      }
    }
    if (refused) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      // Deterministic backpressure: exactly one kResourceExhausted
      // response, then close. Best effort — a peer that vanished first
      // loses nothing.
      MAYBMS_IGNORE_STATUS(WriteFrame(
          *accepted,
          EncodeResponse(StatusCode::kResourceExhausted,
                         BusyMessage(options_.max_connections)),
          options_.io_timeout_ms));
    } else {
      queue_cv_.notify_one();
    }
  }
}

void Server::WorkerLoop() {
  for (;;) {
    Fd conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return draining_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (draining_.load(std::memory_order_acquire)) {
        // Queued connections never started a statement; drop them (the
        // client sees a clean EOF, knowing nothing ran).
        while (!queue_.empty()) {
          Fd dropped = std::move(queue_.front());
          queue_.pop_front();
          --active_;
        }
        return;
      }
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeConn(std::move(conn));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
  }
}

void Server::ServeConn(Fd conn) {
  for (;;) {
    // Wait for the next request with the wake pipe armed, so a drain
    // interrupts idle connections immediately instead of after the idle
    // timeout. Draining between requests closes before reading: the
    // statement provably never ran.
    Result<WaitStatus> wait = WaitReadable(conn.get(), wake_.wake_fd(),
                                           options_.idle_timeout_ms);
    if (!wait.ok() || *wait != WaitStatus::kReadable) return;
    if (draining_.load(std::memory_order_acquire)) return;

    std::string request;
    Result<FrameStatus> frame =
        ReadFrame(conn, &request, options_.io_timeout_ms);
    if (!frame.ok()) {
      // Protocol violation (oversized prefix, torn frame): best-effort
      // error reply, then close.
      MAYBMS_IGNORE_STATUS(WriteFrame(
          conn,
          EncodeResponse(frame.status().code(), frame.status().message()),
          options_.io_timeout_ms));
      return;
    }
    if (*frame != FrameStatus::kFrame) return;  // clean EOF

    uint32_t request_deadline_ms = 0;
    std::string sql;
    Status decoded = DecodeRequest(request, &request_deadline_ms, &sql);
    if (!decoded.ok()) {
      MAYBMS_IGNORE_STATUS(WriteFrame(
          conn, EncodeResponse(decoded.code(), decoded.message()),
          options_.io_timeout_ms));
      return;
    }

    std::pair<StatusCode, std::string> response =
        ExecuteGoverned(sql, request_deadline_ms, conn.get());
    if (!WriteFrame(conn, EncodeResponse(response.first, response.second),
                    options_.io_timeout_ms)
             .ok()) {
      return;
    }
  }
}

std::pair<StatusCode, std::string> Server::Execute(const std::string& sql) {
  return ExecuteGoverned(sql, 0, /*conn_fd=*/-1);
}

std::pair<StatusCode, std::string> Server::ExecuteGoverned(
    const std::string& sql, uint32_t request_deadline_ms, int conn_fd) {
  // The statement's limits: the shared session's resolved configuration,
  // with the deadline tightened to the request's — min of the two
  // nonzero values, so a client can only shorten what the server allows.
  base::GovernanceLimits limits = session_.governance_limits();
  if (request_deadline_ms != 0 && (limits.deadline_ms == 0 ||
                                   request_deadline_ms < limits.deadline_ms)) {
    limits.deadline_ms = request_deadline_ms;
  }
  base::QueryContext ctx(limits);
  if (conn_fd >= 0) {
    // A vanished client stops paying for its statement: the probe runs
    // on every kProbeInterval-th poll from whichever thread polls, and
    // the abort rolls back like any other cancellation.
    ctx.SetCancelProbe([conn_fd] { return PeerClosed(conn_fd); },
                       "client disconnected");
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.insert(&ctx);
      // Ordering: Shutdown() sets draining_ BEFORE sweeping inflight_,
      // so a statement is either swept there or cancelled right here.
      if (options_.cancel_statements_on_drain &&
          draining_.load(std::memory_order_acquire)) {
        ctx.Cancel("server draining");
      }
    }
  } else if (!ctx.governed()) {
    // In-process path with nothing to enforce: skip the context so
    // benchmarks measure the engines, not the governor.
    return ExecuteParsed(sql);
  }
  base::QueryContextScope scope(&ctx);
  std::pair<StatusCode, std::string> response = ExecuteParsed(sql);
  if (conn_fd >= 0) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(&ctx);
  }
  return response;
}

std::pair<StatusCode, std::string> Server::ExecuteParsed(
    const std::string& sql) {
  Result<std::vector<sql::StatementPtr>> parsed =
      sql::Parser::ParseScript(sql);
  if (!parsed.ok()) {
    return {parsed.status().code(), parsed.status().message()};
  }
  std::string out;
  for (const sql::StatementPtr& stmt : *parsed) {
    Result<isql::QueryResult> result = [&]() -> Result<isql::QueryResult> {
      if (stmt->kind == sql::StatementKind::kSelect) {
        // Reader path: pin the published snapshot for the life of the
        // statement; no lock. Concurrent commits swap the published
        // pointer — this statement keeps reading its pinned state.
        std::shared_ptr<const isql::SessionSnapshot> snapshot =
            session_.PinSnapshot();
        return isql::Session::EvaluateSnapshot(
            *snapshot, *stmt, options_.session.max_display_worlds);
      }
      // Writer path: strict serialization behind the single writer lock;
      // the commit republishes the snapshot before the lock drops.
      std::lock_guard<std::mutex> lock(writer_mu_);
      return session_.ExecuteStatement(*stmt);
    }();
    if (!result.ok()) {
      // Script semantics match Session::ExecuteScript: statements before
      // the failure stay applied, the failure is reported.
      return {result.status().code(), result.status().message()};
    }
    statements_served_.fetch_add(1, std::memory_order_relaxed);
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
    out += isql::FormatQueryResult(*result);
  }
  return {StatusCode::kOk, out};
}

void Server::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    draining_.store(true, std::memory_order_release);
    if (options_.cancel_statements_on_drain) {
      // Cooperative cancellation of every in-flight statement: the next
      // governance poll in each aborts with a deterministic error, the
      // abort rolls back, and the worker still flushes that response
      // before its connection closes.
      std::lock_guard<std::mutex> lock(inflight_mu_);
      for (base::QueryContext* ctx : inflight_) {
        ctx->Cancel("server draining");
      }
    }
    // The unread wake byte is a level-triggered broadcast: every poller
    // (accept loop, every idle worker) sees the pipe readable until the
    // drain completes.
    wake_.Wake();
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    queue_cv_.notify_all();
    // workers_ is stable now: only the (joined) accept loop ever grew it.
    for (WorkerThread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    listener_.Close();
  });
}

}  // namespace maybms::server
