#include "server/protocol.h"

#include <cerrno>
#include <cstring>

#include <poll.h>

#include "base/rng.h"

namespace maybms::server {

namespace {

// The status-code byte must survive codec changes on one side only long
// enough to be diagnosable; values beyond the known range decode to an
// error instead of casting blindly.
constexpr uint8_t kMaxStatusOrdinal =
    static_cast<uint8_t>(StatusCode::kDeadlineExceeded);

void PutU32(std::string* out, uint32_t v) {
  // Little-endian, matching storage/codec.cc.
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Status WriteFrame(const Fd& fd, const std::string& payload, int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload exceeds " + std::to_string(kMaxFrameBytes) +
        " bytes: " + std::to_string(payload.size()));
  }
  std::string wire;
  wire.reserve(4 + payload.size());
  PutU32(&wire, static_cast<uint32_t>(payload.size()));
  wire.append(payload);
  return WriteFull(fd, wire.data(), wire.size(), timeout_ms);
}

Result<FrameStatus> ReadFrame(const Fd& fd, std::string* payload,
                              int timeout_ms) {
  unsigned char header[4];
  MAYBMS_ASSIGN_OR_RETURN(ReadStatus head,
                          ReadFull(fd, header, sizeof(header), timeout_ms));
  if (head == ReadStatus::kEof) return FrameStatus::kEof;
  if (head == ReadStatus::kTimeout) return FrameStatus::kTimeout;
  const uint32_t size = GetU32(header);
  if (size > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame length prefix " + std::to_string(size) + " exceeds the " +
        std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  payload->assign(size, '\0');
  if (size == 0) return FrameStatus::kFrame;
  MAYBMS_ASSIGN_OR_RETURN(ReadStatus body,
                          ReadFull(fd, payload->data(), size, timeout_ms));
  if (body != ReadStatus::kOk) {
    // EOF/timeout after the header: the frame is torn, never silently
    // treated as a clean close.
    return Status::IOError("connection closed mid-frame (header promised " +
                           std::to_string(size) + " bytes)");
  }
  return FrameStatus::kFrame;
}

std::string EncodeResponse(StatusCode code, const std::string& text) {
  std::string payload;
  payload.reserve(1 + text.size());
  payload.push_back(static_cast<char>(static_cast<uint8_t>(code)));
  payload.append(text);
  return payload;
}

Status DecodeResponse(const std::string& payload, StatusCode* code,
                      std::string* text) {
  if (payload.empty()) {
    return Status::IOError("empty response payload (missing status byte)");
  }
  const uint8_t ordinal = static_cast<uint8_t>(payload[0]);
  if (ordinal > kMaxStatusOrdinal) {
    return Status::IOError("unknown response status ordinal " +
                           std::to_string(ordinal));
  }
  *code = static_cast<StatusCode>(ordinal);
  text->assign(payload, 1, payload.size() - 1);
  return Status::OK();
}

Result<std::pair<StatusCode, std::string>> RoundTrip(const Fd& fd,
                                                     const std::string& sql,
                                                     int timeout_ms) {
  MAYBMS_RETURN_NOT_OK(WriteFrame(fd, sql, timeout_ms));
  std::string payload;
  MAYBMS_ASSIGN_OR_RETURN(FrameStatus frame,
                          ReadFrame(fd, &payload, timeout_ms));
  if (frame == FrameStatus::kEof) {
    return Status::IOError("server closed the connection before replying");
  }
  if (frame == FrameStatus::kTimeout) {
    return Status::IOError("timed out waiting for the server's reply");
  }
  StatusCode code;
  std::string text;
  MAYBMS_RETURN_NOT_OK(DecodeResponse(payload, &code, &text));
  return std::make_pair(code, std::move(text));
}

std::string EncodeGovernedRequest(uint32_t deadline_ms,
                                  const std::string& sql) {
  std::string payload;
  payload.reserve(5 + sql.size());
  payload.push_back(kGovernedRequestMagic);
  PutU32(&payload, deadline_ms);
  payload.append(sql);
  return payload;
}

Status DecodeRequest(const std::string& payload, uint32_t* deadline_ms,
                     std::string* sql) {
  if (payload.empty() || payload[0] != kGovernedRequestMagic) {
    *deadline_ms = 0;
    *sql = payload;
    return Status::OK();
  }
  if (payload.size() < 5) {
    return Status::InvalidArgument(
        "governed request frame of " + std::to_string(payload.size()) +
        " bytes is shorter than its 5-byte header");
  }
  *deadline_ms =
      GetU32(reinterpret_cast<const unsigned char*>(payload.data()) + 1);
  sql->assign(payload, 5, payload.size() - 5);
  return Status::OK();
}

namespace {

/// True for the one reply the server emits BEFORE running anything: the
/// connection-capacity refusal. Statement-level kResourceExhausted
/// (budget exceeded) deliberately does not match — re-running a
/// statement that exceeded its own budget cannot succeed.
bool IsCapacityReply(StatusCode code, const std::string& text) {
  return code == StatusCode::kResourceExhausted &&
         text.find("retry later") != std::string::npos;
}

void SleepMs(uint64_t ms) {
  // poll() with no fds is the sanctioned sleep here (no <thread> in this
  // layer); EINTR just shortens one backoff step, which is harmless.
  if (ms == 0) return;
  (void)::poll(nullptr, 0, static_cast<int>(ms));
}

}  // namespace

Result<std::pair<StatusCode, std::string>> RoundTripWithRetry(
    const std::string& host, uint16_t port, const std::string& request,
    int timeout_ms, const RetryPolicy& policy) {
  base::SplitMix64 jitter(policy.jitter_seed);
  uint64_t backoff_ms = policy.base_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    Result<Fd> conn = ConnectTo(host, port);
    bool transient = false;
    Result<std::pair<StatusCode, std::string>> reply = [&]() ->
        Result<std::pair<StatusCode, std::string>> {
      if (!conn.ok()) {
        // Nothing was sent, so retrying cannot double-execute anything.
        transient = true;
        return conn.status();
      }
      Result<std::pair<StatusCode, std::string>> r =
          RoundTrip(*conn, request, timeout_ms);
      // A transport failure AFTER the request went out is never retried:
      // the statement may have executed. Only the server's deterministic
      // pre-execution capacity refusal is.
      if (r.ok()) transient = IsCapacityReply(r->first, r->second);
      return r;
    }();
    if (!transient || attempt >= policy.max_retries) return reply;
    // Full jitter over the current backoff window, then double it.
    SleepMs(backoff_ms == 0 ? 0 : jitter() % backoff_ms + 1);
    backoff_ms = backoff_ms >= policy.max_backoff_ms / 2
                     ? policy.max_backoff_ms
                     : backoff_ms * 2;
  }
}

}  // namespace maybms::server
