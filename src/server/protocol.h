#ifndef MAYBMS_SERVER_PROTOCOL_H_
#define MAYBMS_SERVER_PROTOCOL_H_

// The wire protocol of the I-SQL server: length-prefixed frames over TCP.
//
//   frame    := u32-LE payload length | payload bytes
//   request  := the I-SQL statement/script text, UTF-8
//   response := u8 StatusCode ordinal | result text, UTF-8
//
// For an OK response the text is the formatted query result(s)
// (isql::FormatQueryResult, one block per statement, separated by
// newlines); for an error it is the status message. Frames above
// kMaxFrameBytes are rejected without allocating — a malformed or
// hostile length prefix must not OOM the server.
//
// The framing is deliberately dumb: no handshake, no versioning byte —
// one request frame in, one response frame out, repeated until either
// side closes. Statement semantics (snapshot reads, serialized writes)
// live in server.h.

#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/status.h"
#include "server/net.h"

namespace maybms::server {

/// Hard cap on a frame payload; larger prefixes fail with
/// kInvalidArgument before any allocation.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Outcome of reading one frame.
enum class FrameStatus {
  kFrame,    // *payload holds a complete frame
  kEof,      // peer closed cleanly between frames
  kTimeout,  // no frame arrived within the timeout (idle connection)
};

/// Writes one length-prefixed frame.
Status WriteFrame(const Fd& fd, const std::string& payload, int timeout_ms);

/// Reads one length-prefixed frame. `timeout_ms` bounds the wait for the
/// frame to *start*; once the length prefix arrived, the body must
/// follow within the same bound (a stalled body is an error, not
/// kTimeout).
Result<FrameStatus> ReadFrame(const Fd& fd, std::string* payload,
                              int timeout_ms);

/// Encodes a response payload: the status-code byte, then the text.
std::string EncodeResponse(StatusCode code, const std::string& text);

/// Decodes a response payload (client side).
Status DecodeResponse(const std::string& payload, StatusCode* code,
                      std::string* text);

/// One request/response round trip (client side).
Result<std::pair<StatusCode, std::string>> RoundTrip(const Fd& fd,
                                                     const std::string& sql,
                                                     int timeout_ms);

}  // namespace maybms::server

#endif  // MAYBMS_SERVER_PROTOCOL_H_
