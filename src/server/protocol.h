#ifndef MAYBMS_SERVER_PROTOCOL_H_
#define MAYBMS_SERVER_PROTOCOL_H_

// The wire protocol of the I-SQL server: length-prefixed frames over TCP.
//
//   frame    := u32-LE payload length | payload bytes
//   request  := the I-SQL statement/script text, UTF-8
//   response := u8 StatusCode ordinal | result text, UTF-8
//
// For an OK response the text is the formatted query result(s)
// (isql::FormatQueryResult, one block per statement, separated by
// newlines); for an error it is the status message. Frames above
// kMaxFrameBytes are rejected without allocating — a malformed or
// hostile length prefix must not OOM the server.
//
// The framing is deliberately dumb: no handshake, no versioning byte —
// one request frame in, one response frame out, repeated until either
// side closes. Statement semantics (snapshot reads, serialized writes)
// live in server.h.
//
// Governed requests: a request payload whose first byte is
// kGovernedRequestMagic (0x01 — never the first byte of I-SQL text)
// carries a u32-LE per-statement deadline in milliseconds before the
// statement text. The server combines it with its own configured limits
// by taking the minimum — a client can shorten its deadline, never
// extend the server's. Plain-text request frames are unchanged, so old
// clients keep working against governed servers and vice versa.

#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/status.h"
#include "server/net.h"

namespace maybms::server {

/// Hard cap on a frame payload; larger prefixes fail with
/// kInvalidArgument before any allocation.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Outcome of reading one frame.
enum class FrameStatus {
  kFrame,    // *payload holds a complete frame
  kEof,      // peer closed cleanly between frames
  kTimeout,  // no frame arrived within the timeout (idle connection)
};

/// Writes one length-prefixed frame.
Status WriteFrame(const Fd& fd, const std::string& payload, int timeout_ms);

/// Reads one length-prefixed frame. `timeout_ms` bounds the wait for the
/// frame to *start*; once the length prefix arrived, the body must
/// follow within the same bound (a stalled body is an error, not
/// kTimeout).
Result<FrameStatus> ReadFrame(const Fd& fd, std::string* payload,
                              int timeout_ms);

/// Encodes a response payload: the status-code byte, then the text.
std::string EncodeResponse(StatusCode code, const std::string& text);

/// Decodes a response payload (client side).
Status DecodeResponse(const std::string& payload, StatusCode* code,
                      std::string* text);

/// One request/response round trip (client side). `request` is a raw
/// request payload — plain statement text or an EncodeGovernedRequest
/// frame.
Result<std::pair<StatusCode, std::string>> RoundTrip(const Fd& fd,
                                                     const std::string& sql,
                                                     int timeout_ms);

/// First byte of a governed request payload. 0x01 never begins I-SQL
/// text, so plain requests stay unambiguous.
inline constexpr char kGovernedRequestMagic = '\x01';

/// Encodes a governed request: magic byte, u32-LE deadline_ms, statement
/// text. deadline_ms == 0 means "no request deadline" (the server's own
/// limits still apply).
std::string EncodeGovernedRequest(uint32_t deadline_ms,
                                  const std::string& sql);

/// Decodes a request payload (server side). Plain text decodes with
/// *deadline_ms = 0; a governed payload shorter than its 5-byte header
/// is kInvalidArgument.
Status DecodeRequest(const std::string& payload, uint32_t* deadline_ms,
                     std::string* sql);

/// Client-side retry for deterministic overload replies. Off unless
/// max_retries > 0.
struct RetryPolicy {
  /// Additional attempts after the first (0 = never retry).
  int max_retries = 0;

  /// First backoff; doubles per failed attempt up to max_backoff_ms.
  uint64_t base_backoff_ms = 50;
  uint64_t max_backoff_ms = 2'000;

  /// Seed for the jitter stream (base::SplitMix64); the same seed yields
  /// the same backoff schedule, which tests rely on.
  uint64_t jitter_seed = 0x6d617962'6d732101ull;
};

/// Connects and performs one round trip, retrying with exponential
/// backoff + jitter on exactly the two transient overload outcomes:
/// a failed connect (server not up yet / listen backlog exhausted) and
/// the server's deterministic capacity reply (kResourceExhausted whose
/// text asks to "retry later"). Every other reply — including resource
/// exhaustion of the STATEMENT's budgets — returns immediately: retrying
/// a statement that exceeded its own limits can never succeed. A fresh
/// connection per attempt, because the server closes refused ones.
Result<std::pair<StatusCode, std::string>> RoundTripWithRetry(
    const std::string& host, uint16_t port, const std::string& request,
    int timeout_ms, const RetryPolicy& policy);

}  // namespace maybms::server

#endif  // MAYBMS_SERVER_PROTOCOL_H_
