#include "server/net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace maybms::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags;
  do {
    flags = ::fcntl(fd, F_GETFL, 0);
  } while (flags < 0 && errno == EINTR);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  int rc;
  do {
    rc = ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<struct sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::Close() {
  if (fd_ >= 0) {
    // close() is not retried on EINTR: POSIX leaves the fd state
    // unspecified, and Linux always releases it.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenOn(const std::string& host, uint16_t port,
                    uint16_t* bound_port) {
  MAYBMS_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), 128) < 0) return Errno("listen");
  MAYBMS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  if (bound_port != nullptr) {
    struct sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&actual),
                      &len) < 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<Fd> ConnectTo(const std::string& host, uint16_t port) {
  MAYBMS_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  // connect() must NOT be retried on EINTR: the attempt keeps completing
  // asynchronously in the kernel (a retry would report EALREADY). Wait
  // for writability and read the outcome from SO_ERROR instead.
  int rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno == EINTR) {
    // A connect interrupted by a signal completes asynchronously: wait
    // for writability, then read the final outcome from SO_ERROR.
    struct pollfd pfd{fd.get(), POLLOUT, 0};
    int prc;
    do {
      prc = ::poll(&pfd, 1, -1);
    } while (prc < 0 && errno == EINTR);
    if (prc < 0) return Errno("poll(connect)");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IOError("connect(" + host + ":" + std::to_string(port) +
                             "): " + std::strerror(err));
    }
  } else if (rc < 0) {
    return Errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  // Small request/response frames: turn off Nagle so a reply is not held
  // back waiting for a full segment.
  int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return fd;
}

Result<WaitStatus> WaitReadable(int fd, int wake_fd, int timeout_ms) {
  struct pollfd pfds[2];
  pfds[0] = {fd, POLLIN, 0};
  nfds_t nfds = 1;
  if (wake_fd >= 0) {
    pfds[1] = {wake_fd, POLLIN, 0};
    nfds = 2;
  }
  int rc;
  do {
    rc = ::poll(pfds, nfds, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) return WaitStatus::kTimeout;
  if (nfds == 2 && (pfds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
    return WaitStatus::kWake;
  }
  return WaitStatus::kReadable;
}

Result<Fd> Accept(const Fd& listener) {
  int fd;
  do {
    fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    // Per-connection failures (the peer reset before we accepted) are
    // transient: report them as an invalid Fd too, not a server error.
    if (errno == ECONNABORTED) return Fd();
    return Errno("accept");
  }
  Fd conn(fd);
  int one = 1;
  if (::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return conn;
}

Result<ReadStatus> ReadFull(const Fd& fd, void* data, size_t size,
                            int timeout_ms) {
  char* out = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    MAYBMS_ASSIGN_OR_RETURN(WaitStatus wait,
                            WaitReadable(fd.get(), -1, timeout_ms));
    if (wait == WaitStatus::kTimeout) {
      if (done == 0) return ReadStatus::kTimeout;
      return Status::IOError("read timed out mid-frame after " +
                             std::to_string(timeout_ms) + "ms");
    }
    ssize_t n;
    do {
      n = ::recv(fd.get(), out + done, size - done, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (done == 0) return ReadStatus::kEof;
      return Status::IOError("connection closed mid-frame (" +
                             std::to_string(done) + " of " +
                             std::to_string(size) + " bytes)");
    }
    done += static_cast<size_t>(n);
  }
  return ReadStatus::kOk;
}

Status WriteFull(const Fd& fd, const void* data, size_t size,
                 int timeout_ms) {
  const char* in = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    ssize_t n;
    do {
      n = ::send(fd.get(), in + done, size - done, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd{fd.get(), POLLOUT, 0};
        int rc;
        do {
          rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) return Errno("poll(send)");
        if (rc == 0) {
          return Status::IOError("write timed out after " +
                                 std::to_string(timeout_ms) + "ms");
        }
        continue;
      }
      return Errno("send");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool PeerClosed(int fd) {
  struct pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return false;  // quiet socket: the peer is still there
  if ((pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    // Readable can mean pipelined request bytes OR an orderly shutdown;
    // only a zero-byte peek is a hangup.
    char byte;
    ssize_t n;
    do {
      n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    return n == 0;
  }
  return false;
}

Result<WakePipe> WakePipe::Create() {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) < 0) return Errno("pipe2");
  WakePipe pipe;
  pipe.read_end_ = Fd(fds[0]);
  pipe.write_end_ = Fd(fds[1]);
  return pipe;
}

void WakePipe::Wake() {
  char byte = 1;
  ssize_t n;
  do {
    n = ::write(write_end_.get(), &byte, 1);
  } while (n < 0 && errno == EINTR);
  // A full pipe means a wake is already pending — that is all we need.
  (void)n;
}

}  // namespace maybms::server
