#ifndef MAYBMS_SERVER_NET_H_
#define MAYBMS_SERVER_NET_H_

// EINTR-safe TCP plumbing for the I-SQL server front-end, mirroring the
// storage::File idiom (src/storage/file.cc): every syscall loops on
// EINTR, every failure surfaces as a Status with the errno text, and no
// call ever raises SIGPIPE (writes go through send(MSG_NOSIGNAL)).
//
// Timeouts are cooperative: reads and accepts wait on poll() with a
// bounded timeout and report kTimeout instead of blocking forever, so
// the server can enforce idle timeouts and drain promptly on SIGTERM.

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/result.h"

namespace maybms::server {

/// RAII owner of a file descriptor (socket or pipe end).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `host`:`port` (port 0 picks an
/// ephemeral port; the bound port is written to *bound_port). The socket
/// is non-blocking: pair Accept() with WaitReadable().
Result<Fd> ListenOn(const std::string& host, uint16_t port,
                    uint16_t* bound_port);

/// Blocking connect to `host`:`port` (EINTR-safe, including the
/// connect-restarted-as-in-progress case).
Result<Fd> ConnectTo(const std::string& host, uint16_t port);

/// Outcome of waiting for readability.
enum class WaitStatus {
  kReadable,  // `fd` has data / a pending connection
  kWake,      // `wake_fd` became readable first (shutdown signal)
  kTimeout,   // nothing within `timeout_ms`
};

/// Waits until `fd` is readable, `wake_fd` (pass -1 for none) is
/// readable, or `timeout_ms` elapses (-1 = wait forever).
Result<WaitStatus> WaitReadable(int fd, int wake_fd, int timeout_ms);

/// Accepts one pending connection from a non-blocking listener. Returns
/// an invalid Fd when no connection is pending (EAGAIN) — callers gate on
/// WaitReadable first.
Result<Fd> Accept(const Fd& listener);

/// Outcome of a framed/fixed-size read.
enum class ReadStatus {
  kOk,       // `size` bytes read
  kEof,      // the peer closed the connection before the first byte
  kTimeout,  // nothing arrived within `timeout_ms` (before the first byte)
};

/// Reads exactly `size` bytes into `data`. A clean close before the first
/// byte is kEof and a quiet wait is kTimeout; EOF or a stall *mid-buffer*
/// is an error (a torn frame, never silently accepted).
Result<ReadStatus> ReadFull(const Fd& fd, void* data, size_t size,
                            int timeout_ms);

/// Writes exactly `size` bytes (send with MSG_NOSIGNAL; a closed peer is
/// kIOError, not SIGPIPE). Waits up to `timeout_ms` for writability per
/// chunk.
Status WriteFull(const Fd& fd, const void* data, size_t size, int timeout_ms);

/// Non-blocking hangup check: true iff the peer closed the connection
/// (orderly shutdown or error). Pipelined request bytes waiting on the
/// socket do NOT count as a hangup. This is the server's cancellation
/// probe for in-flight statements (base::QueryContext::SetCancelProbe) —
/// a client that vanished stops paying for its statement.
bool PeerClosed(int fd);

/// A self-pipe for waking pollers out of WaitReadable (the SIGTERM drain
/// path): Wake() writes one byte, wake_fd() is the read end.
class WakePipe {
 public:
  static Result<WakePipe> Create();
  void Wake();
  int wake_fd() const { return read_end_.get(); }

 private:
  Fd read_end_;
  Fd write_end_;
};

}  // namespace maybms::server

#endif  // MAYBMS_SERVER_NET_H_
