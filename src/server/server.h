#ifndef MAYBMS_SERVER_SERVER_H_
#define MAYBMS_SERVER_SERVER_H_

// The I-SQL network server front-end: a TCP accept loop with
// session-per-connection workers over ONE shared world-set.
//
// Concurrency model (the point of this layer):
//  * Reads are snapshot-isolated and lock-free. A SELECT pins the
//    session's published SessionSnapshot (isql/session.h) for the life
//    of the statement and evaluates without taking any lock: tables are
//    immutable once shared (storage/catalog.h), so any number of
//    connections read one shared world-set concurrently, and every
//    result is byte-identical to serial execution against the snapshot's
//    commit point.
//  * Writes are strict. DDL/DML serialize behind a single writer mutex;
//    a commit republishes the snapshot, so the next read (on any
//    connection) sees the complete new state — readers observe either
//    the old or the new snapshot, never a mixture.
//  * Backpressure is deterministic. A connection beyond
//    ServerOptions::max_connections receives exactly one
//    kResourceExhausted response (BusyMessage()) and is closed.
//  * Drain is graceful. Shutdown() (the SIGTERM path in maybms_server)
//    stops accepting, interrupts idle waits, lets in-flight statements
//    finish and their responses flush, then joins every worker. A frame
//    is never torn: a client either receives its complete response or a
//    clean EOF before the statement ran.
//
// Every worker is a long-lived session thread, which base::ThreadPool's
// batch-oriented ParallelFor does not model; this file owns its threads
// in the same spawn-lazily/join-on-drain style.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
// Long-lived session workers need a real thread type.
// maybms-lint: allow(forbidden-api)
#include <thread>
#include <utility>
#include <vector>

#include "base/query_context.h"
#include "base/result.h"
#include "isql/session.h"
#include "server/net.h"
#include "server/protocol.h"

namespace maybms::server {

struct ServerOptions {
  /// Bind address. The default stays loopback-only; pass "0.0.0.0" to
  /// serve remote clients.
  std::string host = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Concurrently served sessions. Connection max_connections+1 gets a
  /// deterministic kResourceExhausted reply and is closed.
  size_t max_connections = 64;

  /// How long a connection may sit idle between requests before the
  /// server closes it.
  int idle_timeout_ms = 60'000;

  /// Per-chunk I/O timeout for frame bodies and responses (a stalled
  /// peer mid-frame is an error, not an idle wait).
  int io_timeout_ms = 10'000;

  /// Drain policy for in-flight statements. false (default) lets them
  /// run to completion, PR-9 style. true cancels them cooperatively: the
  /// next governance poll aborts with "statement cancelled: server
  /// draining", the abort rolls back like any other (the client still
  /// receives that complete error response before its connection
  /// closes), and the drain finishes in ~one poll interval instead of a
  /// statement's worst-case runtime.
  bool cancel_statements_on_drain = false;

  /// Engine/storage configuration of the shared session, including the
  /// statement governance limits (statement_timeout_ms / max_worlds /
  /// mem_budget_mb and their environment variables). Each network
  /// request runs under a per-statement base::QueryContext built from
  /// these; a governed request frame (protocol.h) may tighten — never
  /// extend — the deadline. publish_snapshots is forced on — it is what
  /// the reader path pins.
  isql::SessionOptions session;
};

class Server {
 public:
  /// Binds, spawns the accept loop, and returns a serving instance.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Graceful drain: stop accepting, finish in-flight statements, flush
  /// responses, close every connection, join every thread. Idempotent;
  /// concurrent callers block until the drain completes.
  void Shutdown();

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with ServerOptions::port = 0).
  uint16_t port() const { return port_; }

  /// Executes a request body (an I-SQL statement or ';'-script) exactly
  /// like a network request: SELECTs evaluate against a pinned snapshot
  /// without locking, everything else serializes behind the writer
  /// mutex. Returns the wire status code and response text. Thread-safe;
  /// also the in-process path for preloading data and benchmarks.
  std::pair<StatusCode, std::string> Execute(const std::string& sql);

  /// The deterministic busy-reply text for a given connection cap.
  static std::string BusyMessage(size_t max_connections);

  // ---- Introspection (tests, benchmarks) ----
  uint64_t statements_served() const {
    return statements_served_.load(std::memory_order_relaxed);
  }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_refused() const {
    return connections_refused_.load(std::memory_order_relaxed);
  }
  size_t active_connections() const;

 private:
  explicit Server(ServerOptions options);

  void AcceptLoop();
  void WorkerLoop();
  void ServeConn(Fd conn);

  /// Execute() under a per-statement governance context: limits from the
  /// shared session tightened by the request deadline, a peer-hangup
  /// cancel probe when `conn_fd` >= 0, and registration in the in-flight
  /// set so a cancel-on-drain shutdown reaches it.
  std::pair<StatusCode, std::string> ExecuteGoverned(
      const std::string& sql, uint32_t request_deadline_ms, int conn_fd);

  /// The parse/dispatch loop itself; runs under whatever QueryContext
  /// the caller installed (possibly none).
  std::pair<StatusCode, std::string> ExecuteParsed(const std::string& sql);

  // The sanctioned thread type of this file (see the header comment) —
  // single suppression point for the raw-thread lint rule.
  // maybms-lint: allow(forbidden-api)
  using WorkerThread = std::thread;

  ServerOptions options_;
  uint16_t port_ = 0;
  Fd listener_;
  WakePipe wake_;

  isql::Session session_;
  std::mutex writer_mu_;  // serializes every non-SELECT statement

  // Governance contexts of statements currently executing, so a
  // cancel-on-drain Shutdown() can reach every one of them.
  mutable std::mutex inflight_mu_;
  std::set<base::QueryContext*> inflight_;

  mutable std::mutex mu_;  // guards queue_, workers_, active_
  std::condition_variable queue_cv_;
  std::deque<Fd> queue_;
  std::vector<WorkerThread> workers_;
  size_t active_ = 0;  // connections queued or being served

  WorkerThread accept_thread_;
  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;

  std::atomic<uint64_t> statements_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
};

}  // namespace maybms::server

#endif  // MAYBMS_SERVER_SERVER_H_
