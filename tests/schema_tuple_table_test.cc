#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/table.h"
#include "tests/test_util.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace maybms {
namespace {

using maybms::testing::I;
using maybms::testing::Row;
using maybms::testing::T;

Schema AbSchema() {
  return Schema({Column("A", DataType::kText), Column("B", DataType::kInteger)});
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema schema = AbSchema();
  EXPECT_EQ(*schema.FindColumn("a"), 0u);
  EXPECT_EQ(*schema.FindColumn("B"), 1u);
  EXPECT_FALSE(schema.FindColumn("C").ok());
}

TEST(SchemaTest, QualifiedLookup) {
  Schema joined = Schema::Concat(AbSchema().WithQualifier("x"),
                                 AbSchema().WithQualifier("y"));
  EXPECT_EQ(joined.num_columns(), 4u);
  EXPECT_EQ(*joined.FindColumn("A", "x"), 0u);
  EXPECT_EQ(*joined.FindColumn("A", "y"), 2u);
  // Unqualified ambiguous reference is an error.
  auto r = joined.FindColumn("A");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, HasColumn) {
  Schema schema = AbSchema().WithQualifier("t");
  EXPECT_TRUE(schema.HasColumn("A"));
  EXPECT_TRUE(schema.HasColumn("a", "T"));
  EXPECT_FALSE(schema.HasColumn("A", "u"));
  EXPECT_FALSE(schema.HasColumn("Z"));
}

TEST(SchemaTest, EqualityIgnoresQualifier) {
  EXPECT_TRUE(AbSchema() == AbSchema().WithQualifier("t"));
  Schema other({Column("A", DataType::kText)});
  EXPECT_FALSE(AbSchema() == other);
}

TEST(TupleTest, CompareAndProject) {
  Tuple t1 = Row({T("a"), I(1)});
  Tuple t2 = Row({T("a"), I(2)});
  EXPECT_LT(t1.Compare(t2), 0);
  EXPECT_EQ(t1.Compare(t1), 0);
  EXPECT_TRUE(t1 < t2);
  EXPECT_TRUE(t1 == Row({T("a"), I(1)}));

  Tuple p = t2.Project({1});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.value(0).AsInteger(), 2);
}

TEST(TupleTest, PrefixOrdering) {
  Tuple shorter = Row({T("a")});
  Tuple longer = Row({T("a"), I(1)});
  EXPECT_LT(shorter.Compare(longer), 0);
  EXPECT_GT(longer.Compare(shorter), 0);
}

TEST(TupleTest, ConcatAndToString) {
  Tuple c = Tuple::Concat(Row({T("a")}), Row({I(1), I(2)}));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.ToString(), "(a, 1, 2)");
  EXPECT_EQ(Tuple().ToString(), "()");
}

TEST(TableTest, AppendChecksArity) {
  Table table(AbSchema());
  MAYBMS_EXPECT_OK(table.Append(Row({T("a"), I(1)})));
  Status bad = table.Append(Row({T("a")}));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, SortedDistinct) {
  Table table(AbSchema());
  table.AppendUnchecked(Row({T("b"), I(2)}));
  table.AppendUnchecked(Row({T("a"), I(1)}));
  table.AppendUnchecked(Row({T("b"), I(2)}));
  Table distinct = table.SortedDistinct();
  ASSERT_EQ(distinct.num_rows(), 2u);
  EXPECT_EQ(distinct.row(0).ToString(), "(a, 1)");
  EXPECT_EQ(distinct.row(1).ToString(), "(b, 2)");
  EXPECT_EQ(table.num_rows(), 3u) << "source unchanged";
}

TEST(TableTest, SetAndBagEquality) {
  Table a(AbSchema());
  a.AppendUnchecked(Row({T("x"), I(1)}));
  a.AppendUnchecked(Row({T("x"), I(1)}));
  Table b(AbSchema());
  b.AppendUnchecked(Row({T("x"), I(1)}));
  EXPECT_TRUE(a.SetEquals(b));
  EXPECT_FALSE(a.BagEquals(b));
  b.AppendUnchecked(Row({T("x"), I(1)}));
  EXPECT_TRUE(a.BagEquals(b));
}

TEST(TableTest, ContainsTuple) {
  Table table(AbSchema());
  table.AppendUnchecked(Row({T("a"), I(1)}));
  EXPECT_TRUE(table.ContainsTuple(Row({T("a"), I(1)})));
  EXPECT_FALSE(table.ContainsTuple(Row({T("a"), I(2)})));
}

TEST(DatabaseTest, PutGetDropRelations) {
  Database db;
  EXPECT_FALSE(db.HasRelation("r"));
  db.PutRelation("R", Table(AbSchema()));
  EXPECT_TRUE(db.HasRelation("r")) << "names are case-insensitive";
  EXPECT_TRUE(db.HasRelation("R"));

  auto table = db.GetRelation("r");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().num_columns(), 2u);

  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"R"})
      << "original case preserved";

  MAYBMS_EXPECT_OK(db.DropRelation("R"));
  EXPECT_FALSE(db.HasRelation("R"));
  EXPECT_EQ(db.DropRelation("R").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, ContentEqualsIsSetBased) {
  Database a, b;
  Table t1(AbSchema());
  t1.AppendUnchecked(Row({T("x"), I(1)}));
  t1.AppendUnchecked(Row({T("y"), I(2)}));
  Table t2(AbSchema());
  t2.AppendUnchecked(Row({T("y"), I(2)}));
  t2.AppendUnchecked(Row({T("x"), I(1)}));
  a.PutRelation("R", t1);
  b.PutRelation("r", t2);
  EXPECT_TRUE(a.ContentEquals(b));

  b.PutRelation("S", Table(AbSchema()));
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(CatalogTest, ConstraintsPerTable) {
  Catalog catalog;
  EXPECT_TRUE(catalog.ConstraintsFor("r").empty());
  catalog.AddConstraint("R", Constraint{ConstraintKind::kPrimaryKey, {"A"}});
  catalog.AddConstraint("R", Constraint{ConstraintKind::kUnique, {"B"}});
  ASSERT_EQ(catalog.ConstraintsFor("r").size(), 2u);
  catalog.DropConstraints("R");
  EXPECT_TRUE(catalog.ConstraintsFor("r").empty());
}

}  // namespace
}  // namespace maybms
