// Reproduces Section 3.1 of the paper: tracking whales with incomplete
// observations (Figures 3 and 4), including views over world-sets and the
// group-worlds-by query.

#include <gtest/gtest.h>

#include "isql/session.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using isql::QueryResult;
using isql::Session;
using maybms::testing::EngineTest;
using maybms::testing::Exec;
using maybms::testing::LoadFigure3;
using maybms::testing::WorldDistribution;

class WhaleScenarioTest : public EngineTest {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(Options());
    LoadFigure3(*session_);
  }
  Session& s() { return *session_; }
  std::unique_ptr<Session> session_;
};

TEST_P(WhaleScenarioTest, FigureThreeHasSixWorlds) {
  QueryResult result = Exec(s(), "select * from I;");
  auto dist = WorldDistribution(result.worlds());
  EXPECT_EQ(dist.size(), 6u);
  double total = 0;
  for (const auto& [key, p] : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// Query Q: is there a possibility that the orca attacks the calf (calf at
// position b)? Answer: yes (worlds A through D).
TEST_P(WhaleScenarioTest, QueryQPossibleAttack) {
  QueryResult result =
      Exec(s(), "select possible 'yes' from I where Id=1 and Pos='b';");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kTable);
  maybms::testing::ExpectRows(result.table(), {"(yes)"});
}

// The view Valid keeps only worlds consistent with the expert knowledge
// (a cow at position b) — world E. Q on Valid is empty.
TEST_P(WhaleScenarioTest, ValidViewDropsContradictingWorlds) {
  Exec(s(), "create view Valid as select * from I assert exists"
            "(select * from I where Gender='cow' and Pos='b');");
  QueryResult q = Exec(
      s(), "select possible 'yes' from Valid where Id=1 and Pos='b';");
  ASSERT_EQ(q.kind(), QueryResult::Kind::kTable);
  EXPECT_TRUE(q.table().empty());

  // Querying the view does not change the session's world-set.
  QueryResult check = Exec(s(), "select * from I;");
  EXPECT_EQ(WorldDistribution(check.worlds()).size(), 6u);
}

// Valid' keeps all six worlds but the relation is empty outside world E.
TEST_P(WhaleScenarioTest, ValidPrimeViewKeepsAllWorlds) {
  Exec(s(), "create view Valid2 as select * from I where exists"
            "(select * from I where Gender='cow' and Pos='b');");
  QueryResult q = Exec(
      s(), "select possible 'yes' from Valid2 where Id=1 and Pos='b';");
  EXPECT_TRUE(q.table().empty());

  // Per-world: five empty instances and one equal to I_E.
  QueryResult per_world = Exec(s(), "select * from Valid2;");
  auto dist = WorldDistribution(per_world.worlds());
  ASSERT_EQ(dist.size(), 2u);  // empty vs I_E contents
  EXPECT_NEAR(dist[""], 5.0 / 6, 1e-12);
}

// The paper's key distinction: certain answers differ on Valid vs Valid'.
TEST_P(WhaleScenarioTest, CertainDistinguishesValidFromValidPrime) {
  Exec(s(), "create view Valid as select * from I assert exists"
            "(select * from I where Gender='cow' and Pos='b');");
  Exec(s(), "create view Valid2 as select * from I where exists"
            "(select * from I where Gender='cow' and Pos='b');");

  QueryResult certain_valid = Exec(s(), "select certain * from Valid;");
  maybms::testing::ExpectRows(certain_valid.table(),
                              {"(1, sperm, calf, c)", "(2, sperm, cow, b)",
                               "(3, orca, cow, a)"});

  QueryResult certain_valid2 = Exec(s(), "select certain * from Valid2;");
  EXPECT_TRUE(certain_valid2.table().empty());
}

// Figure 4: group worlds by the position of whale 2; within each group the
// possible gender combinations of the adult whales.
TEST_P(WhaleScenarioTest, GroupWorldsByPositionOfWhaleTwo) {
  QueryResult result = Exec(s(),
      "select possible i2.Gender as G2, i3.Gender as G3 "
      "from I i2, I i3 where i2.Id = 2 and i3.Id = 3 "
      "group worlds by (select Pos from I where Id = 2);");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kGroups);
  ASSERT_EQ(result.groups().size(), 2u);

  for (const auto& group : result.groups()) {
    ASSERT_EQ(group.key.num_rows(), 1u);
    std::string pos = group.key.row(0).value(0).AsText();
    if (pos == "c") {
      // Worlds A-D: all four combinations (Figure 4, left).
      maybms::testing::ExpectRows(group.table, {"(cow, cow)", "(cow, bull)",
                                                "(bull, cow)", "(bull, bull)"});
      EXPECT_NEAR(group.probability, 4.0 / 6, 1e-12);
    } else {
      // Worlds E,F: two combinations (Figure 4, right).
      ASSERT_EQ(pos, "b");
      maybms::testing::ExpectRows(group.table, {"(cow, cow)", "(bull, cow)"});
      EXPECT_NEAR(group.probability, 2.0 / 6, 1e-12);
    }
  }
}

// The independence check of §3.1: within each Groups instance, Groups =
// pi_G2(Groups) x pi_G3(Groups). Materialize Groups and verify in SQL.
TEST_P(WhaleScenarioTest, GenderIndependenceCheck) {
  Exec(s(),
       "create table Groups as "
       "select possible i2.Gender as G2, i3.Gender as G3 "
       "from I i2, I i3 where i2.Id = 2 and i3.Id = 3 "
       "group worlds by (select Pos from I where Id = 2);");

  // In every world: no pair (g2, g3) from the projections is missing from
  // Groups, i.e. Groups is the full cross product.
  QueryResult check = Exec(s(),
      "select possible 'dependent' from Groups g "
      "where exists (select * from Groups g1, Groups g2 "
      "  where not exists (select * from Groups g3 "
      "    where g3.G2 = g1.G2 and g3.G3 = g2.G3));");
  ASSERT_EQ(check.kind(), QueryResult::Kind::kTable);
  EXPECT_TRUE(check.table().empty())
      << "genders should be independent in both groups";
}

MAYBMS_INSTANTIATE_ENGINES(WhaleScenarioTest);

}  // namespace
}  // namespace maybms
