// Reproduces every worked example of Section 2 of the paper ("I-SQL by
// examples") bit-exactly, on both world-set engines.

#include <gtest/gtest.h>

#include <cmath>

#include "isql/session.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using isql::QueryResult;
using isql::Session;
using maybms::testing::EngineTest;
using maybms::testing::Exec;
using maybms::testing::ExecScript;
using maybms::testing::ExpectRows;
using maybms::testing::LoadFigure1;
using maybms::testing::WorldDistribution;

class PaperExamplesTest : public EngineTest {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(Options());
    LoadFigure1(*session_);
  }

  Session& s() { return *session_; }

  void CreateRepairI(bool weighted) {
    Exec(s(), weighted ? "create table I as select A, B, C from R "
                         "repair by key A weight D;"
                       : "create table I as select A, B, C from R "
                         "repair by key A;");
  }

  std::unique_ptr<Session> session_;
};

// Figure 2 world contents (as canonical row sets).
const char* const kWorldA = "(a1, 10, c1);(a2, 14, c3);(a3, 20, c5);";
const char* const kWorldB = "(a1, 15, c2);(a2, 14, c3);(a3, 20, c5);";
const char* const kWorldC = "(a1, 10, c1);(a2, 20, c4);(a3, 20, c5);";
const char* const kWorldD = "(a1, 15, c2);(a2, 20, c4);(a3, 20, c5);";

TEST_P(PaperExamplesTest, Example23RepairByKeyCreatesFourWorlds) {
  CreateRepairI(/*weighted=*/false);
  QueryResult result = Exec(s(), "select * from I;");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kWorlds);
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 4u);
  // Unweighted repair: uniform probability 1/2 * 1/2 * 1 per world.
  for (const char* world : {kWorldA, kWorldB, kWorldC, kWorldD}) {
    ASSERT_TRUE(dist.count(world)) << "missing world " << world;
    EXPECT_NEAR(dist[world], 0.25, 1e-12);
  }
}

TEST_P(PaperExamplesTest, Example24WeightedRepairProbabilities) {
  CreateRepairI(/*weighted=*/true);
  QueryResult result = Exec(s(), "select * from I;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 4u);
  // P(A) = 2/8 * 4/9 * 6/6 = 1/9 (the paper rounds to 0.11), etc.
  EXPECT_NEAR(dist[kWorldA], 2.0 / 8 * 4.0 / 9, 1e-12);
  EXPECT_NEAR(dist[kWorldB], 6.0 / 8 * 4.0 / 9, 1e-12);
  EXPECT_NEAR(dist[kWorldC], 2.0 / 8 * 5.0 / 9, 1e-12);
  EXPECT_NEAR(dist[kWorldD], 6.0 / 8 * 5.0 / 9, 1e-12);
}

TEST_P(PaperExamplesTest, Example21SelectionEvaluatedPerWorld) {
  CreateRepairI(/*weighted=*/true);
  QueryResult result = Exec(s(), "select * from I where A = 'a3';");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kWorlds);
  // Every world answers with exactly the a3 tuple.
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_NEAR(dist.begin()->second, 1.0, 1e-12);
  EXPECT_EQ(dist.begin()->first, "(a3, 20, c5);");
  // The input world-set is unchanged: I still has four worlds.
  QueryResult check = Exec(s(), "select * from I;");
  EXPECT_EQ(WorldDistribution(check.worlds()).size(), 4u);
}

TEST_P(PaperExamplesTest, Example22CreateTableMaterializesPerWorld) {
  CreateRepairI(/*weighted=*/true);
  Exec(s(), "create table D as select * from I where A = 'a3';");
  QueryResult result = Exec(s(), "select * from D;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist.begin()->first, "(a3, 20, c5);");
  // Original relations are still present in each world (paper: "each
  // world also contains all relations of the world it originated from").
  QueryResult r_check = Exec(s(), "select * from R;");
  EXPECT_EQ(WorldDistribution(r_check.worlds()).size(), 1u);
}

TEST_P(PaperExamplesTest, Example25AssertDropsWorldsAndRenormalizes) {
  CreateRepairI(/*weighted=*/true);
  Exec(s(), "create table J as select * from I "
            "assert not exists(select * from I where C = 'c1');");
  QueryResult result = Exec(s(), "select * from J;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 2u);
  // Worlds B and D survive; renormalized to 0.44.. and 0.55..
  double pb = 6.0 / 8 * 4.0 / 9;
  double pd = 6.0 / 8 * 5.0 / 9;
  EXPECT_NEAR(dist[kWorldB], pb / (pb + pd), 1e-12);  // 0.444...
  EXPECT_NEAR(dist[kWorldD], pd / (pb + pd), 1e-12);  // 0.555...
}

TEST_P(PaperExamplesTest, Example25AssertEliminatingAllWorldsIsAnError) {
  CreateRepairI(/*weighted=*/true);
  auto result = s().Execute(
      "create table J as select * from I "
      "assert not exists(select * from I where A = 'a3');");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kEmptyWorldSet);
}

TEST_P(PaperExamplesTest, Example26ChoiceOfPartitionsIntoTwoWorlds) {
  QueryResult result = Exec(s(), "select * from S choice of E;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist["(c2, e1);(c4, e1);"], 0.5, 1e-12);
  EXPECT_NEAR(dist["(c4, e2);"], 0.5, 1e-12);
}

TEST_P(PaperExamplesTest, Example27WeightedChoiceOf) {
  QueryResult result = Exec(s(), "select * from R choice of A weight D;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 3u);
  // Paper: probabilities 0.35, 0.39, 0.26 (rounded).
  EXPECT_NEAR(dist["(a1, 10, c1, 2);(a1, 15, c2, 6);"], 8.0 / 23, 1e-12);
  EXPECT_NEAR(dist["(a2, 14, c3, 4);(a2, 20, c4, 5);"], 9.0 / 23, 1e-12);
  EXPECT_NEAR(dist["(a3, 20, c5, 6);"], 6.0 / 23, 1e-12);
}

TEST_P(PaperExamplesTest, Example28SumPerWorldAndPossibleSum) {
  CreateRepairI(/*weighted=*/true);
  QueryResult per_world = Exec(s(), "select sum(B) from I;");
  auto dist = WorldDistribution(per_world.worlds());
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_TRUE(dist.count("(44);"));
  EXPECT_TRUE(dist.count("(49);"));
  EXPECT_TRUE(dist.count("(50);"));
  EXPECT_TRUE(dist.count("(55);"));

  QueryResult possible = Exec(s(), "select possible sum(B) from I;");
  ASSERT_EQ(possible.kind(), QueryResult::Kind::kTable);
  ExpectRows(possible.table(), {"(44)", "(49)", "(50)", "(55)"});
}

TEST_P(PaperExamplesTest, Example29CertainAcrossChoiceOfWorlds) {
  QueryResult result = Exec(s(), "select certain E from S choice of C;");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kTable);
  ExpectRows(result.table(), {"(e1)"});
}

// Paper erratum (documented in EXPERIMENTS.md): Example 2.10 reports
// conf = 0.53 as the sum of P(A) and P(D), but by the paper's own sums
// (A=44, B=49, C=50, D=55) the worlds satisfying sum < 50 are A and B,
// so the defined semantics yield P(A) + P(B) = 1/9 + 1/3 = 4/9.
TEST_P(PaperExamplesTest, Example210ConfOfSumCondition) {
  CreateRepairI(/*weighted=*/true);
  QueryResult result =
      Exec(s(), "select conf from I where 50 > (select sum(B) from I);");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kTable);
  ASSERT_EQ(result.table().num_rows(), 1u);
  EXPECT_NEAR(result.table().row(0).value(0).AsReal(), 4.0 / 9, 1e-12);
}

TEST_P(PaperExamplesTest, ConfPerTupleSumsWorldProbabilities) {
  CreateRepairI(/*weighted=*/true);
  QueryResult result = Exec(s(), "select conf, B from I;");
  ASSERT_EQ(result.kind(), QueryResult::Kind::kTable);
  // B=10 appears in worlds A and C: 1/9 + 5/36 = 1/4. B=20 appears in all
  // worlds (a3 tuple): conf 1.
  double conf_10 = -1, conf_20 = -1, conf_14 = -1;
  for (const Tuple& row : result.table().rows()) {
    int64_t b = row.value(0).AsInteger();
    double conf = row.value(1).AsReal();
    if (b == 10) conf_10 = conf;
    if (b == 20) conf_20 = conf;
    if (b == 14) conf_14 = conf;
  }
  EXPECT_NEAR(conf_10, 0.25, 1e-12);
  EXPECT_NEAR(conf_20, 1.0, 1e-12);
  EXPECT_NEAR(conf_14, 4.0 / 9, 1e-12);
}

TEST_P(PaperExamplesTest, PossibleIsConfGreaterZeroAndCertainIsConfOne) {
  CreateRepairI(/*weighted=*/true);
  // Paper: "a tuple is possible if its confidence is greater than zero and
  // certain if its confidence is one".
  QueryResult conf = Exec(s(), "select conf, A, B, C from I;");
  QueryResult possible = Exec(s(), "select possible A, B, C from I;");
  QueryResult certain = Exec(s(), "select certain A, B, C from I;");

  std::vector<std::string> possible_rows;
  std::vector<std::string> certain_rows;
  for (const Tuple& row : conf.table().rows()) {
    double c = row.value(3).AsReal();
    Tuple values({row.value(0), row.value(1), row.value(2)});
    if (c > 0) possible_rows.push_back(values.ToString());
    if (std::fabs(c - 1.0) < 1e-12) certain_rows.push_back(values.ToString());
  }
  ExpectRows(possible.table(), possible_rows);
  ExpectRows(certain.table(), certain_rows);
}

MAYBMS_INSTANTIATE_ENGINES(PaperExamplesTest);

}  // namespace
}  // namespace maybms
