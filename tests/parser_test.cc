#include "sql/parser.h"

#include <gtest/gtest.h>

namespace maybms::sql {
namespace {

std::unique_ptr<SelectStatement> ParseSelect(const std::string& text) {
  auto stmt = Parser::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << " -> " << stmt.status().ToString();
  if (!stmt.ok()) return nullptr;
  EXPECT_EQ((*stmt)->kind, StatementKind::kSelect);
  return std::unique_ptr<SelectStatement>(
      static_cast<SelectStatement*>(stmt->release()));
}

TEST(ParserTest, SimpleSelectStar) {
  auto stmt = ParseSelect("select * from R");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_TRUE(stmt->items[0].star);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table_name, "R");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectWithAliasesAndQualifiedColumns) {
  auto stmt = ParseSelect(
      "select i2.G as G2, i3.G G3 from I i2, I as i3 where i2.Id = 2");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].alias, "G2");
  EXPECT_EQ(stmt->items[1].alias, "G3");
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].effective_alias(), "i2");
  EXPECT_EQ(stmt->from[1].effective_alias(), "i3");
  ASSERT_NE(stmt->where, nullptr);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("select 1 + 2 * 3 = 7 and not 1 > 2");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->ToString(),
            "(((1 + (2 * 3)) = 7) AND NOT ((1 > 2)))");
}

TEST(ParserTest, RepairByKeyWithWeight) {
  auto stmt = ParseSelect(
      "select A, B, C from R repair by key A weight D");
  ASSERT_NE(stmt, nullptr);
  ASSERT_TRUE(stmt->repair.has_value());
  EXPECT_EQ(stmt->repair->key_columns, std::vector<std::string>{"A"});
  EXPECT_EQ(stmt->repair->weight_column, "D");
}

TEST(ParserTest, RepairByCompositeKey) {
  auto stmt = ParseSelect("select SSN', TEL' from S repair by key SSN, TEL");
  ASSERT_NE(stmt, nullptr);
  ASSERT_TRUE(stmt->repair.has_value());
  EXPECT_EQ(stmt->repair->key_columns,
            (std::vector<std::string>{"SSN", "TEL"}));
  EXPECT_TRUE(stmt->repair->weight_column.empty());
  // Primed identifiers in the projection.
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "SSN'");
}

TEST(ParserTest, ChoiceOfWithWeight) {
  auto stmt = ParseSelect("select * from R choice of A weight D");
  ASSERT_NE(stmt, nullptr);
  ASSERT_TRUE(stmt->choice.has_value());
  EXPECT_EQ(stmt->choice->columns, std::vector<std::string>{"A"});
  EXPECT_EQ(stmt->choice->weight_column, "D");
}

TEST(ParserTest, PossibleCertainConfQuantifiers) {
  EXPECT_EQ(ParseSelect("select possible sum(B) from I")->quantifier,
            WorldQuantifier::kPossible);
  EXPECT_EQ(ParseSelect("select certain E from S choice of C")->quantifier,
            WorldQuantifier::kCertain);
  EXPECT_EQ(ParseSelect("select conf from I")->quantifier,
            WorldQuantifier::kConf);
  EXPECT_EQ(ParseSelect("select conf, B from I")->quantifier,
            WorldQuantifier::kConf);
  // A column actually named conf is still usable when aliased/qualified.
  auto stmt = ParseSelect("select t.conf from T t");
  EXPECT_EQ(stmt->quantifier, WorldQuantifier::kNone);
}

TEST(ParserTest, PossibleWithStringLiteral) {
  auto stmt = ParseSelect(
      "select possible 'yes' from I where Id=1 and Pos='b'");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->quantifier, WorldQuantifier::kPossible);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "'yes'");
}

TEST(ParserTest, AssertWithSubquery) {
  auto stmt = ParseSelect(
      "select * from I assert not exists(select * from I where C = 'c1')");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->assert_condition, nullptr);
  EXPECT_EQ(stmt->assert_condition->kind, ExprKind::kUnary);
}

TEST(ParserTest, MultipleAssertsConjoin) {
  auto stmt = ParseSelect("select * from I assert 1 = 1 assert 2 = 2");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->assert_condition, nullptr);
  EXPECT_EQ(stmt->assert_condition->ToString(), "((1 = 1) AND (2 = 2))");
}

TEST(ParserTest, GroupWorldsByVsGroupBy) {
  auto stmt = ParseSelect(
      "select possible G from I group worlds by (select Pos from I)");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->group_worlds_by, nullptr);
  EXPECT_TRUE(stmt->group_by.empty());

  stmt = ParseSelect("select G, count(*) from I group by G");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->group_worlds_by, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
}

TEST(ParserTest, UnionChain) {
  auto stmt = ParseSelect(
      "select A from R union select B from R union all select C from R");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->union_next, nullptr);
  EXPECT_EQ(stmt->set_op, SetOpKind::kUnion);
  ASSERT_NE(stmt->union_next->union_next, nullptr);
  EXPECT_EQ(stmt->union_next->set_op, SetOpKind::kUnionAll);
}

TEST(ParserTest, WorldClausesAfterUnionAttachToHead) {
  auto stmt = ParseSelect(
      "select A from R union select B from R repair by key A");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->repair.has_value());
  EXPECT_FALSE(stmt->union_next->repair.has_value());
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  auto stmt = ParseSelect(
      "select A, sum(B) from R group by A having sum(B) > 10 "
      "order by A desc, sum(B) limit 5");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_EQ(stmt->limit, 5);
}

TEST(ParserTest, InBetweenLikeIsNull) {
  auto stmt = ParseSelect(
      "select * from R where A in ('x', 'y') and B between 1 and 3 "
      "and C like 'c%' and D is not null");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->where, nullptr);
}

TEST(ParserTest, InSubqueryAndScalarSubquery) {
  auto stmt = ParseSelect(
      "select * from R where A in (select A from S) "
      "and B > (select sum(B) from S)");
  ASSERT_NE(stmt, nullptr);
}

TEST(ParserTest, CaseAndCast) {
  auto stmt = ParseSelect(
      "select case when B > 10 then 'big' else 'small' end, "
      "cast(B as real) from R");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kCase);
  EXPECT_EQ(stmt->items[1].expr->kind, ExprKind::kCast);
}

TEST(ParserTest, CreateTableWithConstraints) {
  auto stmt = Parser::ParseStatement(
      "create table T (A text primary key, B integer not null, "
      "C text unique, unique (A, B))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* create = static_cast<CreateTableStatement*>(stmt->get());
  EXPECT_EQ(create->table_name, "T");
  ASSERT_EQ(create->columns.size(), 3u);
  EXPECT_TRUE(create->columns[0].primary_key);
  EXPECT_TRUE(create->columns[1].not_null);
  EXPECT_TRUE(create->columns[2].unique);
  ASSERT_EQ(create->table_constraints.size(), 1u);
  EXPECT_EQ(create->table_constraints[0].columns,
            (std::vector<std::string>{"A", "B"}));
}

TEST(ParserTest, CreateTableAsAndCreateView) {
  auto stmt = Parser::ParseStatement("create table I as select * from R");
  ASSERT_TRUE(stmt.ok());
  auto* ctas = static_cast<CreateTableAsStatement*>(stmt->get());
  EXPECT_FALSE(ctas->is_view);

  stmt = Parser::ParseStatement("create view V as select * from R");
  ASSERT_TRUE(stmt.ok());
  auto* view = static_cast<CreateTableAsStatement*>(stmt->get());
  EXPECT_TRUE(view->is_view);
  EXPECT_EQ(view->table_name, "V");
}

TEST(ParserTest, InsertUpdateDelete) {
  auto insert = Parser::ParseStatement(
      "insert into R (A, B) values ('x', 1), ('y', 2)");
  ASSERT_TRUE(insert.ok());
  auto* ins = static_cast<InsertStatement*>(insert->get());
  EXPECT_EQ(ins->columns.size(), 2u);
  EXPECT_EQ(ins->rows.size(), 2u);

  auto insert_select =
      Parser::ParseStatement("insert into R select * from S");
  ASSERT_TRUE(insert_select.ok());
  EXPECT_NE(static_cast<InsertStatement*>(insert_select->get())->query,
            nullptr);

  auto update = Parser::ParseStatement(
      "update R set B = B + 1, A = 'z' where A = 'x'");
  ASSERT_TRUE(update.ok());
  auto* upd = static_cast<UpdateStatement*>(update->get());
  EXPECT_EQ(upd->assignments.size(), 2u);
  EXPECT_NE(upd->where, nullptr);

  auto del = Parser::ParseStatement("delete from R where B < 0");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(static_cast<DeleteStatement*>(del->get())->where, nullptr);
}

TEST(ParserTest, DropTable) {
  auto stmt = Parser::ParseStatement("drop table if exists T");
  ASSERT_TRUE(stmt.ok());
  auto* drop = static_cast<DropTableStatement*>(stmt->get());
  EXPECT_TRUE(drop->if_exists);
  EXPECT_EQ(drop->table_name, "T");
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto script = Parser::ParseScript(
      "create table T (A text); insert into T values ('x');;"
      "select * from T;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto bad = Parser::ParseStatement("select from from");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);

  bad = Parser::ParseStatement("select * frm R");
  ASSERT_FALSE(bad.ok());

  bad = Parser::ParseStatement("create table T");
  ASSERT_FALSE(bad.ok());

  bad = Parser::ParseStatement("select * from R where");
  ASSERT_FALSE(bad.ok());
}

TEST(ParserTest, CloneRoundTripsToString) {
  const char* queries[] = {
      "SELECT DISTINCT A, B AS x FROM R t WHERE (A = 'a') ORDER BY A LIMIT 3",
      "SELECT POSSIBLE SUM(B) FROM I",
      "SELECT * FROM R REPAIR BY KEY A WEIGHT D",
      "SELECT * FROM S CHOICE OF E",
      "SELECT * FROM I ASSERT EXISTS (SELECT * FROM I WHERE (G = 'cow'))",
  };
  for (const char* q : queries) {
    auto stmt = ParseSelect(q);
    ASSERT_NE(stmt, nullptr) << q;
    EXPECT_EQ(stmt->ToString(), stmt->Clone()->ToString()) << q;
  }
}

}  // namespace
}  // namespace maybms::sql
