// Join-focused differential/property suite: the hash-join +
// decorrelation planner (engine/planner.cc) is checked against a
// nested-loop oracle — a direct reimplementation of the pre-planner
// FROM/WHERE pipeline that evaluates the full predicate per candidate row
// and re-executes every subquery per row (no SubqueryCache). Random
// schemas exercise NULL join keys, duplicate keys, non-equi residuals,
// INNER/LEFT joins, and correlated EXISTS/IN/scalar subqueries; any
// disagreement (result bag, output types, or error status) fails with the
// reproducing seed and query.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using engine::EvalContext;
using engine::EvalExpr;
using engine::EvalPredicate;
using engine::ExecuteSelect;
using maybms::testing::I;
using maybms::testing::N;
using maybms::testing::Row;
using maybms::testing::RowStrings;
using maybms::testing::T;

// ---------------------------------------------------------------------------
// Nested-loop oracle (pre-planner semantics)
// ---------------------------------------------------------------------------

Result<Table> OracleFromWhere(const sql::SelectStatement& stmt,
                              const Database& db) {
  Schema schema;
  std::vector<Tuple> rows = {Tuple()};

  for (const sql::TableRef& ref : stmt.from) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table, db.GetRelation(ref.table_name));
    Schema qualified = table->schema().WithQualifier(ref.effective_alias());
    Schema next_schema = Schema::Concat(schema, qualified);
    std::vector<Tuple> next_rows;
    for (const Tuple& left : rows) {
      for (const Tuple& right : table->rows()) {
        next_rows.push_back(Tuple::Concat(left, right));
      }
    }
    schema = std::move(next_schema);
    rows = std::move(next_rows);
  }

  for (const sql::JoinClause& join : stmt.joins) {
    MAYBMS_ASSIGN_OR_RETURN(const Table* table,
                            db.GetRelation(join.table.table_name));
    Schema qualified =
        table->schema().WithQualifier(join.table.effective_alias());
    Schema next_schema = Schema::Concat(schema, qualified);
    std::vector<Tuple> next_rows;
    for (const Tuple& left : rows) {
      bool matched = false;
      for (const Tuple& right : table->rows()) {
        Tuple combined = Tuple::Concat(left, right);
        EvalContext ctx{&db, &next_schema, &combined,
                        nullptr, nullptr, nullptr};
        MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*join.on, ctx));
        if (keep == Trivalent::kTrue) {
          matched = true;
          next_rows.push_back(std::move(combined));
        }
      }
      if (!matched && join.kind == sql::JoinKind::kLeftOuter) {
        Tuple padded = left;
        for (size_t i = 0; i < qualified.num_columns(); ++i) {
          padded.Append(Value::Null());
        }
        next_rows.push_back(std::move(padded));
      }
    }
    schema = std::move(next_schema);
    rows = std::move(next_rows);
  }

  if (stmt.where) {
    std::vector<Tuple> filtered;
    for (Tuple& row : rows) {
      EvalContext ctx{&db, &schema, &row, nullptr, nullptr, nullptr};
      MAYBMS_ASSIGN_OR_RETURN(Trivalent keep, EvalPredicate(*stmt.where, ctx));
      if (keep == Trivalent::kTrue) filtered.push_back(std::move(row));
    }
    rows = std::move(filtered);
  }

  return Table(std::move(schema), std::move(rows));
}

/// Projects the oracle's FROM/WHERE rows through the select list (star and
/// scalar expressions only — the generator emits no aggregates, DISTINCT,
/// ORDER BY, or LIMIT at the top level). Output columns are typed from the
/// declared source schema — independently of the engine's type deriver —
/// so the differential sweep also checks output typing: every generated
/// top-level item is a star or a plain column reference.
Result<Table> OracleSelect(const sql::SelectStatement& stmt,
                           const Database& db) {
  MAYBMS_ASSIGN_OR_RETURN(Table joined, OracleFromWhere(stmt, db));
  const Schema& source = joined.schema();
  Schema out_schema;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < source.num_columns(); ++i) {
        if (!item.star_qualifier.empty() &&
            source.column(i).qualifier != item.star_qualifier) {
          continue;
        }
        out_schema.AddColumn(source.column(i));
      }
      continue;
    }
    DataType type = DataType::kText;
    if (item.expr->kind == sql::ExprKind::kColumnRef) {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
      Result<size_t> idx = source.FindColumn(ref.name, ref.qualifier);
      if (idx.ok()) type = source.column(*idx).type;
    }
    out_schema.AddColumn(Column("c", type));
  }
  std::vector<Tuple> out_rows;
  for (const Tuple& row : joined.rows()) {
    Tuple out;
    for (const sql::SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < source.num_columns(); ++i) {
          if (!item.star_qualifier.empty() &&
              source.column(i).qualifier != item.star_qualifier) {
            continue;
          }
          out.Append(row.value(i));
        }
        continue;
      }
      EvalContext ctx{&db, &source, &row, nullptr, nullptr, nullptr};
      MAYBMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
      out.Append(std::move(v));
    }
    out_rows.push_back(std::move(out));
  }
  return Table(std::move(out_schema), std::move(out_rows));
}

// ---------------------------------------------------------------------------
// Random schema / query generation
// ---------------------------------------------------------------------------

/// Deterministic across standard libraries: raw mt19937 words, same as
/// tests/pipeline_gen.cc.
class Rng {
 public:
  explicit Rng(uint32_t seed) : rng_(seed) {}
  int Int(int lo, int hi) {
    return lo + static_cast<int>(rng_() % static_cast<uint32_t>(hi - lo + 1));
  }
  bool Chance(double p) { return (rng_() >> 8) * (1.0 / 16777216.0) < p; }

 private:
  std::mt19937 rng_;
};

/// Tables J0..Jn-1 with schema (K INTEGER, V INTEGER, G TEXT): small value
/// domains force duplicate join keys; ~1 in 5 key values is NULL.
Database MakeRandomDb(Rng& rng, int tables) {
  Database db;
  const char* kGs[] = {"x", "y", "z"};
  for (int t = 0; t < tables; ++t) {
    Schema schema({Column("K", DataType::kInteger),
                   Column("V", DataType::kInteger),
                   Column("G", DataType::kText)});
    Table table(schema);
    int rows = rng.Int(0, 9);
    for (int r = 0; r < rows; ++r) {
      Value k = rng.Chance(0.2) ? N() : I(rng.Int(0, 3));
      Value v = rng.Chance(0.2) ? N() : I(rng.Int(0, 5));
      Value g = rng.Chance(0.15) ? N() : T(kGs[rng.Int(0, 2)]);
      table.AppendUnchecked(Row({std::move(k), std::move(v), std::move(g)}));
    }
    db.PutRelation("J" + std::to_string(t), std::move(table));
  }
  return db;
}

std::string RandomQuery(Rng& rng, int tables) {
  auto tbl = [&] { return "J" + std::to_string(rng.Int(0, tables - 1)); };
  std::string q;
  switch (rng.Int(0, 7)) {
    case 0: {  // comma-list equi join + optional residual and filter
      q = "select a.K, b.V from " + tbl() + " a, " + tbl() + " b where " +
          "a.K = b.K";
      if (rng.Chance(0.6)) q += " and a.V < b.V";
      if (rng.Chance(0.5)) q += " and b.V > " + std::to_string(rng.Int(0, 3));
      break;
    }
    case 1: {  // three-way chain of equi conjuncts
      q = "select a.K, b.V, c.G from " + tbl() + " a, " + tbl() + " b, " +
          tbl() + " c where a.K = b.K and b.V = c.V";
      if (rng.Chance(0.5)) q += " and a.V <> c.K";
      break;
    }
    case 2: {  // INNER / LEFT JOIN ... ON, WHERE over the joined side
      bool left = rng.Chance(0.5);
      q = "select a.K, b.V from " + tbl() + " a " +
          (left ? "left join " : "join ") + tbl() + " b on a.K = b.K";
      if (rng.Chance(0.6)) q += " and a.V < b.V";  // residual in ON
      if (rng.Chance(0.5)) {
        // After a LEFT join this filter must not be pushed into the join.
        q += " where b.V >= " + std::to_string(rng.Int(0, 3));
      }
      break;
    }
    case 3: {  // chained LEFT joins keyed on a possibly padded column
      q = "select * from " + tbl() + " a left join " + tbl() +
          " b on a.K = b.K left join " + tbl() + " c on b.V = c.V";
      break;
    }
    case 4: {  // correlated [NOT] EXISTS with non-equi residual
      q = "select a.K, a.V from " + tbl() + " a where " +
          (rng.Chance(0.3) ? std::string("not exists") : std::string(
                                 "exists")) +
          "(select * from " + tbl() + " b where b.K = a.K";
      if (rng.Chance(0.7)) q += " and b.V <> a.V";
      q += ")";
      break;
    }
    case 5: {  // correlated [NOT] IN
      q = "select a.K from " + tbl() + " a where a.V " +
          (rng.Chance(0.3) ? std::string("not in") : std::string("in")) +
          " (select b.V from " + tbl() + " b where b.K = a.K)";
      break;
    }
    case 6: {  // correlated scalar aggregate (count must see empty groups)
      const char* aggs[] = {"max(b.V)", "min(b.V)", "sum(b.V)", "count(*)"};
      q = "select a.K from " + tbl() + " a where " +
          std::to_string(rng.Int(0, 4)) + " < (select " + aggs[rng.Int(0, 3)] +
          " from " + tbl() + " b where b.K = a.K)";
      break;
    }
    default: {  // correlated scalar without aggregate (may error: >1 row)
      q = "select a.K from " + tbl() + " a where a.G = (select b.G from " +
          tbl() + " b where b.K = a.K and b.V = a.V)";
      break;
    }
  }
  return q + ";";
}

class JoinDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(JoinDifferentialTest, PlannerAgreesWithNestedLoopOracle) {
  Rng rng(GetParam() * 2654435761u + 17);
  int tables = rng.Int(2, 3);
  Database db = MakeRandomDb(rng, tables);
  int queries = rng.Int(4, 7);
  for (int i = 0; i < queries; ++i) {
    std::string query = RandomQuery(rng, tables);
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " query: " + query);
    auto stmt = sql::Parser::ParseStatement(query);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    const auto& select = static_cast<const sql::SelectStatement&>(**stmt);

    Result<Table> actual = ExecuteSelect(select, db);
    Result<Table> expected = OracleSelect(select, db);
    ASSERT_EQ(actual.ok(), expected.ok())
        << "planner: " << actual.status().ToString()
        << "\noracle:  " << expected.status().ToString();
    if (!actual.ok()) {
      EXPECT_EQ(actual.status().code(), expected.status().code())
          << "planner: " << actual.status().ToString()
          << "\noracle:  " << expected.status().ToString();
      continue;
    }
    ASSERT_EQ(actual->schema().num_columns(), expected->schema().num_columns());
    for (size_t c = 0; c < expected->schema().num_columns(); ++c) {
      EXPECT_EQ(actual->schema().column(c).type, expected->schema().column(c).type)
          << "output column " << c << " type diverges";
    }
    EXPECT_EQ(RowStrings(*actual), RowStrings(*expected));
  }
}

uint32_t SeedCount() {
  if (const char* env = std::getenv("MAYBMS_JOIN_SEEDS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<uint32_t>(parsed);
  }
  return 200;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinDifferentialTest,
                         ::testing::Range(uint32_t{0}, SeedCount()));

// ---------------------------------------------------------------------------
// Targeted regressions: static typing of empty results and LEFT-join
// padding (the bugs foregrounded by ISSUE 2)
// ---------------------------------------------------------------------------

class JoinTypingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema r_schema(
        {Column("A", DataType::kText), Column("B", DataType::kInteger)});
    Table r(r_schema);
    r.AppendUnchecked(Row({T("a1"), I(10)}));
    db_.PutRelation("R", std::move(r));

    Schema s_schema(
        {Column("C", DataType::kText), Column("X", DataType::kInteger),
         Column("Y", DataType::kReal)});
    Table s(s_schema);
    s.AppendUnchecked(Row({T("nomatch"), I(7), Value::Real(0.5)}));
    db_.PutRelation("S", std::move(s));
  }

  Table Run(const std::string& query) {
    auto stmt = sql::Parser::ParseStatement(query);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto result =
        ExecuteSelect(static_cast<const sql::SelectStatement&>(**stmt), db_);
    EXPECT_TRUE(result.ok()) << query << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : Table();
  }

  Database db_;
};

TEST_F(JoinTypingTest, EmptyResultsKeepDerivedArithmeticTypes) {
  Table t = Run("select B * 2 as x, B / 2 as y from R where 1 = 0");
  ASSERT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.schema().column(0).type, DataType::kInteger);
  EXPECT_EQ(t.schema().column(1).type, DataType::kReal);
}

TEST_F(JoinTypingTest, EmptyResultsKeepDerivedAggregateTypes) {
  Table t = Run("select sum(B) as s, count(*) as c, avg(B) as a, min(A) as m "
                "from R where 1 = 0");
  ASSERT_EQ(t.num_rows(), 1u);  // one global group over zero rows
  EXPECT_EQ(t.schema().column(0).type, DataType::kInteger);
  EXPECT_EQ(t.schema().column(1).type, DataType::kInteger);
  EXPECT_EQ(t.schema().column(2).type, DataType::kReal);
  EXPECT_EQ(t.schema().column(3).type, DataType::kText);
  EXPECT_TRUE(t.row(0).value(0).is_null());
  EXPECT_EQ(t.row(0).value(1), I(0));
}

TEST_F(JoinTypingTest, EmptyResultsKeepDerivedCaseTypes) {
  Table t = Run("select case when B > 5 then 1 else 0 end as c, "
                "case when B > 5 then 1.5 else 2 end as m "
                "from R where 1 = 0");
  ASSERT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.schema().column(0).type, DataType::kInteger);
  EXPECT_EQ(t.schema().column(1).type, DataType::kReal);
}

TEST_F(JoinTypingTest, LeftJoinPaddingKeepsDeclaredColumnTypes) {
  // No S row matches, so every s.X/s.Y is a padded NULL; the output must
  // still carry the joined table's declared types, exactly as a matching
  // (hash-join) result would.
  Table t = Run("select s.X, s.Y, s.X + 1 as xp from R r "
                "left join S s on r.A = s.C");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.row(0).value(0).is_null());
  EXPECT_EQ(t.schema().column(0).type, DataType::kInteger);
  EXPECT_EQ(t.schema().column(1).type, DataType::kReal);
  EXPECT_EQ(t.schema().column(2).type, DataType::kInteger);
}

TEST_F(JoinTypingTest, AggregateOverPaddedColumnKeepsDeclaredType) {
  Table t = Run("select sum(s.X) as s from R r left join S s on r.A = s.C");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.row(0).value(0).is_null());
  EXPECT_EQ(t.schema().column(0).type, DataType::kInteger);
}

}  // namespace
}  // namespace maybms
