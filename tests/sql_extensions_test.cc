// Tests for the SQL-surface extensions beyond the paper's examples:
// explicit JOIN ... ON / LEFT JOIN, INTERSECT / EXCEPT, ORDER BY
// ordinals, and the extended scalar function library — including their
// interaction with world-set operations on both engines.

#include <gtest/gtest.h>

#include "isql/session.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using isql::QueryResult;
using isql::Session;
using maybms::testing::EngineTest;
using maybms::testing::Exec;
using maybms::testing::ExecScript;
using maybms::testing::ExpectRows;
using maybms::testing::WorldDistribution;

class SqlExtensionsTest : public EngineTest {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(Options());
    maybms::testing::LoadFigure1(*session_);
  }
  Session& s() { return *session_; }
  std::unique_ptr<Session> session_;
};

TEST_P(SqlExtensionsTest, InnerJoinOn) {
  QueryResult r = Exec(
      s(), "select R.A, S.E from R join S on R.C = S.C;");
  auto table = r.RequireTable();
  ASSERT_TRUE(table.ok());
  ExpectRows(**table, {"(a1, e1)", "(a2, e1)", "(a2, e2)"});
}

TEST_P(SqlExtensionsTest, LeftJoinPadsWithNulls) {
  QueryResult r = Exec(
      s(), "select R.C, S.E from R left join S on R.C = S.C;");
  auto table = r.RequireTable();
  ASSERT_TRUE(table.ok());
  ExpectRows(**table, {"(c1, NULL)", "(c2, e1)", "(c3, NULL)", "(c4, e1)",
                       "(c4, e2)", "(c5, NULL)"});
}

TEST_P(SqlExtensionsTest, JoinWithAliasesAndCompoundCondition) {
  QueryResult r = Exec(s(),
      "select x.A from R x inner join R y "
      "on x.B = y.B and x.C <> y.C;");
  auto table = r.RequireTable();
  ASSERT_TRUE(table.ok());
  ExpectRows(**table, {"(a2)", "(a3)"});
}

TEST_P(SqlExtensionsTest, IntersectAndExcept) {
  QueryResult r = Exec(s(),
      "select C from R intersect select C from S;");
  ExpectRows(**r.RequireTable(), {"(c2)", "(c4)"});

  r = Exec(s(), "select C from R except select C from S;");
  ExpectRows(**r.RequireTable(), {"(c1)", "(c3)", "(c5)"});

  // Left-associative chain.
  r = Exec(s(),
           "select C from R except select C from S union select C from S;");
  ExpectRows(**r.RequireTable(), {"(c1)", "(c2)", "(c3)", "(c4)", "(c5)"});
}

TEST_P(SqlExtensionsTest, OrderByOrdinal) {
  QueryResult r = Exec(s(), "select A, B from R order by 2 desc, 1 limit 2;");
  auto table = r.RequireTable();
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->row(0).value(0).AsText(), "a2");
  EXPECT_EQ((*table)->row(1).value(0).AsText(), "a3");

  auto bad = s().Execute("select A from R order by 5;");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(SqlExtensionsTest, ScalarFunctionLibrary) {
  QueryResult r = Exec(s(),
      "select substr('incomplete', 3, 4), replace('a1a2', 'a', 'x'), "
      "nullif(1, 1), nullif(2, 1), floor(2.7), ceil(2.1), sign(-5), "
      "mod(7, 3), concat('w', 42, 'x');");
  auto table = r.RequireTable();
  ASSERT_TRUE(table.ok());
  const Tuple& row = (*table)->row(0);
  EXPECT_EQ(row.value(0).AsText(), "comp");
  EXPECT_EQ(row.value(1).AsText(), "x1x2");
  EXPECT_TRUE(row.value(2).is_null());
  EXPECT_EQ(row.value(3).AsInteger(), 2);
  EXPECT_EQ(row.value(4).AsInteger(), 2);
  EXPECT_EQ(row.value(5).AsInteger(), 3);
  EXPECT_EQ(row.value(6).AsInteger(), -1);
  EXPECT_EQ(row.value(7).AsInteger(), 1);
  EXPECT_EQ(row.value(8).AsText(), "w42x");
}

TEST_P(SqlExtensionsTest, SubstrEdgeCases) {
  QueryResult r = Exec(s(),
      "select substr('abc', 0, 2), substr('abc', 2), substr('abc', 10), "
      "substr('abc', -1, 3);");
  const Tuple& row = (*r.RequireTable())->row(0);
  EXPECT_EQ(row.value(0).AsText(), "a");   // clamped start
  EXPECT_EQ(row.value(1).AsText(), "bc");  // to end
  EXPECT_EQ(row.value(2).AsText(), "");    // past end
  EXPECT_EQ(row.value(3).AsText(), "a");   // negative start
}

// The extensions compose with world operations.
TEST_P(SqlExtensionsTest, JoinOverUncertainRelation) {
  Exec(s(), "create table I as select A, B, C from R "
            "repair by key A weight D;");
  QueryResult r = Exec(
      s(), "select possible I.A, S.E from I join S on I.C = S.C;");
  ASSERT_EQ(r.kind(), QueryResult::Kind::kTable);
  // c2 appears in worlds B,D -> (a1,e1); c4 in worlds C,D -> (a2,e1),(a2,e2).
  ExpectRows(r.table(), {"(a1, e1)", "(a2, e1)", "(a2, e2)"});
}

TEST_P(SqlExtensionsTest, LeftJoinConfOverWorlds) {
  Exec(s(), "create table I as select A, B, C from R "
            "repair by key A weight D;");
  QueryResult r = Exec(s(),
      "select conf, I.C, S.E from I left join S on I.C = S.C "
      "where I.A = 'a1';");
  ASSERT_EQ(r.kind(), QueryResult::Kind::kTable);
  // World A,C have (c1, NULL) [P=1/4]; worlds B,D have (c2, e1) [P=3/4].
  bool saw_null = false, saw_e1 = false;
  for (const Tuple& row : r.table().rows()) {
    if (row.value(0).AsText() == "c1") {
      EXPECT_TRUE(row.value(1).is_null());
      EXPECT_NEAR(row.value(2).AsReal(), 0.25, 1e-12);
      saw_null = true;
    } else {
      EXPECT_EQ(row.value(1).AsText(), "e1");
      EXPECT_NEAR(row.value(2).AsReal(), 0.75, 1e-12);
      saw_e1 = true;
    }
  }
  EXPECT_TRUE(saw_null);
  EXPECT_TRUE(saw_e1);
}

TEST_P(SqlExtensionsTest, IntersectAcrossWorlds) {
  Exec(s(), "create table I as select A, B, C from R repair by key A;");
  // Per world: C-values of I that also occur in S.
  QueryResult r = Exec(s(),
      "select possible C from I intersect select C from S;");
  // Parsed as (possible C from I) INTERSECT (C from S)? No: set-op chains
  // bind before world clauses, so this is possible((I ∩ S) per world).
  ASSERT_EQ(r.kind(), QueryResult::Kind::kTable);
  ExpectRows(r.table(), {"(c2)", "(c4)"});
}

TEST_P(SqlExtensionsTest, RepairOverJoinedSource) {
  // repair by key over a join: the source relation is the join result.
  // An unqualified ambiguous key column is rejected...
  auto ambiguous = s().Execute(
      "select E from R join S on R.C = S.C repair by key C;");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);

  // ...while an unambiguous key repairs the join result.
  QueryResult r = Exec(s(),
      "select S.C, E from R join S on R.C = S.C repair by key E;");
  ASSERT_EQ(r.kind(), QueryResult::Kind::kWorlds);
  auto dist = WorldDistribution(r.worlds());
  // Join rows: (c2,e1), (c4,e1), (c4,e2); key E -> groups {e1: 2, e2: 1}.
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_TRUE(dist.count("(c2, e1);(c4, e2);"));
  EXPECT_TRUE(dist.count("(c4, e1);(c4, e2);"));
  for (const auto& [key, p] : dist) EXPECT_NEAR(p, 0.5, 1e-12);
}

TEST(SqlExtensionsParserTest, JoinRoundTrip) {
  auto stmt = sql::Parser::ParseStatement(
      "select * from A a left outer join B b on a.X = b.X "
      "inner join C on C.Y = b.Y");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = static_cast<const sql::SelectStatement&>(**stmt);
  ASSERT_EQ(select.joins.size(), 2u);
  EXPECT_EQ(select.joins[0].kind, sql::JoinKind::kLeftOuter);
  EXPECT_EQ(select.joins[1].kind, sql::JoinKind::kInner);
  EXPECT_EQ(select.ToString(), select.Clone()->ToString());
}

TEST(SqlExtensionsParserTest, JoinRequiresOn) {
  auto stmt = sql::Parser::ParseStatement("select * from A join B");
  EXPECT_FALSE(stmt.ok());
}

MAYBMS_INSTANTIATE_ENGINES(SqlExtensionsTest);

}  // namespace
}  // namespace maybms
