// Reproduces Section 3.2 of the paper: cleaning a relation of possibly
// swapped social security numbers and phone numbers via an interplay of
// query-based and constraint-based cleaning (Figures 5, 6, 7).

#include <gtest/gtest.h>

#include "isql/session.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using isql::QueryResult;
using isql::Session;
using maybms::testing::EngineTest;
using maybms::testing::Exec;
using maybms::testing::ExecScript;
using maybms::testing::WorldDistribution;

class CleaningScenarioTest : public EngineTest {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(Options());
    ExecScript(*session_, R"sql(
      create table R (SSN integer, TEL integer);
      insert into R values (123, 456), (789, 123);
    )sql");
  }
  Session& s() { return *session_; }
  std::unique_ptr<Session> session_;
};

TEST_P(CleaningScenarioTest, FigureFiveSwapUnion) {
  Exec(s(), "create table S as "
            "select SSN, TEL, SSN as SSN', TEL as TEL' from R "
            "union "
            "select SSN, TEL, TEL as SSN', SSN as TEL' from R;");
  QueryResult result = Exec(s(), "select * from S;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 1u);  // S is certain
  EXPECT_EQ(dist.begin()->first,
            "(123, 456, 123, 456);(123, 456, 456, 123);"
            "(789, 123, 123, 789);(789, 123, 789, 123);");
}

TEST_P(CleaningScenarioTest, FigureSixRepairProducesFourReadings) {
  Exec(s(), "create table S as "
            "select SSN, TEL, SSN as SSN', TEL as TEL' from R "
            "union "
            "select SSN, TEL, TEL as SSN', SSN as TEL' from R;");
  Exec(s(), "create table T as "
            "select SSN', TEL' from S repair by key SSN, TEL;");
  QueryResult result = Exec(s(), "select * from T;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 4u);
  // Figure 6: the four possible readings.
  EXPECT_TRUE(dist.count("(123, 456);(789, 123);"));  // T_A
  EXPECT_TRUE(dist.count("(123, 456);(123, 789);"));  // T_B
  EXPECT_TRUE(dist.count("(456, 123);(789, 123);"));  // T_C
  EXPECT_TRUE(dist.count("(123, 789);(456, 123);"));  // T_D
  for (const auto& [key, p] : dist) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST_P(CleaningScenarioTest, FigureSevenFunctionalDependencyAssert) {
  Exec(s(), "create table S as "
            "select SSN, TEL, SSN as SSN', TEL as TEL' from R "
            "union "
            "select SSN, TEL, TEL as SSN', SSN as TEL' from R;");
  Exec(s(), "create table T as "
            "select SSN', TEL' from S repair by key SSN, TEL;");
  Exec(s(), "create table U as select * from T assert not exists "
            "(select 'yes' from T t1, T t2 "
            " where t1.SSN' = t2.SSN' and t1.TEL' <> t2.TEL');");

  QueryResult result = Exec(s(), "select * from U;");
  auto dist = WorldDistribution(result.worlds());
  ASSERT_EQ(dist.size(), 3u);
  // Figure 7: world B violates SSN' -> TEL' and is dropped.
  EXPECT_TRUE(dist.count("(123, 456);(789, 123);"));  // U_A
  EXPECT_TRUE(dist.count("(456, 123);(789, 123);"));  // U_C
  EXPECT_TRUE(dist.count("(123, 789);(456, 123);"));  // U_D
  EXPECT_FALSE(dist.count("(123, 456);(123, 789);"));
  for (const auto& [key, p] : dist) EXPECT_NEAR(p, 1.0 / 3, 1e-12);
}

// The certain answer after cleaning: (789, 123) is the only pair present
// in... actually only in U_A and U_C; nothing is certain across all three.
TEST_P(CleaningScenarioTest, NoReadingIsCertainAfterCleaning) {
  Exec(s(), "create table S as "
            "select SSN, TEL, SSN as SSN', TEL as TEL' from R "
            "union "
            "select SSN, TEL, TEL as SSN', SSN as TEL' from R;");
  Exec(s(), "create table T as "
            "select SSN', TEL' from S repair by key SSN, TEL;");
  Exec(s(), "create table U as select * from T assert not exists "
            "(select 'yes' from T t1, T t2 "
            " where t1.SSN' = t2.SSN' and t1.TEL' <> t2.TEL');");

  QueryResult certain = Exec(s(), "select certain * from U;");
  ASSERT_EQ(certain.kind(), QueryResult::Kind::kTable);
  EXPECT_TRUE(certain.table().empty());

  // But (789,123) is possible with confidence 2/3.
  QueryResult conf = Exec(s(), "select conf, SSN', TEL' from U;");
  bool found = false;
  for (const Tuple& row : conf.table().rows()) {
    if (row.value(0).AsInteger() == 789 && row.value(1).AsInteger() == 123) {
      EXPECT_NEAR(row.value(2).AsReal(), 2.0 / 3, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

MAYBMS_INSTANTIATE_ENGINES(CleaningScenarioTest);

}  // namespace
}  // namespace maybms
