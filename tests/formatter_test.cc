#include "isql/formatter.h"

#include <gtest/gtest.h>

#include "isql/session.h"
#include "tests/test_util.h"
#include "worlds/world.h"

namespace maybms::isql {
namespace {

using maybms::testing::Exec;
using maybms::testing::I;
using maybms::testing::Row;
using maybms::testing::T;

TEST(FormatterTest, AlignsColumns) {
  Schema schema({Column("A", DataType::kText),
                 Column("Bee", DataType::kInteger)});
  Table table(schema);
  table.AppendUnchecked(Row({T("a1"), I(10)}));
  table.AppendUnchecked(Row({T("long-value"), I(5)}));
  std::string out = FormatTable(table);
  EXPECT_EQ(out,
            "A          | Bee\n"
            "-----------+----\n"
            "a1         | 10\n"
            "long-value | 5\n");
}

TEST(FormatterTest, EmptyTableAndZeroColumns) {
  Schema schema({Column("A", DataType::kText)});
  std::string out = FormatTable(Table(schema));
  EXPECT_NE(out.find("(no rows)"), std::string::npos);

  Table zero_cols;
  EXPECT_NE(FormatTable(zero_cols).find("0 columns"), std::string::npos);
}

TEST(FormatterTest, WorldLabelsFollowPaperConvention) {
  EXPECT_EQ(worlds::WorldLabel(0), "A");
  EXPECT_EQ(worlds::WorldLabel(3), "D");
  EXPECT_EQ(worlds::WorldLabel(25), "Z");
  EXPECT_EQ(worlds::WorldLabel(26), "AA");
  EXPECT_EQ(worlds::WorldLabel(27), "AB");
  EXPECT_EQ(worlds::WorldLabel(26 + 26 * 26), "AAA");
}

TEST(FormatterTest, QueryResultRenderings) {
  Session session;
  maybms::testing::LoadFigure1(session);
  Exec(session, "create table I as select A, B, C from R "
                "repair by key A weight D;");

  // Message.
  std::string msg =
      FormatQueryResult(QueryResult::Message("created table X"));
  EXPECT_EQ(msg, "created table X\n");

  // Per-world result shows labels and probabilities.
  QueryResult worlds = Exec(session, "select * from I;");
  std::string out = FormatQueryResult(worlds);
  EXPECT_NE(out.find("-- world A (P = "), std::string::npos);
  EXPECT_NE(out.find("-- world D (P = "), std::string::npos);

  // Combined result is a plain table.
  QueryResult possible = Exec(session, "select possible sum(B) from I;");
  out = FormatQueryResult(possible);
  EXPECT_NE(out.find("44"), std::string::npos);
  EXPECT_NE(out.find("55"), std::string::npos);

  // conf result renders the probability column.
  QueryResult conf = Exec(session, "select conf, B from I;");
  out = FormatQueryResult(conf);
  EXPECT_NE(out.find("conf"), std::string::npos);
}

TEST(FormatterTest, GroupResultRendering) {
  Session session;
  maybms::testing::LoadFigure3(session);
  QueryResult groups = Exec(session,
      "select possible i2.Gender as G2, i3.Gender as G3 "
      "from I i2, I i3 where i2.Id = 2 and i3.Id = 3 "
      "group worlds by (select Pos from I where Id = 2);");
  std::string out = FormatQueryResult(groups);
  EXPECT_NE(out.find("-- group 1"), std::string::npos);
  EXPECT_NE(out.find("-- group 2"), std::string::npos);
  EXPECT_NE(out.find("grouping answer"), std::string::npos);
}

TEST(FormatterTest, WorldSetRendering) {
  Session session;
  maybms::testing::LoadFigure1(session);
  Exec(session, "create table I as select A, B, C from R repair by key A;");
  std::string out = FormatWorldSet(session.world_set(), 16);
  EXPECT_NE(out.find("4 worlds"), std::string::npos);
  EXPECT_NE(out.find("== world A"), std::string::npos);
  EXPECT_NE(out.find("I:"), std::string::npos);
  EXPECT_NE(out.find("R:"), std::string::npos);

  std::string truncated = FormatWorldSet(session.world_set(), 2);
  EXPECT_NE(truncated.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace maybms::isql
