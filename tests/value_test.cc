#include "types/value.h"

#include <gtest/gtest.h>

namespace maybms {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Integer(7).AsInteger(), 7);
  EXPECT_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Text("hi").AsText(), "hi");
  EXPECT_TRUE(Value::Boolean(true).AsBoolean());
}

TEST(ValueTest, NumericValueWidensIntegers) {
  EXPECT_EQ(Value::Integer(3).NumericValue(), 3.0);
  EXPECT_EQ(Value::Real(3.25).NumericValue(), 3.25);
  EXPECT_TRUE(Value::Integer(1).IsNumeric());
  EXPECT_TRUE(Value::Real(1).IsNumeric());
  EXPECT_FALSE(Value::Text("1").IsNumeric());
  EXPECT_FALSE(Value::Null().IsNumeric());
}

TEST(ValueTest, SqlEqualsThreeValued) {
  auto eq = Value::Integer(1).SqlEquals(Value::Integer(1));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, Trivalent::kTrue);

  eq = Value::Integer(1).SqlEquals(Value::Real(1.0));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, Trivalent::kTrue) << "cross-numeric comparison";

  eq = Value::Null().SqlEquals(Value::Integer(1));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, Trivalent::kUnknown) << "NULL yields UNKNOWN";

  eq = Value::Text("a").SqlEquals(Value::Text("b"));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, Trivalent::kFalse);

  auto err = Value::Text("a").SqlEquals(Value::Integer(1));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, SqlLessOrdering) {
  auto lt = Value::Integer(1).SqlLess(Value::Real(1.5));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(*lt, Trivalent::kTrue);

  lt = Value::Text("abc").SqlLess(Value::Text("abd"));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(*lt, Trivalent::kTrue);

  lt = Value::Null().SqlLess(Value::Integer(1));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(*lt, Trivalent::kUnknown);

  lt = Value::Boolean(false).SqlLess(Value::Boolean(true));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(*lt, Trivalent::kTrue);
}

TEST(ValueTest, TotalOrderIsStrictWeakOrder) {
  std::vector<Value> values = {Value::Null(),        Value::Integer(1),
                               Value::Integer(2),    Value::Real(1.5),
                               Value::Text("a"),     Value::Text("b"),
                               Value::Boolean(false), Value::Boolean(true)};
  for (const Value& a : values) {
    EXPECT_EQ(a.TotalOrderCompare(a), 0);
    for (const Value& b : values) {
      EXPECT_EQ(a.TotalOrderCompare(b), -b.TotalOrderCompare(a));
    }
  }
}

TEST(ValueTest, IntegerAndRealCoincideInTotalOrder) {
  EXPECT_EQ(Value::Integer(1).TotalOrderCompare(Value::Real(1.0)), 0);
  EXPECT_EQ(Value::Integer(1).Hash(), Value::Real(1.0).Hash())
      << "hash must be consistent with equality";
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Integer(-3).ToString(), "-3");
  EXPECT_EQ(Value::Real(0.5).ToString(), "0.5");
  EXPECT_EQ(Value::Text("x y").ToString(), "x y");
  EXPECT_EQ(Value::Boolean(true).ToString(), "true");
}

TEST(ValueTest, CastNumericAndText) {
  auto v = Value::Integer(3).CastTo(DataType::kReal);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsReal(), 3.0);

  v = Value::Real(3.9).CastTo(DataType::kInteger);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInteger(), 3);

  v = Value::Text("42").CastTo(DataType::kInteger);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInteger(), 42);

  v = Value::Text("2.5").CastTo(DataType::kReal);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsReal(), 2.5);

  v = Value::Integer(42).CastTo(DataType::kText);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsText(), "42");

  EXPECT_FALSE(Value::Text("abc").CastTo(DataType::kInteger).ok());
  auto null_cast = Value::Null().CastTo(DataType::kInteger);
  ASSERT_TRUE(null_cast.ok());
  EXPECT_TRUE(null_cast->is_null()) << "NULL casts to NULL";
}

TEST(TrivalentTest, KleeneLogicTables) {
  using enum Trivalent;
  EXPECT_EQ(TrivalentAnd(kTrue, kTrue), kTrue);
  EXPECT_EQ(TrivalentAnd(kTrue, kFalse), kFalse);
  EXPECT_EQ(TrivalentAnd(kFalse, kUnknown), kFalse);
  EXPECT_EQ(TrivalentAnd(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(TrivalentAnd(kUnknown, kUnknown), kUnknown);

  EXPECT_EQ(TrivalentOr(kFalse, kFalse), kFalse);
  EXPECT_EQ(TrivalentOr(kTrue, kUnknown), kTrue);
  EXPECT_EQ(TrivalentOr(kFalse, kUnknown), kUnknown);
  EXPECT_EQ(TrivalentOr(kUnknown, kUnknown), kUnknown);

  EXPECT_EQ(TrivalentNot(kTrue), kFalse);
  EXPECT_EQ(TrivalentNot(kFalse), kTrue);
  EXPECT_EQ(TrivalentNot(kUnknown), kUnknown);
}

TEST(DataTypeTest, FromStringAliases) {
  EXPECT_EQ(*DataTypeFromString("integer"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromString("INT"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromString("bigint"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromString("real"), DataType::kReal);
  EXPECT_EQ(*DataTypeFromString("DOUBLE"), DataType::kReal);
  EXPECT_EQ(*DataTypeFromString("text"), DataType::kText);
  EXPECT_EQ(*DataTypeFromString("varchar"), DataType::kText);
  EXPECT_EQ(*DataTypeFromString("boolean"), DataType::kBoolean);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

}  // namespace
}  // namespace maybms
