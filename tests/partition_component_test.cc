// Tests for the repair/choice partitioning helpers and the WSD component
// algebra.

#include <gtest/gtest.h>

#include "sql/ast.h"
#include "tests/test_util.h"
#include "worlds/component.h"
#include "worlds/partition.h"

namespace maybms::worlds {
namespace {

using maybms::testing::I;
using maybms::testing::N;
using maybms::testing::Row;
using maybms::testing::T;

Table KeyedTable() {
  Schema schema({Column("K", DataType::kText),
                 Column("V", DataType::kInteger),
                 Column("W", DataType::kInteger)});
  Table t(schema);
  t.AppendUnchecked(Row({T("a"), I(1), I(2)}));
  t.AppendUnchecked(Row({T("a"), I(2), I(6)}));
  t.AppendUnchecked(Row({T("b"), I(3), I(4)}));
  t.AppendUnchecked(Row({T("b"), I(4), I(5)}));
  t.AppendUnchecked(Row({T("c"), I(5), I(6)}));
  return t;
}

TEST(RepairPartitionTest, OneBlockPerKeyGroup) {
  sql::RepairClause clause;
  clause.key_columns = {"K"};
  auto blocks = RepairPartition(KeyedTable(), clause);
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
  ASSERT_EQ(blocks->size(), 3u);
  EXPECT_EQ((*blocks)[0].choices.size(), 2u);
  EXPECT_EQ((*blocks)[1].choices.size(), 2u);
  EXPECT_EQ((*blocks)[2].choices.size(), 1u);
  // Uniform probabilities within each block.
  for (const auto& block : *blocks) {
    double total = 0;
    for (const auto& choice : block.choices) {
      EXPECT_EQ(choice.row_indices.size(), 1u);
      total += choice.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(RepairPartitionTest, WeightedProbabilities) {
  sql::RepairClause clause;
  clause.key_columns = {"K"};
  clause.weight_column = "W";
  auto blocks = RepairPartition(KeyedTable(), clause);
  ASSERT_TRUE(blocks.ok());
  // Key 'a': weights 2 and 6 -> 0.25 / 0.75.
  EXPECT_NEAR((*blocks)[0].choices[0].probability, 0.25, 1e-12);
  EXPECT_NEAR((*blocks)[0].choices[1].probability, 0.75, 1e-12);
}

TEST(RepairPartitionTest, NonPositiveWeightIsError) {
  Schema schema({Column("K", DataType::kText),
                 Column("W", DataType::kInteger)});
  Table t(schema);
  t.AppendUnchecked(Row({T("a"), I(0)}));
  sql::RepairClause clause;
  clause.key_columns = {"K"};
  clause.weight_column = "W";
  auto blocks = RepairPartition(t, clause);
  ASSERT_FALSE(blocks.ok());
  EXPECT_EQ(blocks.status().code(), StatusCode::kInvalidArgument);
}

TEST(RepairPartitionTest, NullWeightIsError) {
  Schema schema({Column("K", DataType::kText),
                 Column("W", DataType::kInteger)});
  Table t(schema);
  t.AppendUnchecked(Row({T("a"), N()}));
  sql::RepairClause clause;
  clause.key_columns = {"K"};
  clause.weight_column = "W";
  EXPECT_FALSE(RepairPartition(t, clause).ok());
}

TEST(RepairPartitionTest, EmptyTableYieldsNoBlocks) {
  sql::RepairClause clause;
  clause.key_columns = {"K"};
  auto blocks = RepairPartition(Table(KeyedTable().schema()), clause);
  ASSERT_TRUE(blocks.ok());
  EXPECT_TRUE(blocks->empty());
}

TEST(RepairPartitionTest, UnknownKeyColumnIsError) {
  sql::RepairClause clause;
  clause.key_columns = {"Nope"};
  EXPECT_EQ(RepairPartition(KeyedTable(), clause).status().code(),
            StatusCode::kNotFound);
}

TEST(ChoicePartitionTest, SingleBlockOnePartitionPerValue) {
  sql::ChoiceClause clause;
  clause.columns = {"K"};
  auto blocks = ChoicePartition(KeyedTable(), clause);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);
  const PartitionBlock& block = (*blocks)[0];
  ASSERT_EQ(block.choices.size(), 3u);
  EXPECT_EQ(block.choices[0].row_indices.size(), 2u);  // 'a' tuples
  for (const auto& choice : block.choices) {
    EXPECT_NEAR(choice.probability, 1.0 / 3, 1e-12);
  }
}

TEST(ChoicePartitionTest, WeightedBySumOfPartitionWeights) {
  sql::ChoiceClause clause;
  clause.columns = {"K"};
  clause.weight_column = "W";
  auto blocks = ChoicePartition(KeyedTable(), clause);
  ASSERT_TRUE(blocks.ok());
  const PartitionBlock& block = (*blocks)[0];
  // Total weight 23; partitions a=8, b=9, c=6.
  EXPECT_NEAR(block.choices[0].probability, 8.0 / 23, 1e-12);
  EXPECT_NEAR(block.choices[1].probability, 9.0 / 23, 1e-12);
  EXPECT_NEAR(block.choices[2].probability, 6.0 / 23, 1e-12);
}

TEST(ChoicePartitionTest, EmptyRelationIsError) {
  sql::ChoiceClause clause;
  clause.columns = {"K"};
  auto blocks = ChoicePartition(Table(KeyedTable().schema()), clause);
  ASSERT_FALSE(blocks.ok());
  EXPECT_EQ(blocks.status().code(), StatusCode::kEmptyWorldSet);
}

TEST(ChoicePartitionTest, MultiColumnChoice) {
  sql::ChoiceClause clause;
  clause.columns = {"K", "V"};
  auto blocks = ChoicePartition(KeyedTable(), clause);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ((*blocks)[0].choices.size(), 5u) << "all (K,V) pairs distinct";
}

// ---- components ----

Alternative MakeAlt(double p, const std::string& rel,
                    std::vector<Tuple> tuples) {
  Alternative alt;
  alt.probability = p;
  alt.tuples[rel] = std::move(tuples);
  return alt;
}

TEST(ComponentTest, ContributesToIgnoresEmptyContributions) {
  Component c;
  c.alternatives.push_back(MakeAlt(0.5, "r", {Row({I(1)})}));
  c.alternatives.push_back(MakeAlt(0.5, "r", {}));
  EXPECT_TRUE(c.ContributesTo("r"));
  EXPECT_FALSE(c.ContributesTo("s"));
  EXPECT_EQ(c.Relations(), std::vector<std::string>{"r"});
}

TEST(ComponentTest, NormalizeRescalesToOne) {
  Component c;
  c.alternatives.push_back(MakeAlt(2.0, "r", {}));
  c.alternatives.push_back(MakeAlt(6.0, "r", {}));
  MAYBMS_EXPECT_OK(c.Normalize());
  EXPECT_NEAR(c.alternatives[0].probability, 0.25, 1e-12);
  EXPECT_NEAR(c.alternatives[1].probability, 0.75, 1e-12);

  Component zero;
  zero.alternatives.push_back(MakeAlt(0.0, "r", {}));
  EXPECT_EQ(zero.Normalize().code(), StatusCode::kEmptyWorldSet);
}

TEST(ComponentTest, MergeComputesProduct) {
  Component a;
  a.alternatives.push_back(MakeAlt(0.25, "r", {Row({I(1)})}));
  a.alternatives.push_back(MakeAlt(0.75, "r", {Row({I(2)})}));
  Component b;
  b.alternatives.push_back(MakeAlt(0.5, "s", {Row({I(10)})}));
  b.alternatives.push_back(MakeAlt(0.5, "s", {Row({I(20)})}));

  auto merged = MergeComponents({&a, &b}, 0);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 4u);
  double total = 0;
  for (const Alternative& alt : merged->alternatives) {
    total += alt.probability;
    EXPECT_EQ(alt.tuples.at("r").size(), 1u);
    EXPECT_EQ(alt.tuples.at("s").size(), 1u);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ComponentTest, MergeOfNothingIsTrivialChoice) {
  auto merged = MergeComponents({}, 0);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 1u);
  EXPECT_NEAR(merged->alternatives[0].probability, 1.0, 1e-12);
}

TEST(ComponentTest, MergeCapIsEnforced) {
  Component a;
  for (int i = 0; i < 10; ++i) a.alternatives.push_back(MakeAlt(0.1, "r", {}));
  auto merged = MergeComponents({&a, &a, &a}, 100);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kUnsupported);
}

TEST(ComponentTest, MergeConcatenatesSharedRelationContributions) {
  Component a;
  a.alternatives.push_back(MakeAlt(1.0, "r", {Row({I(1)})}));
  Component b;
  b.alternatives.push_back(MakeAlt(1.0, "r", {Row({I(2)})}));
  auto merged = MergeComponents({&a, &b}, 0);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->alternatives[0].tuples.at("r").size(), 2u);
}

}  // namespace
}  // namespace maybms::worlds
