#include "base/string_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace maybms {
namespace {

TEST(StringUtilTest, AsciiCaseConversion) {
  EXPECT_EQ(AsciiToLower("SeLeCt * FROM R"), "select * from r");
  EXPECT_EQ(AsciiToUpper("repair by key"), "REPAIR BY KEY");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(AsciiEqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(AsciiEqualsIgnoreCase("SSN'", "ssn'"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("selec", "select"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("a", "b"));
  EXPECT_TRUE(AsciiEqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(LikeMatchTest, ExactMatch) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("whale", "%"));
  EXPECT_TRUE(LikeMatch("whale", "wh%"));
  EXPECT_TRUE(LikeMatch("whale", "%ale"));
  EXPECT_TRUE(LikeMatch("whale", "%ha%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("whale", "%x%"));
  EXPECT_TRUE(LikeMatch("whale", "%%le"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("caat", "c_t"));
  EXPECT_TRUE(LikeMatch("cat", "___"));
  EXPECT_FALSE(LikeMatch("cat", "____"));
  EXPECT_TRUE(LikeMatch("a1b2", "a_b_"));
}

TEST(FormatDoubleTest, IntegralValuesWithoutDecimals) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(-42.0), "-42");
}

TEST(FormatDoubleTest, FractionsKeepPrecision) {
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(1.0 / 3), "0.333333333333");
}

TEST(FormatDoubleTest, SpecialValues) {
  EXPECT_EQ(FormatDouble(std::nan("")), "NaN");
  EXPECT_EQ(FormatDouble(1.0 / 0.0), "Inf");
  EXPECT_EQ(FormatDouble(-1.0 / 0.0), "-Inf");
}

}  // namespace
}  // namespace maybms
